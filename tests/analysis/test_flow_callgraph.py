"""The project symbol table and call graph (repro.analysis.flow.symbols)."""

import textwrap

import pytest

from repro.analysis.framework import AnalysisSession, ModuleInfo
from repro.analysis.flow.symbols import ProjectModel


def build_model(tmp_path, files):
    """Write a package tree {relpath: source} and build its model."""
    paths = []
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    # Every directory between a file and the root needs an __init__.py
    # for ModuleInfo to assign dotted module names.
    for path in list(paths):
        current = path.parent
        while current != tmp_path and current != current.parent:
            marker = current / "__init__.py"
            if not marker.exists():
                marker.write_text("")
            paths.append(marker)
            current = current.parent
    modules = [ModuleInfo.parse(p) for p in sorted(set(paths))]
    return ProjectModel.build(modules)


def edge_pairs(model):
    return {
        (edge.caller, edge.callee, edge.kind)
        for edges in model.edges.values()
        for edge in edges
    }


class TestSymbolCollection:
    def test_functions_methods_and_classes_are_qualified(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/mod.py": """
                class Planner:
                    def optimize(self):
                        return 1


                def helper():
                    return 2
                """
            },
        )
        assert "pkg.mod.Planner.optimize" in model.functions
        assert "pkg.mod.helper" in model.functions
        assert "pkg.mod.Planner" in model.classes
        planner = model.classes["pkg.mod.Planner"]
        assert planner.methods == {"optimize": "pkg.mod.Planner.optimize"}

    def test_nested_defs_get_locals_qualnames(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/mod.py": """
                def outer():
                    def inner():
                        return 1
                    return inner
                """
            },
        )
        assert "pkg.mod.outer.<locals>.inner" in model.functions

    def test_function_at_returns_innermost(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/mod.py": """
                def outer():
                    def inner():
                        x = 1
                        return x
                    return inner
                """
            },
        )
        path = str(tmp_path / "pkg/mod.py")
        inner_line = model.functions[
            "pkg.mod.outer.<locals>.inner"
        ].node.body[0].lineno
        fn = model.function_at(path, inner_line)
        assert fn.qualname == "pkg.mod.outer.<locals>.inner"


class TestResolution:
    def test_plain_calls_resolve_within_module(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/mod.py": """
                def helper():
                    return 1


                def entry():
                    return helper()
                """
            },
        )
        assert (
            "pkg.mod.entry",
            "pkg.mod.helper",
            "direct",
        ) in edge_pairs(model)

    def test_aliased_module_import_resolves(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/util.py": """
                def helper():
                    return 1
                """,
                "pkg/mod.py": """
                import pkg.util as u


                def entry():
                    return u.helper()
                """,
            },
        )
        assert (
            "pkg.mod.entry",
            "pkg.util.helper",
            "direct",
        ) in edge_pairs(model)

    def test_from_import_with_asname_resolves(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/util.py": """
                def helper():
                    return 1
                """,
                "pkg/mod.py": """
                from pkg.util import helper as h


                def entry():
                    return h()
                """,
            },
        )
        assert (
            "pkg.mod.entry",
            "pkg.util.helper",
            "direct",
        ) in edge_pairs(model)

    def test_init_reexport_chain_resolves(self, tmp_path):
        # from pkg import Planner, where pkg/__init__ re-exports it
        # from pkg.impl -- the common facade pattern.
        model = build_model(
            tmp_path,
            {
                "pkg/impl.py": """
                class Planner:
                    def optimize(self):
                        return 1
                """,
                "pkg/__init__.py": """
                from pkg.impl import Planner
                """,
                "app.py": """
                from pkg import Planner


                def entry():
                    planner = Planner()
                    return planner.optimize()
                """,
            },
        )
        pairs = edge_pairs(model)
        assert (
            "app.entry",
            "pkg.impl.Planner.optimize",
            "method",
        ) in pairs

    def test_relative_import_resolves(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/util.py": """
                def helper():
                    return 1
                """,
                "pkg/mod.py": """
                from .util import helper


                def entry():
                    return helper()
                """,
            },
        )
        assert (
            "pkg.mod.entry",
            "pkg.util.helper",
            "direct",
        ) in edge_pairs(model)


class TestMethodDispatch:
    def test_self_calls_resolve_through_the_class(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/mod.py": """
                class Planner:
                    def optimize(self):
                        return self._search()

                    def _search(self):
                        return 1
                """
            },
        )
        assert (
            "pkg.mod.Planner.optimize",
            "pkg.mod.Planner._search",
            "method",
        ) in edge_pairs(model)

    def test_inherited_method_resolves_through_base(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/mod.py": """
                class Base:
                    def shared(self):
                        return 1


                class Child(Base):
                    def entry(self):
                        return self.shared()
                """
            },
        )
        assert (
            "pkg.mod.Child.entry",
            "pkg.mod.Base.shared",
            "method",
        ) in edge_pairs(model)

    def test_super_call_resolves_to_base(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/mod.py": """
                class Base:
                    def setup(self):
                        return 1


                class Child(Base):
                    def setup(self):
                        return super().setup()
                """
            },
        )
        assert (
            "pkg.mod.Child.setup",
            "pkg.mod.Base.setup",
            "method",
        ) in edge_pairs(model)

    def test_typed_receiver_from_annotation(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/mod.py": """
                class Model:
                    def predict(self):
                        return 1


                def entry(model: Model):
                    return model.predict()
                """
            },
        )
        assert (
            "pkg.mod.entry",
            "pkg.mod.Model.predict",
            "method",
        ) in edge_pairs(model)

    def test_constructor_assignment_types_the_local(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/mod.py": """
                class Model:
                    def __init__(self):
                        self.x = 1

                    def predict(self):
                        return self.x


                def entry():
                    model = Model()
                    return model.predict()
                """
            },
        )
        pairs = edge_pairs(model)
        assert ("pkg.mod.entry", "pkg.mod.Model.predict", "method") in pairs
        # Instantiation also links to __init__.
        assert ("pkg.mod.entry", "pkg.mod.Model.__init__", "init") in pairs


class TestDecoratorsClosuresAndDynamic:
    def test_decorated_functions_still_have_edges(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/mod.py": """
                import functools


                def helper():
                    return 1


                @functools.lru_cache(maxsize=None)
                def entry():
                    return helper()
                """
            },
        )
        assert (
            "pkg.mod.entry",
            "pkg.mod.helper",
            "direct",
        ) in edge_pairs(model)
        fn = model.functions["pkg.mod.entry"]
        assert "functools.lru_cache" in fn.decorator_names()

    def test_property_access_creates_property_edge(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/mod.py": """
                class Stats:
                    @property
                    def size(self):
                        return 1


                def entry(stats: Stats):
                    return stats.size
                """
            },
        )
        assert (
            "pkg.mod.entry",
            "pkg.mod.Stats.size",
            "property",
        ) in edge_pairs(model)

    def test_closure_definition_edge(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/mod.py": """
                def entry(pool):
                    def work():
                        return 1
                    return pool.submit(work)
                """
            },
        )
        assert (
            "pkg.mod.entry",
            "pkg.mod.entry.<locals>.work",
            "closure",
        ) in edge_pairs(model)

    def test_dynamic_dispatch_falls_back_to_every_method(self, tmp_path):
        # An attribute call on an unknown receiver conservatively links
        # to every known method of that name, so taint never silently
        # stops at a dynamic dispatch site.
        model = build_model(
            tmp_path,
            {
                "pkg/a.py": """
                class ModelA:
                    def predict(self):
                        return 1
                """,
                "pkg/b.py": """
                class ModelB:
                    def predict(self):
                        return 2
                """,
                "pkg/mod.py": """
                def entry(model):
                    return model.predict()
                """,
            },
        )
        pairs = edge_pairs(model)
        assert ("pkg.mod.entry", "pkg.a.ModelA.predict", "dynamic") in pairs
        assert ("pkg.mod.entry", "pkg.b.ModelB.predict", "dynamic") in pairs

    def test_dynamic_fallback_excludes_generic_dunders(self, tmp_path):
        model = build_model(
            tmp_path,
            {
                "pkg/a.py": """
                class Resource:
                    def __enter__(self):
                        return self

                    def __exit__(self, *exc):
                        return False
                """,
                "pkg/mod.py": """
                def entry(thing):
                    return thing.__enter__()
                """,
            },
        )
        callees = {
            edge.callee for edge in model.edges.get("pkg.mod.entry", [])
        }
        assert "pkg.a.Resource.__enter__" not in callees


class TestRenderGraph:
    def test_graph_dump_is_deterministic_and_complete(self, tmp_path):
        files = {
            "pkg/mod.py": """
            def helper():
                return 1


            def entry():
                return helper()
            """
        }
        first = build_model(tmp_path / "one", files).render_graph()
        second = build_model(tmp_path / "two", files).render_graph()
        assert first == second
        assert "pkg.mod.entry -> pkg.mod.helper [direct]" in first


class TestSessionIntegration:
    def test_session_flow_is_built_once_and_cached(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("def f():\n    return 1\n")
        session = AnalysisSession.from_modules([ModuleInfo.parse(path)])
        assert session.flow() is session.flow()

    def test_whole_repo_model_builds(self, repo_root):
        paths = sorted((repo_root / "src" / "repro").rglob("*.py"))
        session = AnalysisSession.from_modules(
            ModuleInfo.parse(p) for p in paths
        )
        model = session.flow()
        assert "repro.core.raqo.RaqoPlanner.optimize" in model.functions
        assert len(model.reverse_edges) > 100


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
