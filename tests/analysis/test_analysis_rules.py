"""Good/bad fixture snippets for every concrete rule (RAQO001-010)."""

from repro.analysis import ModuleInfo
from repro.analysis.framework import resolve_rules, run_analysis_on_modules


def _ids(findings):
    return [f.rule_id for f in findings]


class TestUnseededRandomRAQO001:
    def test_stdlib_random_call_is_flagged(self, lint):
        findings = lint(
            """
            import random

            x = random.random()
            """,
            rule="RAQO001",
        )
        assert _ids(findings) == ["RAQO001"]
        assert "global RNG" in findings[0].message

    def test_from_random_import_is_flagged(self, lint):
        findings = lint("from random import shuffle\n", rule="RAQO001")
        assert _ids(findings) == ["RAQO001"]

    def test_numpy_legacy_global_rng_is_flagged(self, lint):
        findings = lint(
            """
            import numpy as np

            x = np.random.rand(3)
            """,
            rule="RAQO001",
        )
        assert _ids(findings) == ["RAQO001"]

    def test_unseeded_default_rng_is_flagged(self, lint):
        findings = lint(
            """
            from numpy.random import default_rng

            rng = default_rng()
            """,
            rule="RAQO001",
        )
        assert _ids(findings) == ["RAQO001"]
        assert "seed" in findings[0].message

    def test_seeded_generator_is_clean(self, lint):
        findings = lint(
            """
            import numpy as np

            rng = np.random.default_rng(42)
            gen = np.random.Generator(np.random.PCG64(7))
            """,
            rule="RAQO001",
        )
        assert findings == []


class TestWallClockRAQO002:
    def test_time_time_is_flagged(self, lint):
        findings = lint(
            """
            import time

            start = time.time()
            """,
            rule="RAQO002",
        )
        assert _ids(findings) == ["RAQO002"]

    def test_datetime_now_is_flagged(self, lint):
        findings = lint(
            """
            from datetime import datetime

            stamp = datetime.now()
            """,
            rule="RAQO002",
        )
        assert _ids(findings) == ["RAQO002"]

    def test_bare_time_import_alias_is_flagged(self, lint):
        findings = lint(
            """
            from time import time as wall

            t = wall()
            """,
            rule="RAQO002",
        )
        assert _ids(findings) == ["RAQO002"]

    def test_perf_counter_is_allowed(self, lint):
        findings = lint(
            """
            import time

            t = time.perf_counter()
            """,
            rule="RAQO002",
        )
        assert findings == []


class TestSetIterationOrderRAQO003:
    def test_for_loop_over_set_is_flagged(self, lint):
        findings = lint(
            """
            for item in {1, 2, 3}:
                print(item)
            """,
            rule="RAQO003",
        )
        assert _ids(findings) == ["RAQO003"]

    def test_min_over_set_call_is_flagged(self, lint):
        findings = lint(
            "best = min(set(candidates))\n", rule="RAQO003"
        )
        assert _ids(findings) == ["RAQO003"]

    def test_comprehension_over_set_is_flagged(self, lint):
        findings = lint(
            "names = [t for t in {'a', 'b'}]\n", rule="RAQO003"
        )
        assert _ids(findings) == ["RAQO003"]

    def test_sorted_set_is_allowed(self, lint):
        findings = lint(
            """
            for item in sorted({1, 2, 3}):
                print(item)
            best = min(sorted(set(candidates)))
            """,
            rule="RAQO003",
        )
        assert findings == []


class TestFloatCostCompareRAQO004:
    def test_raw_equality_on_cost_is_flagged(self, lint):
        findings = lint("tie = cost == best_cost\n", rule="RAQO004")
        assert _ids(findings) == ["RAQO004"]
        assert "costs_equal" in findings[0].message

    def test_inequality_on_attribute_is_flagged(self, lint):
        findings = lint(
            "changed = a.time_s != b.time_s\n", rule="RAQO004"
        )
        assert _ids(findings) == ["RAQO004"]

    def test_scalar_call_result_is_cost_valued(self, lint):
        findings = lint(
            "same = left.scalar(weights) == right.scalar(weights)\n",
            rule="RAQO004",
        )
        assert _ids(findings) == ["RAQO004"]

    def test_ordering_comparisons_are_allowed(self, lint):
        findings = lint(
            """
            better = cost < best_cost
            worse = a.time_s >= b.time_s
            """,
            rule="RAQO004",
        )
        assert findings == []

    def test_non_cost_names_are_allowed(self, lint):
        findings = lint("same = name == other_name\n", rule="RAQO004")
        assert findings == []

    def test_sanctioned_numeric_module_may_compare(self, repo_root):
        # The helpers themselves live in repro.core.numeric and must be
        # allowed to spell out raw float comparisons.
        path = repo_root / "src" / "repro" / "core" / "numeric.py"
        info = ModuleInfo.parse(
            path,
            source=(
                "def eq(cost: float, other_cost: float) -> bool:\n"
                "    return cost == other_cost\n"
            ),
        )
        assert info.module == "repro.core.numeric"
        findings = run_analysis_on_modules(
            [info], rules=resolve_rules(["RAQO004"])
        )
        assert findings == []


class TestSharedMutableStateRAQO005:
    def test_module_level_dict_is_flagged(self, lint):
        findings = lint("CACHE = {}\n", rule="RAQO005")
        assert _ids(findings) == ["RAQO005"]
        assert "guarded-by" in findings[0].message

    def test_class_level_list_is_flagged(self, lint):
        findings = lint(
            """
            class Registry:
                entries = []
            """,
            rule="RAQO005",
        )
        assert _ids(findings) == ["RAQO005"]
        assert "Registry" in findings[0].message

    def test_guard_pragma_with_real_lock_is_clean(self, lint):
        findings = lint(
            """
            import threading

            LOCK = threading.Lock()
            CACHE = {}  # lint: guarded-by=LOCK
            """,
            rule="RAQO005",
        )
        assert findings == []

    def test_guard_pragma_naming_missing_lock_is_flagged(self, lint):
        findings = lint(
            "CACHE = {}  # lint: guarded-by=GHOST_LOCK\n",
            rule="RAQO005",
        )
        assert _ids(findings) == ["RAQO005"]
        assert "GHOST_LOCK" in findings[0].message

    def test_immutable_bindings_are_clean(self, lint):
        findings = lint(
            """
            from types import MappingProxyType

            EDGES = (("a", "b"), ("b", "c"))
            ROWS = MappingProxyType({"a": 1})
            """,
            rule="RAQO005",
        )
        assert findings == []


class TestMutableDefaultArgRAQO006:
    def test_list_default_is_flagged(self, lint):
        findings = lint(
            """
            def accumulate(item, acc=[]):
                acc.append(item)
                return acc
            """,
            rule="RAQO006",
        )
        assert _ids(findings) == ["RAQO006"]
        assert "accumulate" in findings[0].message

    def test_kwonly_dict_default_is_flagged(self, lint):
        findings = lint(
            """
            def configure(*, options={}):
                return options
            """,
            rule="RAQO006",
        )
        assert _ids(findings) == ["RAQO006"]

    def test_lambda_default_is_flagged(self, lint):
        findings = lint("collect = lambda acc=[]: acc\n", rule="RAQO006")
        assert _ids(findings) == ["RAQO006"]

    def test_none_and_immutable_defaults_are_clean(self, lint):
        findings = lint(
            """
            def accumulate(item, acc=None, tags=()):
                acc = [] if acc is None else acc
                acc.append(item)
                return acc
            """,
            rule="RAQO006",
        )
        assert findings == []


class TestPositionalDimensionIndexRAQO007:
    def test_constant_index_into_dimensions_is_flagged(self, lint):
        findings = lint("memory = cluster.dimensions[1]\n", rule="RAQO007")
        assert _ids(findings) == ["RAQO007"]
        assert "by name" in findings[0].message

    def test_constant_index_into_dims_is_flagged(self, lint):
        findings = lint("first = dims[0]\n", rule="RAQO007")
        assert _ids(findings) == ["RAQO007"]

    def test_as_vector_constant_index_is_flagged(self, lint):
        findings = lint("gb = config.as_vector()[1]\n", rule="RAQO007")
        assert _ids(findings) == ["RAQO007"]

    def test_loop_variable_index_is_allowed(self, lint):
        findings = lint(
            """
            for index in range(len(step_sizes)):
                step = step_sizes[index]
            """,
            rule="RAQO007",
        )
        assert findings == []

    def test_by_name_lookup_is_allowed(self, lint):
        findings = lint(
            "memory = cluster.dimension('container_gb')\n",
            rule="RAQO007",
        )
        assert findings == []


class TestUntypedPublicApiRAQO008:
    def test_unannotated_public_function_yields_two_findings(self, lint):
        findings = lint(
            """
            def run(workload):
                return workload
            """,
            rule="RAQO008",
        )
        assert _ids(findings) == ["RAQO008", "RAQO008"]
        messages = "\n".join(f.message for f in findings)
        assert "workload" in messages
        assert "return" in messages

    def test_unannotated_method_skips_self(self, lint):
        findings = lint(
            """
            class Runner:
                def run(self, workload) -> None:
                    pass
            """,
            rule="RAQO008",
        )
        assert _ids(findings) == ["RAQO008"]
        assert "workload" in findings[0].message

    def test_unannotated_varargs_are_flagged(self, lint):
        findings = lint(
            """
            def spread(*args, **kwargs) -> None:
                pass
            """,
            rule="RAQO008",
        )
        assert _ids(findings) == ["RAQO008"]
        assert "*args" in findings[0].message
        assert "**kwargs" in findings[0].message

    def test_private_nested_and_dunder_are_exempt(self, lint):
        findings = lint(
            """
            def _helper(x):
                return x


            def outer() -> None:
                def inner(x):
                    return x


            class Runner:
                def __repr__(self):
                    return "Runner"
            """,
            rule="RAQO008",
        )
        assert findings == []

    def test_fully_annotated_api_is_clean(self, lint):
        findings = lint(
            """
            class Runner:
                def __init__(self, retries: int = 3) -> None:
                    self.retries = retries

                @staticmethod
                def parse(text: str) -> int:
                    return int(text)


            def run(workload: list, *, label: str = "raqo") -> int:
                return len(workload)
            """,
            rule="RAQO008",
        )
        assert findings == []


class TestPositionalResourceAxesRAQO009:
    def test_positional_axes_flagged(self, lint):
        findings = lint(
            """
            from repro.cluster.containers import ResourceConfiguration

            config = ResourceConfiguration(10, 4.0)
            """,
            rule="RAQO009",
        )
        assert _ids(findings) == ["RAQO009"]
        assert "keyword" in findings[0].message

    def test_cluster_conditions_positional_flagged(self, lint):
        findings = lint(
            """
            from repro.cluster.cluster import ClusterConditions

            cluster = ClusterConditions(100, 10.0)
            """,
            rule="RAQO009",
        )
        assert _ids(findings) == ["RAQO009"]

    def test_attribute_qualified_call_flagged(self, lint):
        findings = lint(
            """
            import repro.cluster.containers as containers

            config = containers.ResourceConfiguration(10, 4.0)
            """,
            rule="RAQO009",
        )
        assert _ids(findings) == ["RAQO009"]

    def test_star_args_flagged(self, lint):
        findings = lint(
            """
            from repro.cluster.containers import ResourceConfiguration

            axes = (10, 4.0)
            config = ResourceConfiguration(*axes)
            """,
            rule="RAQO009",
        )
        assert _ids(findings) == ["RAQO009"]

    def test_mixed_positional_and_keyword_flagged(self, lint):
        findings = lint(
            """
            from repro.cluster.containers import ResourceConfiguration

            config = ResourceConfiguration(10, container_gb=4.0)
            """,
            rule="RAQO009",
        )
        assert _ids(findings) == ["RAQO009"]

    def test_keyword_calls_are_clean(self, lint):
        findings = lint(
            """
            from repro.cluster.cluster import ClusterConditions
            from repro.cluster.containers import ResourceConfiguration

            config = ResourceConfiguration(
                num_containers=10, container_gb=4.0
            )
            cluster = ClusterConditions(
                max_containers=100, max_container_gb=10.0
            )
            """,
            rule="RAQO009",
        )
        assert findings == []

    def test_unrelated_constructors_are_ignored(self, lint):
        findings = lint(
            """
            def ResourceBudget(a, b):
                return (a, b)


            x = ResourceBudget(1, 2.0)
            y = dict(10, 4.0)
            """,
            rule="RAQO009",
        )
        assert findings == []

    def test_pragma_suppresses(self, lint):
        findings = lint(
            """
            from repro.cluster.containers import ResourceConfiguration

            c = ResourceConfiguration(10, 4.0)  # lint: disable=RAQO009
            """,
            rule="RAQO009",
        )
        assert findings == []


class TestPerCandidateCostingLoopRAQO010:
    def test_scalar_costing_loop_is_flagged(self, lint):
        findings = lint(
            """
            def search(candidates, coster, context):
                best = None
                for left, right, algorithm in candidates:
                    cost, resources = coster.join_cost(
                        left, right, algorithm, context
                    )
                    if best is None or cost < best:
                        best = cost
                return best
            """,
            rule="RAQO010",
        )
        assert _ids(findings) == ["RAQO010"]
        assert "join_cost" in findings[0].message
        assert "cost_batch" in findings[0].message

    def test_grid_costing_loop_is_flagged(self, lint):
        findings = lint(
            """
            def sweep(model, rows, grid):
                return [
                    model.predict_time_grid(a, s, l, grid)
                    for (a, s, l) in rows
                ]
            """,
            rule="RAQO010",
        )
        assert _ids(findings) == ["RAQO010"]
        assert "predict_time_grid" in findings[0].message

    def test_finding_anchors_at_innermost_loop(self, lint):
        findings = lint(
            """
            def search(levels, coster, context):
                for level in levels:
                    for candidate in level:
                        coster.join_cost(*candidate, context)
            """,
            rule="RAQO010",
        )
        assert _ids(findings) == ["RAQO010"]
        assert findings[0].line == 4  # the inner for, not the outer

    def test_batched_call_outside_loop_is_clean(self, lint):
        findings = lint(
            """
            def extend_level(batch, coster, context):
                costed = coster.cost_batch(batch, context)
                return costed
            """,
            rule="RAQO010",
        )
        assert findings == []

    def test_single_call_outside_loop_is_clean(self, lint):
        findings = lint(
            """
            def one(coster, left, right, algorithm, context):
                return coster.join_cost(left, right, algorithm, context)
            """,
            rule="RAQO010",
        )
        assert findings == []

    def test_closure_defined_in_loop_is_clean(self, lint):
        """A function *defined* inside a loop is not driven by it."""
        findings = lint(
            """
            def build(coster, items, context):
                thunks = []
                for item in items:
                    def thunk(item=item):
                        return coster.join_cost(*item, context)
                    thunks.append(thunk)
                return thunks
            """,
            rule="RAQO010",
        )
        assert findings == []

    def test_pragma_on_loop_line_suppresses(self, lint):
        findings = lint(
            """
            def reference(batch, coster, context):
                out = []
                for index in range(len(batch)):  # lint: disable=RAQO010
                    out.append(coster.join_cost(*batch[index], context))
                return out
            """,
            rule="RAQO010",
        )
        assert findings == []

    def test_non_planner_module_is_out_of_scope(self, lint, repo_root):
        source = """
        def recompute(model, winners, context):
            for algorithm, small, large, config in winners:
                model.predict_time(algorithm, small, large, config)
        """
        # The same loop inside a planner search module is a finding...
        planner_path = repo_root / "src/repro/planner/selinger.py"
        flagged = lint(source, rule="RAQO010", path=planner_path)
        assert _ids(flagged) == ["RAQO010"]
        # ... but coster internals (repro.core.raqo) are out of scope.
        coster_path = repo_root / "src/repro/core/raqo.py"
        assert lint(source, rule="RAQO010", path=coster_path) == []

    def test_source_tree_is_clean(self, repo_root):
        from repro.analysis.framework import resolve_rules, run_analysis

        src = repo_root / "src" / "repro"
        findings = run_analysis(
            [src], rules=resolve_rules(["RAQO010"])
        )
        assert findings == []
