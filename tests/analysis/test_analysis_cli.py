"""Exit-code contract and output formats of the linter front ends.

Covers ``repro.analysis.cli.main`` in-process, one real
``python -m repro.analysis`` subprocess, the ``repro lint`` subcommand,
and the meta-test that the live ``src/`` tree is lint-clean.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import run_analysis
from repro.analysis.cli import main as lint_main
from repro.analysis.sarif import validate_sarif
from repro.cli import main as repro_main

BAD_SOURCE = """\
import random


def pick(items):
    return random.choice(items)
"""

CLEAN_SOURCE = """\
import numpy as np


def pick(items: list, rng: np.random.Generator) -> object:
    index = int(rng.integers(len(items)))
    return items[index]
"""


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN_SOURCE)
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_file, capsys):
        assert lint_main([str(clean_file)]) == 0
        assert "invariants clean: 0 findings" in capsys.readouterr().out

    def test_findings_exit_one_with_file_line_output(
        self, bad_file, capsys
    ):
        assert lint_main([str(bad_file)]) == 1
        out = capsys.readouterr().out
        # pick() is unannotated (x2) and draws from the global RNG.
        assert f"{bad_file}:5:" in out
        assert "RAQO001" in out
        assert "RAQO008" in out
        assert "3 finding(s)" in out

    def test_unknown_rule_selector_exits_two(self, clean_file, capsys):
        assert lint_main(["--rule", "RAQO999", str(clean_file)]) == 2
        assert "error:" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().out


class TestOutputModes:
    def test_list_rules_prints_the_catalog(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for index in range(1, 9):
            assert f"RAQO00{index}" in out
        assert "scope:" in out  # scoped rules advertise their roots

    def test_json_format_is_machine_readable(self, bad_file, capsys):
        assert lint_main(["--format", "json", str(bad_file)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["rule_id"] for entry in payload} == {
            "RAQO001",
            "RAQO008",
        }
        assert all(
            entry["path"] == str(bad_file) and entry["line"] >= 1
            for entry in payload
        )

    def test_rule_filter_limits_findings(self, bad_file, capsys):
        assert lint_main(["--rule", "RAQO001", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "RAQO001" in out
        assert "RAQO008" not in out

    def test_no_suppress_reveals_pragmad_findings(self, tmp_path, capsys):
        path = tmp_path / "hushed.py"
        path.write_text(
            "CACHE = {}  # lint: disable=RAQO005\n"
        )
        assert lint_main([str(path)]) == 0
        capsys.readouterr()
        assert lint_main(["--no-suppress", str(path)]) == 1
        assert "RAQO005" in capsys.readouterr().out


class TestRuleSelectorErrors:
    def test_typo_gets_a_did_you_mean_hint(self, clean_file, capsys):
        assert lint_main(["--rule", "RAQO99", str(clean_file)]) == 2
        out = capsys.readouterr().out
        assert "did you mean RAQO009?" in out

    def test_error_lists_every_valid_selector(self, clean_file, capsys):
        assert lint_main(["--rule", "bogus", str(clean_file)]) == 2
        out = capsys.readouterr().out
        assert "Valid selectors:" in out
        for index in range(1, 16):
            assert f"RAQO{index:03d}" in out
        assert "RAQO011/transitive-nondeterminism" in out


class TestSarifFlag:
    def test_sarif_file_is_written_and_validates(
        self, bad_file, tmp_path, capsys
    ):
        target = tmp_path / "out.sarif"
        assert lint_main(["--sarif", str(target), str(bad_file)]) == 1
        log = json.loads(target.read_text())
        assert validate_sarif(log) == []
        assert {
            r["ruleId"] for r in log["runs"][0]["results"]
        } == {"RAQO001", "RAQO008"}

    def test_sarif_dash_prints_to_stdout(self, clean_file, capsys):
        assert lint_main(["--sarif", "-", str(clean_file)]) == 0
        out = capsys.readouterr().out
        log = json.loads(out[: out.rindex("}") + 1])
        assert validate_sarif(log) == []
        assert log["runs"][0]["results"] == []

    def test_sarif_respects_rule_filter(self, bad_file, tmp_path):
        target = tmp_path / "out.sarif"
        assert (
            lint_main(
                [
                    "--rule",
                    "RAQO001",
                    "--sarif",
                    str(target),
                    str(bad_file),
                ]
            )
            == 1
        )
        log = json.loads(target.read_text())
        catalog = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in catalog] == ["RAQO001"]


class TestBaselineFlags:
    def test_update_baseline_requires_baseline(self, bad_file, capsys):
        assert lint_main(["--update-baseline", str(bad_file)]) == 2
        assert "--baseline" in capsys.readouterr().out

    def test_update_then_apply_round_trip(
        self, bad_file, tmp_path, capsys
    ):
        baseline = tmp_path / "lint_baseline.json"
        assert (
            lint_main(
                [
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                    str(bad_file),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "baseline updated" in out
        assert baseline.exists()
        assert (
            lint_main(["--baseline", str(baseline), str(bad_file)]) == 0
        )
        out = capsys.readouterr().out
        assert "covered by baseline" in out
        assert "invariants clean" in out

    def test_new_finding_still_fails_under_baseline(
        self, bad_file, tmp_path, capsys
    ):
        baseline = tmp_path / "lint_baseline.json"
        lint_main(
            [
                "--baseline",
                str(baseline),
                "--update-baseline",
                "--rule",
                "RAQO008",
                str(bad_file),
            ]
        )
        capsys.readouterr()
        # The RAQO001 finding was never baselined, so it still fails.
        assert (
            lint_main(["--baseline", str(baseline), str(bad_file)]) == 1
        )
        out = capsys.readouterr().out
        assert "RAQO001" in out
        assert "RAQO008" not in out

    def test_stale_entries_warn_once_fixed(
        self, bad_file, tmp_path, capsys
    ):
        baseline = tmp_path / "lint_baseline.json"
        lint_main(
            [
                "--baseline",
                str(baseline),
                "--update-baseline",
                str(bad_file),
            ]
        )
        capsys.readouterr()
        bad_file.write_text(CLEAN_SOURCE)
        assert (
            lint_main(["--baseline", str(baseline), str(bad_file)]) == 0
        )
        out = capsys.readouterr().out
        assert "warning: stale baseline entry" in out

    def test_missing_baseline_file_fails_open(self, bad_file, capsys):
        # No baseline on disk yet: everything is a new finding.
        assert (
            lint_main(
                ["--baseline", str(bad_file.parent / "nope.json"),
                 str(bad_file)]
            )
            == 1
        )

    def test_corrupt_baseline_exits_two(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "lint_baseline.json"
        baseline.write_text("{nope")
        assert (
            lint_main(["--baseline", str(baseline), str(bad_file)]) == 2
        )
        assert "error:" in capsys.readouterr().out


class TestGraphFlag:
    def test_graph_dumps_resolved_edges(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text(
            "def helper():\n    return 1\n\n\n"
            "def entry():\n    return helper()\n"
        )
        assert lint_main(["--graph", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# call graph:" in out
        assert "mod.entry -> mod.helper [direct]" in out


class TestEntryPoints:
    def test_python_dash_m_repro_analysis(self, bad_file, repo_root):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(bad_file)],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(bad_file.parent),
        )
        assert result.returncode == 1
        assert "RAQO001" in result.stdout

    def test_repro_lint_subcommand(self, clean_file, bad_file, capsys):
        assert repro_main(["lint", str(clean_file)]) == 0
        capsys.readouterr()
        assert repro_main(["lint", str(bad_file)]) == 1
        assert "RAQO001" in capsys.readouterr().out

    def test_repro_lint_forwards_the_new_flags(
        self, bad_file, tmp_path, capsys
    ):
        target = tmp_path / "out.sarif"
        baseline = tmp_path / "lint_baseline.json"
        assert (
            repro_main(
                [
                    "lint",
                    "--sarif",
                    str(target),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                    str(bad_file),
                ]
            )
            == 0
        )
        assert validate_sarif(json.loads(target.read_text())) == []
        assert baseline.exists()


class TestLiveTree:
    def test_src_tree_is_lint_clean(self, repo_root):
        """The shipped source must satisfy its own invariants."""
        findings = run_analysis([repo_root / "src"])
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"src/ violates its invariants:\n{rendered}"
