"""SARIF export and its structural validator."""

import copy
import json

from repro.analysis.framework import (
    Finding,
    all_rules,
    resolve_rules,
    run_analysis,
)
from repro.analysis.sarif import (
    SARIF_VERSION,
    findings_to_sarif,
    render_sarif,
    validate_sarif,
)

BAD_SOURCE = (
    "import random\n\n\ndef pick(items):\n"
    "    return random.choice(items)\n"
)


def _export(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE)
    findings = run_analysis([path], rules=resolve_rules(["RAQO001"]))
    assert findings, "fixture must produce at least one finding"
    return findings, findings_to_sarif(
        findings, all_rules(), base_dir=tmp_path
    )


class TestExport:
    def test_exported_log_validates(self, tmp_path):
        _, log = _export(tmp_path)
        assert validate_sarif(log) == []

    def test_version_and_tool_identity(self, tmp_path):
        _, log = _export(tmp_path)
        assert log["version"] == SARIF_VERSION == "2.1.0"
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"

    def test_rule_catalog_covers_every_registered_rule(self, tmp_path):
        _, log = _export(tmp_path)
        catalog = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in catalog] == [
            rule.id for rule in all_rules()
        ]
        assert all(r["fullDescription"]["text"] for r in catalog)

    def test_result_points_at_the_finding(self, tmp_path):
        findings, log = _export(tmp_path)
        result = log["runs"][0]["results"][0]
        assert result["ruleId"] == "RAQO001"
        assert result["message"]["text"] == findings[0].message
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "bad.py"
        assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert location["region"]["startLine"] == findings[0].line

    def test_rule_index_agrees_with_catalog(self, tmp_path):
        _, log = _export(tmp_path)
        catalog = log["runs"][0]["tool"]["driver"]["rules"]
        for result in log["runs"][0]["results"]:
            assert (
                catalog[result["ruleIndex"]]["id"] == result["ruleId"]
            )

    def test_results_carry_stable_fingerprints(self, tmp_path):
        _, first = _export(tmp_path)
        _, second = _export(tmp_path)
        fp = lambda log: [  # noqa: E731
            r["partialFingerprints"]["reproLint/v1"]
            for r in log["runs"][0]["results"]
        ]
        assert fp(first) == fp(second)
        assert all(len(f) == 40 for f in fp(first))

    def test_render_is_deterministic_json(self, tmp_path):
        findings, _ = _export(tmp_path)
        first = render_sarif(findings, all_rules(), base_dir=tmp_path)
        second = render_sarif(findings, all_rules(), base_dir=tmp_path)
        assert first == second
        assert validate_sarif(json.loads(first)) == []

    def test_empty_findings_still_produce_a_valid_log(self, tmp_path):
        log = findings_to_sarif([], all_rules(), base_dir=tmp_path)
        assert validate_sarif(log) == []
        assert log["runs"][0]["results"] == []

    def test_file_outside_base_dir_keeps_absolute_uri(self, tmp_path):
        outside = tmp_path / "elsewhere" / "bad.py"
        outside.parent.mkdir()
        outside.write_text(BAD_SOURCE)
        finding = Finding(
            path=str(outside),
            line=5,
            col=12,
            rule_id="RAQO001",
            rule_name="unseeded-random",
            message="boom",
        )
        log = findings_to_sarif(
            [finding], all_rules(), base_dir=tmp_path / "other"
        )
        uri = log["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["artifactLocation"]["uri"]
        assert uri.endswith("elsewhere/bad.py")
        assert validate_sarif(log) == []


class TestValidator:
    def _valid(self, tmp_path):
        return _export(tmp_path)[1]

    def test_non_object_log_is_rejected(self):
        assert validate_sarif([]) == ["log must be an object"]

    def test_wrong_version_is_reported(self, tmp_path):
        log = self._valid(tmp_path)
        log["version"] = "2.0.0"
        assert any("version" in p for p in validate_sarif(log))

    def test_missing_runs_is_reported(self):
        assert any(
            "runs" in p
            for p in validate_sarif({"version": SARIF_VERSION})
        )

    def test_missing_driver_name_is_reported(self, tmp_path):
        log = self._valid(tmp_path)
        del log["runs"][0]["tool"]["driver"]["name"]
        assert any("driver.name" in p for p in validate_sarif(log))

    def test_unknown_rule_id_is_reported(self, tmp_path):
        log = self._valid(tmp_path)
        log["runs"][0]["results"][0]["ruleId"] = "RAQO999"
        assert any(
            "missing from the rule catalog" in p
            for p in validate_sarif(log)
        )

    def test_disagreeing_rule_index_is_reported(self, tmp_path):
        log = self._valid(tmp_path)
        log["runs"][0]["results"][0]["ruleIndex"] += 1
        assert any(
            "ruleIndex disagrees" in p for p in validate_sarif(log)
        )

    def test_missing_message_text_is_reported(self, tmp_path):
        log = self._valid(tmp_path)
        log["runs"][0]["results"][0]["message"] = {}
        assert any("message.text" in p for p in validate_sarif(log))

    def test_zero_start_line_is_reported(self, tmp_path):
        log = self._valid(tmp_path)
        region = log["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        region["startLine"] = 0
        assert any("startLine" in p for p in validate_sarif(log))

    def test_validator_does_not_mutate_the_log(self, tmp_path):
        log = self._valid(tmp_path)
        snapshot = copy.deepcopy(log)
        validate_sarif(log)
        assert log == snapshot
