"""Shared fixtures for the repro.analysis test suite."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import ModuleInfo
from repro.analysis.framework import resolve_rules, run_analysis_on_modules


@pytest.fixture(scope="session")
def repo_root():
    """The repository root (the directory holding src/ and tests/)."""
    return Path(__file__).resolve().parents[2]


@pytest.fixture
def lint():
    """Run rules over one dedented source snippet (standalone file).

    Standalone fixture files sit outside any package, so scoped rules
    fail open and every rule can be exercised on a snippet.
    """

    def run(source, rule=None, path="fixture.py", suppress=True):
        info = ModuleInfo.parse(path, source=textwrap.dedent(source))
        selectors = [rule] if isinstance(rule, str) else rule
        return run_analysis_on_modules(
            [info],
            rules=resolve_rules(selectors),
            respect_suppressions=suppress,
        )

    return run
