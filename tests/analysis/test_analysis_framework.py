"""Framework behaviour: pragmas, module naming, scoping, the registry."""

import pytest

from repro.analysis import (
    AnalysisError,
    Finding,
    ModuleInfo,
    all_rules,
    iter_python_files,
    run_analysis,
)
from repro.analysis.framework import (
    ImportGraph,
    Rule,
    register_rule,
    resolve_rules,
)

MUTABLE_DEFAULT = "def f(acc=[]):\n    pass\n"


class TestFindingRendering:
    def test_render_is_file_line_col_id_name_message(self):
        finding = Finding(
            path="src/repro/core/raqo.py",
            line=12,
            col=5,
            rule_id="RAQO001",
            rule_name="unseeded-random",
            message="boom",
        )
        assert finding.render() == (
            "src/repro/core/raqo.py:12:5: RAQO001 [unseeded-random] boom"
        )

    def test_findings_sort_by_location(self, tmp_path):
        source = "def f(acc=[]):\n    pass\n\n\ndef g(acc=[]):\n    pass\n"
        path = tmp_path / "two.py"
        path.write_text(source)
        findings = run_analysis([path], rules=resolve_rules(["RAQO006"]))
        assert [f.line for f in findings] == [1, 5]


class TestModuleNaming:
    def test_package_file_gets_dotted_name(self, repo_root):
        info = ModuleInfo.parse(repo_root / "src" / "repro" / "core" / "raqo.py")
        assert info.module == "repro.core.raqo"

    def test_package_init_names_the_package(self, repo_root):
        init = repo_root / "src" / "repro" / "core" / "__init__.py"
        assert ModuleInfo.parse(init).module == "repro.core"

    def test_standalone_file_has_no_module(self, tmp_path):
        path = tmp_path / "loose.py"
        path.write_text("x = 1\n")
        assert ModuleInfo.parse(path).module is None

    def test_unparsable_source_raises(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        with pytest.raises(AnalysisError, match="cannot parse"):
            ModuleInfo.parse(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot read"):
            ModuleInfo.parse(tmp_path / "absent.py")


class TestSuppressions:
    def test_same_line_pragma_by_id(self, lint):
        findings = lint(
            "def f(acc=[]):  # lint: disable=RAQO006\n    pass\n",
            rule="RAQO006",
        )
        assert findings == []

    def test_same_line_pragma_by_name_slug(self, lint):
        findings = lint(
            "def f(acc=[]):  # lint: disable=mutable-default-arg\n"
            "    pass\n",
            rule="RAQO006",
        )
        assert findings == []

    def test_standalone_pragma_suppresses_next_line(self, lint):
        findings = lint(
            "# lint: disable=RAQO006\ndef f(acc=[]):\n    pass\n",
            rule="RAQO006",
        )
        assert findings == []

    def test_disable_all_suppresses_every_rule(self, lint):
        findings = lint(
            "def f(acc=[]):  # lint: disable=all\n    pass\n",
        )
        assert findings == []

    def test_pragma_for_other_rule_does_not_suppress(self, lint):
        findings = lint(
            "def f(acc=[]):  # lint: disable=RAQO001\n    pass\n",
            rule="RAQO006",
        )
        assert [f.rule_id for f in findings] == ["RAQO006"]

    def test_file_pragma_in_header_suppresses_whole_file(self, lint):
        findings = lint(
            "# lint: disable-file=RAQO006\n\n" + MUTABLE_DEFAULT,
            rule="RAQO006",
        )
        assert findings == []

    def test_file_pragma_outside_header_window_is_ignored(self, lint):
        filler = "# filler\n" * 11
        findings = lint(
            filler + "# lint: disable-file=RAQO006\n" + MUTABLE_DEFAULT,
            rule="RAQO006",
        )
        assert [f.rule_id for f in findings] == ["RAQO006"]

    def test_no_suppress_mode_reveals_pragmad_findings(self, lint):
        source = "def f(acc=[]):  # lint: disable=RAQO006\n    pass\n"
        assert lint(source, rule="RAQO006") == []
        revealed = lint(source, rule="RAQO006", suppress=False)
        assert [f.rule_id for f in revealed] == ["RAQO006"]

    def test_guard_pragma_is_recorded_per_line(self):
        info = ModuleInfo.parse(
            "fixture.py",
            source="CACHE = {}  # lint: guarded-by=CACHE_LOCK\n",
        )
        assert info.guard_on_line(1) == "CACHE_LOCK"
        assert info.guard_on_line(2) is None


def _write_package(root, files):
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


class TestImportGraphAndScoping:
    @pytest.fixture
    def package(self, tmp_path):
        return _write_package(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/workloads/__init__.py": "",
                "repro/workloads/runner.py": (
                    "from repro import reachable\n"
                ),
                "repro/reachable.py": "from . import leaf\nSHARED = {}\n",
                "repro/leaf.py": "SHARED = {}\n",
                "repro/isolated.py": "SHARED = {}\n",
            },
        )

    def test_reachability_follows_imports_transitively(self, package):
        modules = [
            ModuleInfo.parse(path)
            for path in iter_python_files([package])
        ]
        graph = ImportGraph(modules)
        reachable = graph.reachable_from(["repro.workloads.runner"])
        assert "repro.reachable" in reachable
        assert "repro.leaf" in reachable
        assert "repro.isolated" not in reachable

    def test_scoped_rule_skips_unreachable_modules(self, package):
        findings = run_analysis(
            [package], rules=resolve_rules(["RAQO005"])
        )
        flagged = {f.path.rsplit("/", 1)[-1] for f in findings}
        assert flagged == {"reachable.py", "leaf.py"}

    def test_standalone_files_fail_open_for_scoped_rules(self, lint):
        # RAQO005 is scoped to the runner, yet a bare fixture file is
        # still checked so snippets can exercise the rule.
        findings = lint("SHARED = {}\n", rule="RAQO005")
        assert [f.rule_id for f in findings] == ["RAQO005"]


class TestRegistryAndSelectors:
    def test_all_rules_cover_the_catalog_in_id_order(self):
        assert [rule.id for rule in all_rules()] == [
            f"RAQO{i:03d}" for i in range(1, 16)
        ]

    def test_resolve_by_name_slug(self):
        rules = resolve_rules(["unseeded-random", "RAQO004"])
        assert {rule.id for rule in rules} == {"RAQO001", "RAQO004"}

    def test_unknown_selector_raises(self):
        with pytest.raises(AnalysisError, match="RAQO999"):
            resolve_rules(["RAQO999"])

    def test_rule_without_id_cannot_register(self):
        class Anonymous(Rule):
            pass

        with pytest.raises(AnalysisError, match="must define id"):
            register_rule(Anonymous)

    def test_duplicate_rule_id_cannot_register(self):
        class Impostor(Rule):
            id = "RAQO001"
            name = "impostor"

        with pytest.raises(AnalysisError, match="duplicate"):
            register_rule(Impostor)


class TestFileDiscovery:
    def test_collects_nested_files_and_skips_hidden_dirs(self, tmp_path):
        _write_package(
            tmp_path,
            {
                "a.py": "",
                "sub/b.py": "",
                ".hidden/c.py": "",
                "notes.txt": "",
            },
        )
        names = [p.name for p in iter_python_files([tmp_path])]
        assert names == ["a.py", "b.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="no such file"):
            iter_python_files([tmp_path / "nope"])
