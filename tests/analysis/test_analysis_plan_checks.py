"""Runtime plan well-formedness: check_plan / validate_plan.

Well-formed plans cannot be built malformed (the plan dataclasses
validate at construction), so the negative tests corrupt frozen nodes
with ``object.__setattr__`` -- exactly the kind of damage a buggy
transform could inflict -- and assert the checker reports it instead of
crashing.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.analysis import PlanInvariantError, check_plan, validate_plan
from repro.cluster.cluster import ClusterConditions, ResourceDimension
from repro.cluster.containers import ResourceConfiguration
from repro.engine.joins import JoinAlgorithm
from repro.planner.plan import JoinNode, ScanNode, left_deep_plan


@pytest.fixture
def cluster():
    return ClusterConditions(max_containers=100, max_container_gb=10.0)


def _annotated_plan(config):
    plan = left_deep_plan(["part", "supplier", "lineitem"])
    return plan.map_joins(lambda join: join.with_resources(config))


def _codes(issues):
    return [issue.code for issue in issues]


class TestWellFormedPlans:
    def test_plain_plan_is_clean(self):
        plan = left_deep_plan(["part", "supplier", "lineitem"])
        assert check_plan(plan) == []
        validate_plan(plan)  # must not raise

    def test_fully_annotated_plan_is_clean(self, cluster):
        plan = _annotated_plan(ResourceConfiguration(num_containers=10, container_gb=2.0))
        assert (
            check_plan(plan, cluster=cluster, require_resources=True) == []
        )

    def test_single_scan_is_a_valid_plan(self):
        assert check_plan(ScanNode("lineitem")) == []


class TestStructuralViolations:
    def test_shared_subtree_is_reported(self):
        inner = JoinNode(ScanNode("part"), ScanNode("supplier"))
        outer = JoinNode(inner, ScanNode("lineitem"))
        object.__setattr__(outer, "right", inner)
        issues = check_plan(outer)
        assert "shared-subtree" in _codes(issues)
        assert "overlapping-children" in _codes(issues)

    def test_cycle_is_reported_not_recursed_into(self):
        inner = JoinNode(ScanNode("part"), ScanNode("supplier"))
        outer = JoinNode(inner, ScanNode("lineitem"))
        object.__setattr__(inner, "left", outer)
        issues = check_plan(outer)
        assert "cycle" in _codes(issues)

    def test_duplicate_table_is_reported(self):
        join = JoinNode(ScanNode("part"), ScanNode("supplier"))
        object.__setattr__(join, "right", ScanNode("part"))
        issues = check_plan(join)
        assert "duplicate-table" in _codes(issues)

    def test_non_plan_child_is_bad_arity(self):
        join = JoinNode(ScanNode("part"), ScanNode("supplier"))
        object.__setattr__(join, "right", "not a plan node")
        issues = check_plan(join)
        assert _codes(issues) == ["bad-arity"]
        assert "right" in issues[0].message

    def test_empty_scan_table_is_reported(self):
        scan = ScanNode("part")
        object.__setattr__(scan, "table", "")
        assert _codes(check_plan(scan)) == ["bad-scan"]

    def test_foreign_algorithm_is_reported(self):
        join = JoinNode(ScanNode("part"), ScanNode("supplier"))
        object.__setattr__(join, "algorithm", "hash-ish")
        assert "bad-algorithm" in _codes(check_plan(join))


class TestResourceValidation:
    def test_missing_resources_only_when_required(self):
        plan = left_deep_plan(["part", "supplier", "lineitem"])
        assert check_plan(plan, require_resources=False) == []
        issues = check_plan(plan, require_resources=True)
        # Both joins are unannotated.
        assert _codes(issues) == ["missing-resources", "missing-resources"]

    def test_out_of_envelope_dimension_is_reported(self, cluster):
        plan = _annotated_plan(ResourceConfiguration(num_containers=500, container_gb=2.0))
        issues = check_plan(plan, cluster=cluster)
        assert "dimension-out-of-envelope" in _codes(issues)
        assert any("num_containers=500" in i.message for i in issues)

    def test_dimensions_are_validated_by_name_not_position(self):
        # A cluster exposing an axis the configuration lacks must fail
        # loudly by *name* -- positional indexing would mask this.
        duck_cluster = SimpleNamespace(
            dimensions=(
                ResourceDimension("num_containers", 1, 100, 1),
                ResourceDimension("cpu_cores", 1, 8, 1),
            )
        )
        plan = _annotated_plan(ResourceConfiguration(num_containers=10, container_gb=2.0))
        issues = check_plan(plan, cluster=duck_cluster)
        assert "missing-dimension" in _codes(issues)
        assert any("cpu_cores" in issue.message for issue in issues)

    def test_non_configuration_resources_are_reported(self, cluster):
        plan = left_deep_plan(["part", "supplier"])
        plan = dataclasses.replace(plan, resources=("not", "a", "config"))
        issues = check_plan(plan, cluster=cluster)
        assert _codes(issues) == ["bad-resources"]


class TestValidatePlan:
    def test_raises_with_rendered_issues(self):
        join = JoinNode(
            ScanNode("part"),
            ScanNode("supplier"),
            algorithm=JoinAlgorithm.SORT_MERGE,
        )
        object.__setattr__(join, "right", ScanNode("part"))
        with pytest.raises(PlanInvariantError) as excinfo:
            validate_plan(join)
        message = str(excinfo.value)
        assert "duplicate-table" in message
        assert "root" in message

    def test_optimized_plans_pass(self, cluster):
        from repro.catalog import tpch
        from repro.core.raqo import RaqoPlanner

        planner = RaqoPlanner.default(
            tpch.tpch_catalog(100), cluster=cluster
        )
        result = planner.optimize(tpch.EVALUATION_QUERIES[0])
        validate_plan(
            result.plan, cluster=cluster, require_resources=True
        )
