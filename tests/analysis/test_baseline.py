"""Baseline fingerprints, filtering, and round-trips."""

import json

import pytest

from repro.analysis.framework import AnalysisError, Finding
from repro.analysis.baseline import (
    BASELINE_VERSION,
    BaselineEntry,
    apply_baseline,
    build_baseline,
    finding_fingerprint,
    format_stale,
    load_baseline,
    write_baseline,
)


def make_finding(
    path="src/mod.py", line=10, rule_id="RAQO001", message="boom"
):
    return Finding(
        path=path,
        line=line,
        col=1,
        rule_id=rule_id,
        rule_name="unseeded-random",
        message=message,
    )


class TestFingerprint:
    def test_line_drift_does_not_change_identity(self, tmp_path):
        a = make_finding(path=str(tmp_path / "m.py"), line=10)
        b = make_finding(path=str(tmp_path / "m.py"), line=99)
        assert finding_fingerprint(a, tmp_path) == finding_fingerprint(
            b, tmp_path
        )

    def test_rule_path_and_message_all_matter(self, tmp_path):
        base = make_finding(path=str(tmp_path / "m.py"))
        fingerprints = {
            finding_fingerprint(base, tmp_path),
            finding_fingerprint(
                make_finding(path=str(tmp_path / "m.py"), rule_id="RAQO002"),
                tmp_path,
            ),
            finding_fingerprint(
                make_finding(path=str(tmp_path / "other.py")), tmp_path
            ),
            finding_fingerprint(
                make_finding(path=str(tmp_path / "m.py"), message="kaboom"),
                tmp_path,
            ),
        }
        assert len(fingerprints) == 4

    def test_fingerprint_is_relative_to_base_dir(self, tmp_path):
        # The same repo checked out at two roots produces identical
        # fingerprints, so baselines are machine-portable.
        one = tmp_path / "clone_a" / "src"
        two = tmp_path / "clone_b" / "src"
        one.mkdir(parents=True)
        two.mkdir(parents=True)
        a = make_finding(path=str(one / "m.py"))
        b = make_finding(path=str(two / "m.py"))
        assert finding_fingerprint(
            a, one.parent
        ) == finding_fingerprint(b, two.parent)


class TestApplyBaseline:
    def test_splits_new_matched_and_stale(self, tmp_path):
        covered = make_finding(path=str(tmp_path / "m.py"))
        novel = make_finding(
            path=str(tmp_path / "m.py"), message="fresh"
        )
        gone = make_finding(
            path=str(tmp_path / "m.py"), message="paid off"
        )
        entries = [
            _entry(covered, tmp_path),
            _entry(gone, tmp_path),
        ]
        result = apply_baseline([covered, novel], entries, tmp_path)
        assert result.matched == [covered]
        assert result.new == [novel]
        assert [e.message for e in result.stale] == ["paid off"]

    def test_empty_baseline_passes_everything_through(self, tmp_path):
        finding = make_finding(path=str(tmp_path / "m.py"))
        result = apply_baseline([finding], [], tmp_path)
        assert result.new == [finding]
        assert result.matched == []
        assert result.stale == []

    def test_format_stale_mentions_rule_and_path(self, tmp_path):
        gone = make_finding(path=str(tmp_path / "m.py"))
        warnings = format_stale([_entry(gone, tmp_path)])
        assert len(warnings) == 1
        assert "RAQO001" in warnings[0]
        assert "m.py" in warnings[0]


class TestBuildAndRoundTrip:
    def test_round_trip_through_disk(self, tmp_path):
        findings = [
            make_finding(path=str(tmp_path / "a.py")),
            make_finding(path=str(tmp_path / "b.py"), rule_id="RAQO006"),
        ]
        document = build_baseline(findings, base_dir=tmp_path)
        target = tmp_path / "lint_baseline.json"
        write_baseline(target, document)
        entries = load_baseline(target)
        assert len(entries) == 2
        result = apply_baseline(findings, entries, tmp_path)
        assert result.new == []
        assert len(result.matched) == 2
        assert result.stale == []

    def test_new_entries_get_a_todo_justification(self, tmp_path):
        document = build_baseline(
            [make_finding(path=str(tmp_path / "a.py"))],
            base_dir=tmp_path,
        )
        assert document["version"] == BASELINE_VERSION
        assert document["findings"][0]["justification"].startswith(
            "TODO"
        )
        assert document["findings"][0]["path"] == "a.py"

    def test_update_preserves_human_justifications(self, tmp_path):
        finding = make_finding(path=str(tmp_path / "a.py"))
        first = build_baseline([finding], base_dir=tmp_path)
        first["findings"][0]["justification"] = "legacy seed data"
        target = tmp_path / "lint_baseline.json"
        write_baseline(target, first)
        second = build_baseline(
            [finding],
            previous=load_baseline(target),
            base_dir=tmp_path,
        )
        assert (
            second["findings"][0]["justification"] == "legacy seed data"
        )

    def test_repeated_findings_collapse_to_one_entry(self, tmp_path):
        findings = [
            make_finding(path=str(tmp_path / "a.py"), line=3),
            make_finding(path=str(tmp_path / "a.py"), line=30),
        ]
        document = build_baseline(findings, base_dir=tmp_path)
        assert len(document["findings"]) == 1


class TestLoadValidation:
    def _write(self, tmp_path, payload):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps(payload))
        return target

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot read"):
            load_baseline(tmp_path / "absent.json")

    def test_invalid_json_raises(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("{nope")
        with pytest.raises(AnalysisError, match="not valid JSON"):
            load_baseline(target)

    def test_wrong_version_raises(self, tmp_path):
        target = self._write(
            tmp_path, {"version": 99, "findings": []}
        )
        with pytest.raises(AnalysisError, match="version"):
            load_baseline(target)

    def test_non_list_findings_raises(self, tmp_path):
        target = self._write(
            tmp_path, {"version": BASELINE_VERSION, "findings": {}}
        )
        with pytest.raises(AnalysisError, match="must be a list"):
            load_baseline(target)

    def test_entry_missing_fingerprint_raises(self, tmp_path):
        target = self._write(
            tmp_path,
            {
                "version": BASELINE_VERSION,
                "findings": [
                    {"rule_id": "RAQO001", "path": "a.py", "message": "m"}
                ],
            },
        )
        with pytest.raises(AnalysisError, match="fingerprint"):
            load_baseline(target)

    def test_missing_justification_gets_default(self, tmp_path):
        finding = make_finding(path=str(tmp_path / "a.py"))
        target = self._write(
            tmp_path,
            {
                "version": BASELINE_VERSION,
                "findings": [
                    {
                        "fingerprint": finding_fingerprint(
                            finding, tmp_path
                        ),
                        "rule_id": "RAQO001",
                        "path": "a.py",
                        "message": "boom",
                    }
                ],
            },
        )
        entries = load_baseline(target)
        assert entries[0].justification.startswith("TODO")


def _entry(finding, base_dir):
    return BaselineEntry(
        fingerprint=finding_fingerprint(finding, base_dir),
        rule_id=finding.rule_id,
        path=finding.path,
        message=finding.message,
        justification="accepted",
    )
