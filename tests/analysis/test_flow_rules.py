"""The whole-program rules RAQO011-RAQO015."""

TRANSITIVE_CLOCK = """
import time


def plan(query):
    return _helper(query)


def _helper(query):
    return _deeper(query)


def _deeper(query):
    return time.time()
"""


class TestTransitiveNondeterminism:
    def test_two_hop_wall_clock_chain_is_flagged(self, lint):
        findings = lint(TRANSITIVE_CLOCK, rule="RAQO011")
        assert [f.rule_id for f in findings] == ["RAQO011"]
        finding = findings[0]
        # Anchored at the entry point's def, not at the source.
        assert finding.line == 5
        assert "wall-clock" in finding.message
        assert "time.time()" in finding.message
        assert "2 hops" in finding.message
        assert (
            "fixture.plan -> fixture._helper -> fixture._deeper"
            in finding.message
        )

    def test_syntactic_rule_misses_the_entry_point(self, lint):
        # The whole point of RAQO011: RAQO002 sees only the line with
        # the banned call, never the entry that transitively runs it.
        syntactic = lint(TRANSITIVE_CLOCK, rule="RAQO002")
        assert [f.line for f in syntactic] == [14]

    def test_source_in_the_entry_itself_is_not_duplicated(self, lint):
        # Zero-hop reaches are the syntactic rules' territory.
        source = """
        import time


        def plan(query):
            return time.time()
        """
        assert lint(source, rule="RAQO011") == []
        assert len(lint(source, rule="RAQO002")) == 1

    def test_environ_reached_through_helper(self, lint):
        source = """
        import os


        def plan(query):
            return _helper()


        def _helper():
            return os.environ["RAQO_MODE"]
        """
        findings = lint(source, rule="RAQO011")
        assert len(findings) == 1
        assert "environ" in findings[0].message

    def test_seeded_rng_is_not_a_source(self, lint):
        source = """
        import numpy as np


        def plan(query):
            return _helper()


        def _helper():
            rng = np.random.default_rng(42)
            return rng.random()
        """
        assert lint(source, rule="RAQO011") == []

    def test_private_helpers_are_not_entry_points(self, lint):
        source = """
        import time


        def _plan(query):
            return _helper(query)


        def _helper(query):
            return time.time()
        """
        assert lint(source, rule="RAQO011") == []


class TestUnverifiedLockGuard:
    def test_never_held_lock_pragma_is_flagged(self, lint):
        source = """
        import threading

        _LOCK = threading.Lock()
        CACHE = {}  # lint: guarded-by=_LOCK


        def put(key, value):
            CACHE[key] = value
        """
        findings = lint(source, rule="RAQO012")
        assert [f.rule_id for f in findings] == ["RAQO012"]
        finding = findings[0]
        assert finding.line == 9
        assert "guarded-by=_LOCK" in finding.message
        assert "without 'with _LOCK:' held" in finding.message

    def test_mutation_under_the_lock_passes(self, lint):
        source = """
        import threading

        _LOCK = threading.Lock()
        CACHE = {}  # lint: guarded-by=_LOCK


        def put(key, value):
            with _LOCK:
                CACHE[key] = value
        """
        assert lint(source, rule="RAQO012") == []

    def test_only_the_unguarded_site_is_flagged(self, lint):
        source = """
        import threading

        _LOCK = threading.Lock()
        CACHE = {}  # lint: guarded-by=_LOCK


        def put(key, value):
            with _LOCK:
                CACHE[key] = value


        def evict(key):
            CACHE.pop(key, None)
        """
        findings = lint(source, rule="RAQO012")
        assert [f.line for f in findings] == [14]
        assert "CACHE.pop(...)" in findings[0].message

    def test_refuted_raqo005_suppression_is_flagged(self, lint):
        source = """
        CACHE = {}  # lint: disable=RAQO005


        def put(key, value):
            CACHE[key] = value
        """
        findings = lint(source, rule="RAQO012")
        assert len(findings) == 1
        assert "suppresses RAQO005" in findings[0].message
        assert "no lock held" in findings[0].message

    def test_suppression_with_some_lock_held_is_trusted(self, lint):
        source = """
        import threading

        _LOCK = threading.Lock()
        CACHE = {}  # lint: disable=RAQO005


        def put(key, value):
            with _LOCK:
                CACHE[key] = value
        """
        assert lint(source, rule="RAQO012") == []

    def test_local_shadow_is_not_a_mutation(self, lint):
        source = """
        CACHE = {}  # lint: guarded-by=_LOCK


        def compute():
            CACHE = {}
            CACHE["x"] = 1
            return CACHE
        """
        assert lint(source, rule="RAQO012") == []

    def test_wrong_lock_held_is_flagged(self, lint):
        source = """
        import threading

        _LOCK = threading.Lock()
        _OTHER = threading.Lock()
        CACHE = {}  # lint: guarded-by=_LOCK


        def put(key, value):
            with _OTHER:
                CACHE[key] = value
        """
        findings = lint(source, rule="RAQO012")
        assert len(findings) == 1


class TestUnitMismatch:
    def test_adding_gb_to_seconds_is_flagged(self, lint):
        source = """
        from repro.units import GB, Seconds


        def bad_total(size_gb: GB, elapsed: Seconds) -> GB:
            return size_gb + elapsed
        """
        findings = lint(source, rule="RAQO013")
        assert len(findings) == 1
        assert "unit mismatch: 'gb' + 's'" in findings[0].message

    def test_comparing_dollars_with_seconds_is_flagged(self, lint):
        source = """
        from repro.units import Dollars, Seconds


        def worth_it(price: Dollars, elapsed: Seconds) -> bool:
            return price < elapsed
        """
        findings = lint(source, rule="RAQO013")
        assert len(findings) == 1
        assert "comparing 'usd' with 's'" in findings[0].message

    def test_wrong_return_dimension_is_flagged(self, lint):
        source = """
        from repro.units import GB, Seconds


        def elapsed_gb(elapsed: Seconds) -> GB:
            return elapsed
        """
        findings = lint(source, rule="RAQO013")
        assert len(findings) == 1
        assert "returns 's' but is annotated 'gb'" in findings[0].message

    def test_annotated_local_contradiction_is_flagged(self, lint):
        source = """
        from repro.units import GB, Seconds


        def convert(elapsed: Seconds) -> GB:
            total: GB = elapsed
            return total
        """
        findings = lint(source, rule="RAQO013")
        assert len(findings) == 1
        assert (
            "'total' is declared 'gb' but assigned 's'"
            in findings[0].message
        )

    def test_constructor_call_is_a_sanctioned_cast(self, lint):
        source = """
        from repro.units import GB, Seconds


        def convert(size_gb: GB) -> Seconds:
            return Seconds(size_gb)
        """
        assert lint(source, rule="RAQO013") == []

    def test_derived_units_recover_through_mult_and_div(self, lint):
        source = """
        from repro.units import GB, Seconds


        def roundtrip(size_gb: GB, elapsed: Seconds) -> GB:
            throughput = size_gb / elapsed
            return throughput * elapsed
        """
        assert lint(source, rule="RAQO013") == []

    def test_compound_unit_dollars_per_hour(self, lint):
        source = """
        from repro.units import Dollars, DollarsPerHour, Seconds


        def bill(rate: DollarsPerHour, elapsed: Seconds) -> Dollars:
            return rate * elapsed
        """
        assert lint(source, rule="RAQO013") == []

    def test_min_mixing_dimensions_is_flagged(self, lint):
        source = """
        from repro.units import GB, Seconds


        def worst(size_gb: GB, elapsed: Seconds):
            return min(size_gb, elapsed)
        """
        findings = lint(source, rule="RAQO013")
        assert len(findings) == 1
        assert "'min()' mixes gb and s" in findings[0].message

    def test_unknown_operands_propagate_silently(self, lint):
        source = """
        from repro.units import Seconds


        def pad(raw, elapsed: Seconds) -> Seconds:
            return raw + elapsed
        """
        assert lint(source, rule="RAQO013") == []

    def test_dimensionless_literals_scale_freely(self, lint):
        source = """
        from repro.units import Seconds


        def double(elapsed: Seconds) -> Seconds:
            return 2.0 * elapsed + 0.5
        """
        assert lint(source, rule="RAQO013") == []


UNPICKLABLE_PREAMBLE = """
import threading
from concurrent.futures import ProcessPoolExecutor


class Tracer:
    def __init__(self, seed: int):
        self.seed = seed
        self._lock = threading.Lock()


def _init(payload):
    return payload
"""


class TestUnpicklableProcessState:
    def test_shipping_the_tracer_itself_is_flagged(self, lint):
        source = UNPICKLABLE_PREAMBLE + """

def launch(tracer: Tracer):
    with ProcessPoolExecutor(
        initializer=_init, initargs=(tracer,)
    ) as pool:
        return pool
"""
        findings = lint(source, rule="RAQO014")
        assert [f.rule_id for f in findings] == ["RAQO014"]
        assert "ships a Tracer" in findings[0].message
        assert "threading.Lock" in findings[0].message

    def test_shipping_the_plain_seed_field_passes(self, lint):
        source = UNPICKLABLE_PREAMBLE + """

def launch(tracer: Tracer):
    with ProcessPoolExecutor(
        initializer=_init, initargs=(tracer.seed,)
    ) as pool:
        return pool
"""
        assert lint(source, rule="RAQO014") == []

    def test_dict_payload_entries_are_labelled(self, lint):
        source = UNPICKLABLE_PREAMBLE + """

def launch(tracer: Tracer):
    payload = {"tracer": tracer, "seed": tracer.seed}
    with ProcessPoolExecutor(
        initializer=_init, initargs=(payload,)
    ) as pool:
        return pool
"""
        findings = lint(source, rule="RAQO014")
        assert len(findings) == 1
        assert "payload entry 'tracer'" in findings[0].message

    def test_custom_getstate_exempts_the_class(self, lint):
        source = """
import threading
from concurrent.futures import ProcessPoolExecutor


class Tracer:
    def __init__(self, seed: int):
        self.seed = seed
        self._lock = threading.Lock()

    def __getstate__(self):
        return {"seed": self.seed}


def _init(payload):
    return payload


def launch(tracer: Tracer):
    with ProcessPoolExecutor(
        initializer=_init, initargs=(tracer,)
    ) as pool:
        return pool
"""
        assert lint(source, rule="RAQO014") == []

    def test_transitive_holders_are_inferred(self, lint):
        source = """
import threading
from concurrent.futures import ProcessPoolExecutor


class Registry:
    def __init__(self):
        self._lock = threading.Lock()


class Session:
    def __init__(self):
        self.registry = Registry()


def _init(payload):
    return payload


def launch():
    session = Session()
    with ProcessPoolExecutor(
        initializer=_init, initargs=(session,)
    ) as pool:
        return pool
"""
        findings = lint(source, rule="RAQO014")
        assert len(findings) == 1
        assert "ships a Session" in findings[0].message
        assert "Registry is" in findings[0].message


class TestDeadSuppression:
    def test_dead_line_pragma_is_flagged(self, lint):
        source = """
        def f():
            return 1  # lint: disable=RAQO006
        """
        findings = lint(source, rule="RAQO015")
        assert [f.rule_id for f in findings] == ["RAQO015"]
        assert (
            "suppression of RAQO006 is dead" in findings[0].message
        )

    def test_live_pragma_is_not_flagged(self, lint):
        source = """
        def f(acc=[]):  # lint: disable=RAQO006
            pass
        """
        assert lint(source, rule="RAQO015") == []

    def test_unknown_rule_label_is_flagged(self, lint):
        source = "x = 1  # lint: disable=RAQO099\n"
        findings = lint(source, rule="RAQO015")
        assert len(findings) == 1
        assert "unknown rule 'RAQO099'" in findings[0].message

    def test_dead_file_pragma_is_flagged(self, lint):
        source = "# lint: disable-file=RAQO006\n\nx = 1\n"
        findings = lint(source, rule="RAQO015")
        assert len(findings) == 1
        assert "anywhere in this file" in findings[0].message

    def test_live_file_pragma_is_not_flagged(self, lint):
        source = (
            "# lint: disable-file=RAQO006\n\n"
            "def f(acc=[]):\n    pass\n"
        )
        assert lint(source, rule="RAQO015") == []

    def test_disable_all_is_never_audited(self, lint):
        source = """
        def f():
            return 1  # lint: disable=all
        """
        assert lint(source, rule="RAQO015") == []

    def test_standalone_dead_pragma_targets_next_line(self, lint):
        source = """
        def f():
            # lint: disable=RAQO006
            return 1
        """
        findings = lint(source, rule="RAQO015")
        assert len(findings) == 1
        assert "on line 4" in findings[0].message
