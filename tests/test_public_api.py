"""Snapshot test pinning the public API surface.

The supported surface -- ``repro``, :mod:`repro.api`, and the
observability modules -- is recorded in ``public_api_manifest.json``
next to this file.  Any addition, removal, or rename shows up as a diff
against the manifest, so surface changes are always a deliberate,
reviewed edit of that file rather than an accident.

To update after an intentional change::

    PYTHONPATH=src python tests/test_public_api.py --update
"""

import inspect
import json
from pathlib import Path

import repro
import repro.api
import repro.obs.export
import repro.obs.metrics
import repro.obs.tracing
import repro.serving

MANIFEST_PATH = Path(__file__).parent / "public_api_manifest.json"


def _public_members(obj) -> list:
    """Sorted public attribute names, methods and properties alike."""
    return sorted(
        name
        for name in dir(obj)
        if not name.startswith("_")
    )


def current_surface() -> dict:
    """The live public surface, in manifest form."""
    return {
        "repro": sorted(repro.__all__),
        "repro.api": sorted(repro.api.__all__),
        "repro.api.RaqoSession": _public_members(repro.api.RaqoSession),
        "repro.api.RunResult": _public_members(repro.api.RunResult),
        "repro.obs.tracing": sorted(repro.obs.tracing.__all__),
        "repro.obs.metrics": sorted(repro.obs.metrics.__all__),
        "repro.obs.export": sorted(repro.obs.export.__all__),
        "repro.serving": sorted(repro.serving.__all__),
        "repro.serving.OptimizerService": _public_members(
            repro.serving.OptimizerService
        ),
        "repro.serving.ServiceConfig": _public_members(
            repro.serving.ServiceConfig
        ),
        # Parameter names plus kind markers ("*name" = keyword-only),
        # not defaults: default *values* may evolve, the calling
        # convention may not.
        "repro.api.RaqoSession.__init__": [
            ("*" if param.kind is param.KEYWORD_ONLY else "")
            + param.name
            for param in inspect.signature(
                repro.api.RaqoSession.__init__
            ).parameters.values()
            if param.name != "self"
        ],
    }


def test_public_surface_matches_manifest():
    recorded = json.loads(MANIFEST_PATH.read_text())
    live = current_surface()
    assert live == recorded, (
        "public API surface drifted from tests/public_api_manifest.json; "
        "if the change is intentional, run "
        "`PYTHONPATH=src python tests/test_public_api.py --update`"
    )


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None
    for name in repro.api.__all__:
        assert getattr(repro.api, name, None) is not None


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        MANIFEST_PATH.write_text(
            json.dumps(current_surface(), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {MANIFEST_PATH}")
    else:
        print(json.dumps(current_surface(), indent=2, sort_keys=True))
