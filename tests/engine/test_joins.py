"""Tests for repro.engine.joins, including the paper's anchors."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.containers import ResourceConfiguration
from repro.engine.joins import (
    JoinAlgorithm,
    JoinExecution,
    best_join,
    bhj_execution,
    bhj_feasible,
    default_num_reducers,
    join_execution,
    num_map_tasks,
    smj_execution,
)
from repro.engine.profiles import HIVE_PROFILE


def rc(nc, cs):
    return ResourceConfiguration(num_containers=nc, container_gb=cs)


class TestHelpers:
    def test_default_num_reducers(self, hive_profile):
        assert default_num_reducers(2.5, hive_profile) == 10
        assert default_num_reducers(0.0, hive_profile) == 1

    def test_default_num_reducers_capped(self, hive_profile):
        assert (
            default_num_reducers(1e6, hive_profile)
            == hive_profile.max_reducers
        )

    def test_num_map_tasks(self, hive_profile):
        assert num_map_tasks(1.0, hive_profile) == 4
        assert num_map_tasks(0.0, hive_profile) == 1

    def test_negative_data_rejected(self, hive_profile):
        with pytest.raises(ValueError):
            default_num_reducers(-1.0, hive_profile)
        with pytest.raises(ValueError):
            num_map_tasks(-1.0, hive_profile)


class TestInputValidation:
    def test_unsorted_inputs_rejected(self, hive_profile):
        with pytest.raises(ValueError):
            smj_execution(10.0, 5.0, rc(10, 4.0), hive_profile)
        with pytest.raises(ValueError):
            bhj_execution(10.0, 5.0, rc(10, 4.0), hive_profile)

    def test_negative_inputs_rejected(self, hive_profile):
        with pytest.raises(ValueError):
            smj_execution(-1.0, 5.0, rc(10, 4.0), hive_profile)

    def test_zero_reducers_rejected(self, hive_profile):
        with pytest.raises(ValueError):
            smj_execution(
                1.0, 5.0, rc(10, 4.0), hive_profile, num_reducers=0
            )

    def test_unknown_algorithm_rejected(self, hive_profile):
        with pytest.raises(ValueError):
            join_execution(
                "nested-loop", 1.0, 5.0, rc(10, 4.0), hive_profile
            )


class TestExecutionInvariants:
    def test_smj_always_feasible(self, hive_profile):
        run = smj_execution(50.0, 77.0, rc(1, 1.0), hive_profile)
        assert run.feasible
        assert math.isfinite(run.time_s)

    def test_bhj_oom_wall(self, hive_profile):
        wall = hive_profile.hash_memory_fraction * 3.0
        below = bhj_execution(wall - 0.1, 77.0, rc(10, 3.0), hive_profile)
        above = bhj_execution(wall + 0.1, 77.0, rc(10, 3.0), hive_profile)
        assert below.feasible
        assert not above.feasible
        assert above.time_s == math.inf

    def test_bhj_feasible_predicate(self, hive_profile):
        assert bhj_feasible(3.0, rc(10, 3.0), hive_profile)
        assert not bhj_feasible(3.5, rc(10, 3.0), hive_profile)

    def test_bhj_feasible_negative_rejected(self, hive_profile):
        with pytest.raises(ValueError):
            bhj_feasible(-1.0, rc(10, 3.0), hive_profile)

    def test_breakdown_sums_to_time(self, hive_profile):
        run = smj_execution(3.0, 77.0, rc(10, 4.0), hive_profile)
        total = (
            run.breakdown["fixed"]
            + run.breakdown["map"]
            + run.breakdown["reduce"]
        )
        assert total == pytest.approx(run.time_s)

    def test_bhj_breakdown_sums_to_time(self, hive_profile):
        run = bhj_execution(3.0, 77.0, rc(10, 4.0), hive_profile)
        total = (
            run.breakdown["fixed"]
            + run.breakdown["broadcast"]
            + run.breakdown["build"]
            + run.breakdown["probe"]
        )
        assert total == pytest.approx(run.time_s)

    def test_join_execution_dispatch(self, hive_profile):
        config = rc(10, 4.0)
        smj = join_execution(
            JoinAlgorithm.SORT_MERGE, 3.0, 77.0, config, hive_profile
        )
        bhj = join_execution(
            JoinAlgorithm.BROADCAST_HASH, 3.0, 77.0, config, hive_profile
        )
        assert smj.algorithm is JoinAlgorithm.SORT_MERGE
        assert bhj.algorithm is JoinAlgorithm.BROADCAST_HASH

    def test_best_join_picks_faster(self, hive_profile):
        config = rc(10, 9.0)
        best = best_join(3.0, 77.0, config, hive_profile)
        smj = smj_execution(3.0, 77.0, config, hive_profile)
        bhj = bhj_execution(3.0, 77.0, config, hive_profile)
        assert best.time_s == min(smj.time_s, bhj.time_s)

    def test_best_join_falls_back_to_smj_on_oom(self, hive_profile):
        best = best_join(9.0, 77.0, rc(10, 3.0), hive_profile)
        assert best.algorithm is JoinAlgorithm.SORT_MERGE

    def test_infeasible_execution_shape(self, hive_profile):
        run = bhj_execution(20.0, 77.0, rc(10, 3.0), hive_profile)
        with pytest.raises(ValueError):
            JoinExecution(
                algorithm=run.algorithm,
                feasible=True,
                time_s=math.inf,
                num_tasks=1,
            )
        with pytest.raises(ValueError):
            JoinExecution(
                algorithm=run.algorithm,
                feasible=False,
                time_s=1.0,
                num_tasks=1,
            )


class TestMonotonicity:
    """The directional behaviours the paper's Sec III establishes."""

    def test_smj_improves_with_parallelism(self, hive_profile):
        times = [
            smj_execution(3.4, 77.0, rc(nc, 3.0), hive_profile).time_s
            for nc in (5, 10, 20, 40)
        ]
        assert times == sorted(times, reverse=True)

    def test_smj_stable_over_container_size(self, hive_profile):
        times = [
            smj_execution(5.1, 77.0, rc(10, cs), hive_profile).time_s
            for cs in (2.0, 4.0, 6.0, 8.0, 10.0)
        ]
        assert max(times) / min(times) < 1.25

    def test_bhj_improves_with_container_size(self, hive_profile):
        times = [
            bhj_execution(5.1, 77.0, rc(10, cs), hive_profile).time_s
            for cs in (5.0, 6.0, 7.0, 8.0, 9.0, 10.0)
        ]
        assert times == sorted(times, reverse=True)

    def test_bhj_broadcast_grows_with_containers(self, hive_profile):
        small = bhj_execution(3.0, 77.0, rc(10, 9.0), hive_profile)
        large = bhj_execution(3.0, 77.0, rc(50, 9.0), hive_profile)
        assert (
            large.breakdown["broadcast"] > small.breakdown["broadcast"]
        )

    @given(
        st.floats(min_value=0.1, max_value=8.0),
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=1.0, max_value=12.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_times_positive_and_finite_when_feasible(
        self, ss, nc, cs
    ):
        config = rc(nc, cs)
        smj = smj_execution(ss, 77.0, config, HIVE_PROFILE)
        assert smj.time_s > 0 and math.isfinite(smj.time_s)
        bhj = bhj_execution(ss, 77.0, config, HIVE_PROFILE)
        if bhj.feasible:
            assert bhj.time_s > 0 and math.isfinite(bhj.time_s)
        else:
            assert ss > HIVE_PROFILE.hash_memory_fraction * cs


class TestPaperAnchors:
    """The calibration anchors from the paper's Figs 3-4 (DESIGN.md)."""

    def test_fig3a_smj_wins_below_7gb(self, hive_profile):
        for cs in (5.0, 6.0):
            config = rc(10, cs)
            assert (
                smj_execution(5.1, 77.0, config, hive_profile).time_s
                < bhj_execution(5.1, 77.0, config, hive_profile).time_s
            )

    def test_fig3a_bhj_wins_from_7gb(self, hive_profile):
        for cs in (7.0, 8.0, 9.0, 10.0):
            config = rc(10, cs)
            assert (
                bhj_execution(5.1, 77.0, config, hive_profile).time_s
                < smj_execution(5.1, 77.0, config, hive_profile).time_s
            )

    def test_fig3a_bhj_oom_below_5gb(self, hive_profile):
        assert not bhj_execution(
            5.1, 77.0, rc(10, 4.0), hive_profile
        ).feasible
        assert bhj_execution(
            5.1, 77.0, rc(10, 5.0), hive_profile
        ).feasible

    def test_fig3b_bhj_wins_below_20_containers(self, hive_profile):
        for nc in (5, 10, 15):
            config = rc(nc, 3.0)
            assert (
                bhj_execution(3.4, 77.0, config, hive_profile).time_s
                < smj_execution(3.4, 77.0, config, hive_profile).time_s
            )

    def test_fig3b_smj_wins_from_20_containers(self, hive_profile):
        for nc in (20, 30, 40):
            config = rc(nc, 3.0)
            assert (
                smj_execution(3.4, 77.0, config, hive_profile).time_s
                < bhj_execution(3.4, 77.0, config, hive_profile).time_s
            )

    def test_fig3b_smj_about_2x_faster_at_40(self, hive_profile):
        config = rc(40, 3.0)
        smj = smj_execution(3.4, 77.0, config, hive_profile).time_s
        bhj = bhj_execution(3.4, 77.0, config, hive_profile).time_s
        assert bhj / smj >= 1.6

    def test_fig4a_switch_near_6gb_with_9gb_containers(
        self, hive_profile
    ):
        config = rc(10, 9.0)
        assert (
            bhj_execution(5.5, 77.0, config, hive_profile).time_s
            < smj_execution(5.5, 77.0, config, hive_profile).time_s
        )
        assert (
            smj_execution(7.0, 77.0, config, hive_profile).time_s
            < bhj_execution(7.0, 77.0, config, hive_profile).time_s
        )

    def test_fig4a_3gb_wall_at_3_45(self, hive_profile):
        config = rc(10, 3.0)
        # BHJ wins right up to the OOM wall, as in the paper.
        assert (
            bhj_execution(3.4, 77.0, config, hive_profile).time_s
            < smj_execution(3.4, 77.0, config, hive_profile).time_s
        )
        assert not bhj_execution(
            3.5, 77.0, config, hive_profile
        ).feasible

    def test_magnitudes_in_paper_range(self, hive_profile):
        # The paper's Fig 3 runs sit between roughly 300 and 2000 s.
        time = smj_execution(5.1, 77.0, rc(10, 7.0), hive_profile).time_s
        assert 800 <= time <= 1400


class TestMoreProperties:
    @given(
        st.floats(min_value=0.1, max_value=3.0),
        st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_bhj_time_monotone_in_broadcast_size(self, a, b):
        """A bigger broadcast side never makes a BHJ faster."""
        config = rc(10, 4.0)
        small, large = sorted((a, b))
        lo = bhj_execution(small, 77.0, config, HIVE_PROFILE)
        hi = bhj_execution(large, 77.0, config, HIVE_PROFILE)
        if lo.feasible and hi.feasible:
            assert lo.time_s <= hi.time_s + 1e-9

    @given(
        st.floats(min_value=10.0, max_value=200.0),
        st.floats(min_value=10.0, max_value=200.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_smj_time_monotone_in_total_data(self, a, b):
        """More data never makes an SMJ faster."""
        config = rc(10, 4.0)
        small, large = sorted((a, b))
        lo = smj_execution(1.0, small, config, HIVE_PROFILE)
        hi = smj_execution(1.0, large, config, HIVE_PROFILE)
        assert lo.time_s <= hi.time_s + 1e-9
