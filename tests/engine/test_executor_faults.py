"""Executor-level tests for fault injection and failure recovery.

Covers the acceptance criteria of the fault subsystem at the
``execute_plan`` layer: zero-fault bit-identity, BHJ OOM recovery via
the SMJ fallback, counter aggregation, and the stage context carried by
:class:`~repro.engine.executor.ExecutionError`.
"""

import math

import pytest

from repro.catalog import tpch
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.containers import ResourceConfiguration
from repro.engine.executor import (
    ExecutionError,
    execute_plan,
    oom_pressure,
)
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiles import HIVE_PROFILE
from repro.faults.model import FaultPlan, FaultSpec, ZERO_FAULTS
from repro.faults.recovery import DEFAULT_RECOVERY, RecoveryPolicy
from repro.planner.plan import left_deep_plan


@pytest.fixture(scope="module")
def sf100_estimator():
    return StatisticsEstimator(tpch.tpch_catalog(100))


def q3_plan(algorithm=JoinAlgorithm.SORT_MERGE):
    return left_deep_plan(
        ("customer", "orders", "lineitem"),
        algorithms=(algorithm, JoinAlgorithm.SORT_MERGE),
    )


class TestZeroFaultIdentity:
    def test_zero_fault_plan_is_bit_identical(self, sf100_estimator):
        """Acceptance criterion: a zero-fault FaultPlan produces output
        bit-identical to the executor without fault injection."""
        plan = q3_plan()
        resources = ResourceConfiguration(num_containers=10, container_gb=4.0)
        plain = execute_plan(
            plan, sf100_estimator, HIVE_PROFILE,
            default_resources=resources,
        )
        zero = execute_plan(
            plan, sf100_estimator, HIVE_PROFILE,
            default_resources=resources,
            faults=ZERO_FAULTS,
            recovery=RecoveryPolicy(degrade_bhj_to_smj=False),
        )
        assert zero == plain
        assert zero.joins == plain.joins

    def test_same_seed_is_bit_identical(self, sf100_estimator):
        plan = q3_plan()
        resources = ResourceConfiguration(num_containers=10, container_gb=4.0)
        faults = FaultPlan(
            FaultSpec(
                seed=7,
                preemption_rate=0.3,
                oom_rate=0.3,
                straggler_rate=0.3,
            )
        )
        runs = [
            execute_plan(
                plan, sf100_estimator, HIVE_PROFILE,
                default_resources=resources, faults=faults,
            )
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]


class TestBhjOomRecovery:
    def test_oom_wall_degrades_to_smj(self, sf100_estimator):
        """Acceptance criterion: a BHJ stage under an infeasible envelope
        recovers via the SMJ fallback, visibly in the run report."""
        plan = q3_plan(JoinAlgorithm.BROADCAST_HASH)
        tight = ResourceConfiguration(num_containers=10, container_gb=2.0)
        plain = execute_plan(
            plan, sf100_estimator, HIVE_PROFILE, default_resources=tight
        )
        assert not plain.feasible
        assert math.isinf(plain.time_s)

        healed = execute_plan(
            plan, sf100_estimator, HIVE_PROFILE,
            default_resources=tight, recovery=DEFAULT_RECOVERY,
        )
        assert healed.feasible
        assert math.isfinite(healed.time_s)
        assert healed.degraded_stages == 1
        degraded = [r for r in healed.joins if r.degraded]
        assert len(degraded) == 1
        assert degraded[0].algorithm is JoinAlgorithm.SORT_MERGE
        assert degraded[0].attempts  # the wall shows in the history

    def test_degradation_can_be_disabled(self, sf100_estimator):
        plan = q3_plan(JoinAlgorithm.BROADCAST_HASH)
        tight = ResourceConfiguration(num_containers=10, container_gb=2.0)
        result = execute_plan(
            plan, sf100_estimator, HIVE_PROFILE,
            default_resources=tight,
            recovery=RecoveryPolicy(degrade_bhj_to_smj=False),
        )
        assert not result.feasible


class TestCounters:
    def test_counters_aggregate_over_stages(self, sf100_estimator):
        plan = q3_plan()
        resources = ResourceConfiguration(num_containers=10, container_gb=4.0)
        faults = FaultPlan(
            FaultSpec(seed=3, preemption_rate=0.4, straggler_rate=0.3)
        )
        result = execute_plan(
            plan, sf100_estimator, HIVE_PROFILE,
            default_resources=resources, faults=faults,
        )
        assert result.retries == sum(r.retries for r in result.joins)
        assert result.faults_injected == sum(
            r.faults_injected for r in result.joins
        )
        assert result.degraded_stages == sum(
            1 for r in result.joins if r.degraded
        )
        assert result.speculative_stages == sum(
            1 for r in result.joins if r.speculative
        )


class TestOomPressure:
    def test_smj_has_zero_pressure(self):
        rc = ResourceConfiguration(num_containers=10, container_gb=4.0)
        assert (
            oom_pressure(JoinAlgorithm.SORT_MERGE, 100.0, rc, HIVE_PROFILE)
            == 0.0
        )

    def test_bhj_pressure_is_budget_utilisation(self):
        rc = ResourceConfiguration(num_containers=10, container_gb=4.0)
        budget = HIVE_PROFILE.hash_memory_fraction * rc.container_gb
        assert oom_pressure(
            JoinAlgorithm.BROADCAST_HASH, budget / 2, rc, HIVE_PROFILE
        ) == pytest.approx(0.5)
        # Crossing 1.0 is exactly the static OOM wall.
        assert (
            oom_pressure(
                JoinAlgorithm.BROADCAST_HASH,
                budget * 2,
                rc,
                HIVE_PROFILE,
            )
            > 1.0
        )


class TestExecutionErrorContext:
    def test_message_carries_stage_context(self):
        rc = ResourceConfiguration(num_containers=10, container_gb=4.0)
        error = ExecutionError(
            "stage exploded",
            stage_id=2,
            tables=frozenset({"orders", "customer"}),
            attempt=1,
            resources=rc,
        )
        message = str(error)
        assert message.startswith("stage exploded")
        assert "stage=2" in message
        assert "tables=['customer', 'orders']" in message
        assert "attempt=1" in message
        assert f"resources={rc}" in message
        assert error.stage_id == 2
        assert error.attempt == 1
        assert error.resources == rc

    def test_message_without_resources(self):
        error = ExecutionError(
            "no envelope",
            stage_id=0,
            tables=frozenset({"a", "b"}),
        )
        assert "resources=<none>" in str(error)
        assert error.resources is None

    def test_bare_message_unchanged(self):
        assert str(ExecutionError("boom")) == "boom"

    def test_missing_resources_raise_includes_context(
        self, sf100_estimator
    ):
        plan = q3_plan()
        with pytest.raises(ExecutionError) as excinfo:
            execute_plan(plan, sf100_estimator, HIVE_PROFILE)
        error = excinfo.value
        assert error.stage_id == 0
        assert error.tables == frozenset({"customer", "orders"})
        assert "stage=0" in str(error)
        assert "resources=<none>" in str(error)
