"""Tests for repro.engine.profiles."""

import dataclasses

import pytest

from repro.engine.profiles import (
    EngineProfile,
    HIVE_PROFILE,
    SPARK_PROFILE,
)


class TestProfiles:
    def test_names(self):
        assert HIVE_PROFILE.name == "hive"
        assert SPARK_PROFILE.name == "spark"

    def test_default_broadcast_threshold_is_10mb(self):
        for profile in (HIVE_PROFILE, SPARK_PROFILE):
            assert profile.default_broadcast_threshold_gb == pytest.approx(
                0.010
            )

    def test_spark_hash_fraction_smaller(self):
        # Spark gives the broadcast table a much smaller memory share.
        assert (
            SPARK_PROFILE.hash_memory_fraction
            < HIVE_PROFILE.hash_memory_fraction
        )

    def test_spark_pipeline_faster(self):
        assert SPARK_PROFILE.map_cost_s_per_gb < (
            HIVE_PROFILE.map_cost_s_per_gb
        )
        assert SPARK_PROFILE.smj_fixed_s < HIVE_PROFILE.smj_fixed_s

    def test_with_overrides(self):
        modified = HIVE_PROFILE.with_overrides(split_gb=0.5)
        assert modified.split_gb == 0.5
        assert modified.name == HIVE_PROFILE.name
        assert HIVE_PROFILE.split_gb == 0.25  # original untouched

    def test_profiles_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            HIVE_PROFILE.split_gb = 1.0


class TestValidation:
    def test_non_positive_rate_rejected(self):
        with pytest.raises(ValueError):
            HIVE_PROFILE.with_overrides(map_cost_s_per_gb=0.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            HIVE_PROFILE.with_overrides(task_overhead_s=-1.0)

    def test_zero_max_reducers_rejected(self):
        with pytest.raises(ValueError):
            HIVE_PROFILE.with_overrides(max_reducers=0)

    def test_zero_split_rejected(self):
        with pytest.raises(ValueError):
            HIVE_PROFILE.with_overrides(split_gb=0.0)

    def test_negative_pressure_rejected(self):
        with pytest.raises(ValueError):
            HIVE_PROFILE.with_overrides(pressure_coeff=-0.1)
