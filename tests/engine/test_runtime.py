"""Tests for repro.engine.runtime (adaptive execution)."""

import pytest

from repro.catalog import tpch
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.cluster.rm_api import ExposureLevel, RmClient, RmState
from repro.core.raqo import RaqoCoster, RaqoPlanner, default_cost_model
from repro.engine.executor import ExecutionError, execute_plan
from repro.engine.profiles import HIVE_PROFILE
from repro.engine.runtime import AdaptiveRuntime
from repro.planner.plan import left_deep_plan


@pytest.fixture(scope="module")
def catalog():
    return tpch.tpch_catalog(100)


@pytest.fixture(scope="module")
def planner(catalog):
    return RaqoPlanner.default(catalog)


@pytest.fixture(scope="module")
def joint_plan(planner):
    return planner.optimize(tpch.QUERY_Q3).plan


def make_runtime(planner, free_fraction=1.0, exposure=ExposureLevel.FULL):
    state = RmState(
        total=ClusterConditions(max_containers=100, max_container_gb=10.0), free_fraction=free_fraction
    )
    client = RmClient(state, exposure)
    return (
        AdaptiveRuntime(
            estimator=planner.estimator,
            profile=HIVE_PROFILE,
            coster=RaqoCoster(model=planner.cost_model),
            rm_client=client,
        ),
        client,
    )


class TestAdaptiveRuntime:
    def test_no_change_no_replan(self, planner, joint_plan):
        runtime, _ = make_runtime(planner, free_fraction=1.0)
        report = runtime.run(joint_plan)
        assert report.feasible
        assert report.replanned_stages == 0
        for stage in report.stages:
            assert stage.executed == stage.planned

    def test_matches_plain_executor_when_unchanged(
        self, planner, joint_plan
    ):
        runtime, _ = make_runtime(planner, free_fraction=1.0)
        report = runtime.run(joint_plan)
        plain = execute_plan(
            joint_plan, planner.estimator, HIVE_PROFILE
        )
        assert report.time_s == pytest.approx(plain.time_s)
        assert report.gb_seconds == pytest.approx(plain.gb_seconds)

    def test_shrunk_cluster_triggers_replan(self, planner, joint_plan):
        runtime, _ = make_runtime(planner, free_fraction=0.2)
        report = runtime.run(joint_plan)
        assert report.feasible
        assert report.replanned_stages > 0
        for stage in report.stages:
            # Replanned stages fit the shrunk envelope (20 containers).
            assert stage.executed.num_containers <= 20

    def test_replanned_run_slower_than_full_cluster(
        self, planner, joint_plan
    ):
        full_runtime, _ = make_runtime(planner, free_fraction=1.0)
        tight_runtime, _ = make_runtime(planner, free_fraction=0.1)
        full = full_runtime.run(joint_plan)
        tight = tight_runtime.run(joint_plan)
        assert tight.time_s >= full.time_s * 0.99

    def test_mid_query_cluster_change(self, planner, joint_plan):
        """Conditions change between stages: only later stages adapt."""
        runtime, client = make_runtime(planner, free_fraction=1.0)
        seen = []

        def on_stage(record):
            seen.append(record)
            client.update(free_fraction=0.1)  # spike after stage 1

        report = runtime.run(joint_plan, on_stage=on_stage)
        assert len(seen) == 2
        assert not report.stages[0].replanned
        assert report.stages[1].replanned

    def test_two_step_plan_rejected(self, planner):
        runtime, _ = make_runtime(planner)
        bare = left_deep_plan(("customer", "orders", "lineitem"))
        with pytest.raises(ExecutionError):
            runtime.run(bare)

    def test_improvement_slack_validation(self, planner):
        with pytest.raises(ValueError):
            AdaptiveRuntime(
                estimator=planner.estimator,
                profile=HIVE_PROFILE,
                coster=RaqoCoster(model=default_cost_model()),
                rm_client=make_runtime(planner)[1],
                improvement_slack=-1.0,
            )

    def test_dollars_accounted(self, planner, joint_plan):
        runtime, _ = make_runtime(planner)
        report = runtime.run(joint_plan)
        assert report.dollars == pytest.approx(
            runtime.price_model.cost_of_gb_seconds(report.gb_seconds)
        )


class TestInfeasibleFallback:
    def test_bhj_impossible_under_shrunk_envelope(self, planner):
        """When re-planning cannot make an operator feasible, the
        runtime clamps the original reservation and the failure
        surfaces in the report rather than being masked."""
        from repro.cluster.containers import ResourceConfiguration
        from repro.engine.joins import JoinAlgorithm
        from repro.planner.plan import JoinNode, ScanNode

        # orders at SF-100 is ~17 GB: broadcastable at 100x10 GB is
        # already impossible, so build the plan by hand with a BHJ
        # that was "planned" under generous conditions.
        plan = JoinNode(
            left=ScanNode("orders"),
            right=ScanNode("lineitem"),
            algorithm=JoinAlgorithm.BROADCAST_HASH,
            resources=ResourceConfiguration(num_containers=10, container_gb=10.0),
        )
        runtime, client = make_runtime(planner, free_fraction=1.0)
        client.update(free_container_gb=2.0)  # big slots are gone
        report = runtime.run(plan)
        assert report.replanned_stages == 1
        assert not report.feasible
        assert report.stages[0].executed.container_gb <= 2.0


class TestRuntimeFaults:
    def _joint_plan(self, algorithm, rc):
        from repro.engine.joins import JoinAlgorithm

        plan = left_deep_plan(
            ("customer", "orders", "lineitem"),
            algorithms=(algorithm, JoinAlgorithm.SORT_MERGE),
        )
        return plan.map_joins(lambda join: join.with_resources(rc))

    def test_zero_fault_plan_is_bit_identical(self, planner, joint_plan):
        from repro.faults.model import ZERO_FAULTS
        from repro.faults.recovery import RecoveryPolicy

        plain_runtime, _ = make_runtime(planner)
        zero_runtime, _ = make_runtime(planner)
        zero_runtime.faults = ZERO_FAULTS
        zero_runtime.recovery = RecoveryPolicy(degrade_bhj_to_smj=False)
        assert zero_runtime.run(joint_plan) == plain_runtime.run(
            joint_plan
        )

    def test_same_seed_runs_identical(self, planner, joint_plan):
        from repro.faults.model import FaultPlan, FaultSpec
        from repro.faults.recovery import DEFAULT_RECOVERY

        faults = FaultPlan(
            FaultSpec(seed=5, preemption_rate=0.3, straggler_rate=0.3)
        )
        reports = []
        for _ in range(2):
            runtime, _ = make_runtime(planner)
            runtime.faults = faults
            runtime.recovery = DEFAULT_RECOVERY
            reports.append(runtime.run(joint_plan))
        assert reports[0] == reports[1]

    def test_degraded_bhj_is_recosted_through_the_coster(self, planner):
        """The fallback SMJ runs on optimizer-chosen resources, not on
        the doomed broadcast envelope."""
        from repro.cluster.containers import ResourceConfiguration
        from repro.engine.joins import JoinAlgorithm
        from repro.faults.recovery import DEFAULT_RECOVERY

        tight = ResourceConfiguration(num_containers=10, container_gb=2.0)
        plan = self._joint_plan(JoinAlgorithm.BROADCAST_HASH, tight)

        doomed, _ = make_runtime(planner)
        report = doomed.run(plan)
        assert not report.feasible

        healing, _ = make_runtime(planner)
        healing.recovery = DEFAULT_RECOVERY
        healed = healing.run(plan)
        assert healed.feasible
        assert healed.degraded_stages == 1
        degraded = [s for s in healed.stages if s.degraded]
        assert len(degraded) == 1
        # Re-costed: the executed envelope is the coster's SMJ choice.
        assert degraded[0].replanned
        assert degraded[0].executed != tight
