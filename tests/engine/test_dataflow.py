"""Tests for repro.engine.dataflow."""

import pytest

from repro.catalog.statistics import StatisticsEstimator
from repro.engine.dataflow import (
    DataflowDAG,
    Stage,
    StageKind,
    plan_to_dag,
)
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiles import HIVE_PROFILE
from repro.planner.plan import JoinNode, ScanNode


class TestStage:
    def test_valid_stage(self):
        stage = Stage("s", StageKind.MAP, 4, 1.0, 1.0)
        assert stage.num_tasks == 4

    def test_zero_tasks_rejected(self):
        with pytest.raises(ValueError):
            Stage("s", StageKind.MAP, 0, 1.0, 1.0)

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            Stage("s", StageKind.MAP, 1, -1.0, 1.0)


class TestDataflowDAG:
    def _dag(self):
        dag = DataflowDAG()
        dag.add_stage(Stage("a", StageKind.MAP, 2, 1.0, 1.0))
        dag.add_stage(Stage("b", StageKind.REDUCE, 2, 1.0, 0.5))
        dag.add_edge("a", "b")
        return dag

    def test_topological_order(self):
        dag = self._dag()
        assert [s.name for s in dag.stages()] == ["a", "b"]

    def test_duplicate_stage_rejected(self):
        dag = self._dag()
        with pytest.raises(ValueError):
            dag.add_stage(Stage("a", StageKind.MAP, 1, 0.0, 0.0))

    def test_edge_to_unknown_stage_rejected(self):
        dag = self._dag()
        with pytest.raises(ValueError):
            dag.add_edge("a", "ghost")

    def test_cycle_rejected(self):
        dag = self._dag()
        with pytest.raises(ValueError):
            dag.add_edge("b", "a")
        # The failed edge must not have been left behind.
        assert dag.successors("b") == []

    def test_total_tasks(self):
        assert self._dag().total_tasks == 4

    def test_len_and_iter(self):
        dag = self._dag()
        assert len(dag) == 2
        assert len(list(dag)) == 2


class TestPlanToDag:
    def test_smj_plan_lowering(self, tpch_catalog_sf100):
        estimator = StatisticsEstimator(tpch_catalog_sf100)
        plan = JoinNode(
            left=ScanNode("orders"),
            right=ScanNode("lineitem"),
            algorithm=JoinAlgorithm.SORT_MERGE,
        )
        dag = plan_to_dag(plan, estimator, HIVE_PROFILE)
        kinds = [s.kind for s in dag.stages()]
        assert kinds == [StageKind.MAP, StageKind.REDUCE]

    def test_bhj_plan_lowering(self, tpch_catalog_sf100):
        estimator = StatisticsEstimator(tpch_catalog_sf100)
        plan = JoinNode(
            left=ScanNode("orders"),
            right=ScanNode("lineitem"),
            algorithm=JoinAlgorithm.BROADCAST_HASH,
        )
        dag = plan_to_dag(plan, estimator, HIVE_PROFILE)
        kinds = [s.kind for s in dag.stages()]
        assert kinds == [StageKind.BROADCAST, StageKind.PROBE]
        broadcast = dag.stages()[0]
        assert broadcast.num_tasks == 1

    def test_two_join_plan_wires_child_to_parent(
        self, tpch_catalog_sf100
    ):
        estimator = StatisticsEstimator(tpch_catalog_sf100)
        plan = JoinNode(
            left=JoinNode(
                left=ScanNode("customer"),
                right=ScanNode("orders"),
                algorithm=JoinAlgorithm.BROADCAST_HASH,
            ),
            right=ScanNode("lineitem"),
            algorithm=JoinAlgorithm.SORT_MERGE,
        )
        dag = plan_to_dag(plan, estimator, HIVE_PROFILE)
        assert len(dag) == 4
        # The child join's probe stage feeds the parent's map stage.
        assert "join1.map" in dag.successors("join0.probe")

    def test_explicit_reducers(self, tpch_catalog_sf100):
        estimator = StatisticsEstimator(tpch_catalog_sf100)
        plan = JoinNode(
            left=ScanNode("orders"), right=ScanNode("lineitem")
        )
        dag = plan_to_dag(
            plan, estimator, HIVE_PROFILE, num_reducers=37
        )
        reduce_stage = [
            s for s in dag.stages() if s.kind is StageKind.REDUCE
        ][0]
        assert reduce_stage.num_tasks == 37

    def test_map_tasks_match_split_sizing(self, tpch_catalog_sf100):
        estimator = StatisticsEstimator(tpch_catalog_sf100)
        plan = JoinNode(
            left=ScanNode("orders"), right=ScanNode("lineitem")
        )
        dag = plan_to_dag(plan, estimator, HIVE_PROFILE)
        map_stage = dag.stage("join0.map")
        small, large = estimator.join_io_gb(["orders"], ["lineitem"])
        import math

        expected = math.ceil(
            (small + large) / HIVE_PROFILE.split_gb
        )
        assert map_stage.num_tasks == expected
