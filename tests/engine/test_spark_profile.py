"""Behavioural tests for the SparkSQL engine profile (paper Fig 9b)."""

import pytest

from repro.cluster.containers import ResourceConfiguration
from repro.core.switch_points import find_switch_point
from repro.engine.joins import bhj_execution, smj_execution
from repro.engine.profiles import SPARK_PROFILE


def rc(nc, cs):
    return ResourceConfiguration(num_containers=nc, container_gb=cs)


class TestSparkSwitchBehaviour:
    def test_switch_points_in_hundreds_of_mb(self, spark_profile):
        """Fig 9(b): Spark flips to SMJ far earlier than Hive."""
        for cs in (3.0, 7.0, 11.0):
            point = find_switch_point(
                spark_profile, 10.0, rc(10, cs), resolution_gb=0.02
            )
            assert 0.1 <= point.switch_gb <= 1.2

    def test_switch_grows_with_container_size(self, spark_profile):
        small = find_switch_point(
            spark_profile, 10.0, rc(10, 3.0), resolution_gb=0.02
        )
        large = find_switch_point(
            spark_profile, 10.0, rc(10, 9.0), resolution_gb=0.02
        )
        assert large.switch_gb >= small.switch_gb

    def test_memory_wall_much_tighter_than_hive(self, spark_profile):
        # A 2 GB broadcast side cannot fit a 5 GB Spark executor
        # (0.35 fraction) though it easily fits a 5 GB Hive container.
        run = bhj_execution(2.0, 10.0, rc(10, 5.0), spark_profile)
        assert not run.feasible

    def test_pipeline_faster_than_hive(
        self, spark_profile, hive_profile
    ):
        config = rc(10, 4.0)
        spark = smj_execution(1.0, 10.0, config, spark_profile)
        hive = smj_execution(1.0, 10.0, config, hive_profile)
        assert spark.time_s < hive.time_s

    def test_smj_improves_with_parallelism(self, spark_profile):
        times = [
            smj_execution(0.5, 10.0, rc(nc, 4.0), spark_profile).time_s
            for nc in (4, 8, 16, 32)
        ]
        assert times == sorted(times, reverse=True)

    def test_broadcast_cost_grows_with_containers(self, spark_profile):
        few = bhj_execution(0.3, 10.0, rc(5, 4.0), spark_profile)
        many = bhj_execution(0.3, 10.0, rc(50, 4.0), spark_profile)
        assert (
            many.breakdown["broadcast"] > few.breakdown["broadcast"]
        )
