"""Tests for repro.engine.profiler."""

import math

import pytest

from repro.engine.joins import JoinAlgorithm
from repro.engine.profiler import (
    ProfileSample,
    default_training_grid,
    feasible_samples,
    profile_grid,
)
from repro.engine.profiles import HIVE_PROFILE


class TestProfileGrid:
    def test_grid_size(self):
        samples = profile_grid(
            HIVE_PROFILE,
            small_sizes_gb=(1.0, 2.0),
            large_gb=77.0,
            container_counts=(5, 10),
            container_sizes_gb=(3.0,),
        )
        # 2 algorithms x 2 sizes x 2 counts x 1 container size.
        assert len(samples) == 8

    def test_reducer_settings_multiply(self):
        samples = profile_grid(
            HIVE_PROFILE,
            small_sizes_gb=(1.0,),
            large_gb=77.0,
            container_counts=(5,),
            container_sizes_gb=(3.0,),
            reducer_settings=(None, 100),
        )
        assert len(samples) == 4

    def test_infeasible_samples_marked(self):
        samples = profile_grid(
            HIVE_PROFILE,
            small_sizes_gb=(9.0,),
            large_gb=77.0,
            container_counts=(10,),
            container_sizes_gb=(3.0,),
            algorithms=(JoinAlgorithm.BROADCAST_HASH,),
        )
        [sample] = samples
        assert not sample.feasible
        assert sample.time_s == math.inf
        assert sample.gb_seconds == math.inf

    def test_gb_seconds(self):
        samples = profile_grid(
            HIVE_PROFILE,
            small_sizes_gb=(1.0,),
            large_gb=77.0,
            container_counts=(10,),
            container_sizes_gb=(4.0,),
            algorithms=(JoinAlgorithm.SORT_MERGE,),
        )
        [sample] = samples
        assert sample.gb_seconds == pytest.approx(40.0 * sample.time_s)

    def test_feasible_samples_filter(self):
        samples = profile_grid(
            HIVE_PROFILE,
            small_sizes_gb=(1.0, 9.0),
            large_gb=77.0,
            container_counts=(10,),
            container_sizes_gb=(3.0,),
        )
        bhj = feasible_samples(samples, JoinAlgorithm.BROADCAST_HASH)
        assert all(s.feasible for s in bhj)
        assert all(
            s.algorithm is JoinAlgorithm.BROADCAST_HASH for s in bhj
        )
        # The 9 GB broadcast side is infeasible in 3 GB containers.
        assert len(bhj) == 1

    def test_default_training_grid_covers_both_algorithms(self):
        samples = default_training_grid(HIVE_PROFILE)
        smj = feasible_samples(samples, JoinAlgorithm.SORT_MERGE)
        bhj = feasible_samples(samples, JoinAlgorithm.BROADCAST_HASH)
        assert len(smj) > 100
        assert len(bhj) > 100
