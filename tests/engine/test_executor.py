"""Tests for repro.engine.executor."""

import math

import pytest

from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.containers import ResourceConfiguration
from repro.cluster.pricing import PriceModel
from repro.engine.executor import ExecutionError, execute_plan
from repro.engine.joins import JoinAlgorithm, smj_execution
from repro.engine.profiles import HIVE_PROFILE
from repro.planner.plan import JoinNode, ScanNode, left_deep_plan


@pytest.fixture()
def q3_plan():
    return left_deep_plan(("customer", "orders", "lineitem"))


class TestExecutePlan:
    def test_single_join_matches_join_model(self, estimator):
        config = ResourceConfiguration(num_containers=10, container_gb=4.0)
        plan = JoinNode(
            left=ScanNode("orders"), right=ScanNode("lineitem")
        )
        result = execute_plan(
            plan, estimator, HIVE_PROFILE, default_resources=config
        )
        small, large = estimator.join_io_gb(["orders"], ["lineitem"])
        expected = smj_execution(small, large, config, HIVE_PROFILE)
        assert result.time_s == pytest.approx(expected.time_s)
        assert result.feasible

    def test_multi_join_time_is_sum(self, estimator, q3_plan):
        config = ResourceConfiguration(num_containers=10, container_gb=4.0)
        result = execute_plan(
            q3_plan, estimator, HIVE_PROFILE, default_resources=config
        )
        assert result.time_s == pytest.approx(
            sum(j.time_s for j in result.joins)
        )
        assert len(result.joins) == 2

    def test_gb_seconds_accounting(self, estimator, q3_plan):
        config = ResourceConfiguration(num_containers=10, container_gb=4.0)
        result = execute_plan(
            q3_plan, estimator, HIVE_PROFILE, default_resources=config
        )
        expected = sum(
            config.gb_seconds(j.time_s) for j in result.joins
        )
        assert result.gb_seconds == pytest.approx(expected)
        assert result.tb_seconds == pytest.approx(expected / 1024.0)

    def test_dollars_use_price_model(self, estimator, q3_plan):
        config = ResourceConfiguration(num_containers=10, container_gb=4.0)
        price = PriceModel(dollars_per_gb_hour=3.6)
        result = execute_plan(
            q3_plan,
            estimator,
            HIVE_PROFILE,
            default_resources=config,
            price_model=price,
        )
        assert result.dollars == pytest.approx(
            price.cost_of_gb_seconds(result.gb_seconds)
        )

    def test_per_operator_resources_override_default(self, estimator):
        inner = JoinNode(
            left=ScanNode("customer"),
            right=ScanNode("orders"),
            resources=ResourceConfiguration(num_containers=40, container_gb=2.0),
        )
        plan = JoinNode(left=inner, right=ScanNode("lineitem"))
        result = execute_plan(
            plan,
            estimator,
            HIVE_PROFILE,
            default_resources=ResourceConfiguration(num_containers=10, container_gb=4.0),
        )
        assert result.joins[0].resources == ResourceConfiguration(
            num_containers=40, container_gb=2.0
        )
        assert result.joins[1].resources == ResourceConfiguration(
            num_containers=10, container_gb=4.0
        )

    def test_missing_resources_rejected(self, estimator, q3_plan):
        with pytest.raises(ExecutionError):
            execute_plan(q3_plan, estimator, HIVE_PROFILE)

    def test_infeasible_bhj_poisons_result(self, estimator):
        # orders at SF-100 is ~17 GB: broadcast cannot fit 3 GB containers.
        plan = JoinNode(
            left=ScanNode("orders"),
            right=ScanNode("lineitem"),
            algorithm=JoinAlgorithm.BROADCAST_HASH,
        )
        result = execute_plan(
            plan,
            estimator,
            HIVE_PROFILE,
            default_resources=ResourceConfiguration(num_containers=10, container_gb=3.0),
        )
        assert not result.feasible
        assert result.time_s == math.inf
        assert result.dollars == math.inf

    def test_join_report_tables(self, estimator, q3_plan):
        result = execute_plan(
            q3_plan,
            estimator,
            HIVE_PROFILE,
            default_resources=ResourceConfiguration(num_containers=10, container_gb=4.0),
        )
        assert result.joins[0].tables == {"customer", "orders"}
        assert result.joins[1].tables == {
            "customer",
            "orders",
            "lineitem",
        }

    def test_reducer_override_changes_smj_time(self, estimator):
        plan = JoinNode(
            left=ScanNode("orders"), right=ScanNode("lineitem")
        )
        config = ResourceConfiguration(num_containers=10, container_gb=4.0)
        auto = execute_plan(
            plan, estimator, HIVE_PROFILE, default_resources=config
        )
        few = execute_plan(
            plan,
            estimator,
            HIVE_PROFILE,
            default_resources=config,
            num_reducers=2,
        )
        assert few.time_s > auto.time_s  # 2 reducers limit parallelism
