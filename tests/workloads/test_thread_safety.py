"""Stress tests for the shared-state audit under WorkloadRunner(max_workers>1).

The thread-safety pass (lint rule RAQO005) assumes two things about the
parallel runner:

1. every piece of module-level mutable state reachable from a worker is
   lock-guarded -- the only such state is the default-cost-model memo in
   :mod:`repro.core.raqo`, guarded by ``_MODEL_CACHE_LOCK``;
2. all *planner* state is isolated per worker via
   :meth:`RaqoPlanner.clone` (own coster, own resource plan cache), so
   workers never share mutable planner internals.

These tests hammer both assumptions with real thread pools.
"""

import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.catalog import tpch
from repro.core import raqo
from repro.core.raqo import RaqoPlanner, default_cost_model
from repro.engine.profiles import HIVE_PROFILE, SPARK_PROFILE
from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.runner import WorkloadRunner

pytestmark = pytest.mark.stress


@pytest.fixture(scope="module")
def catalog():
    return tpch.tpch_catalog(100)


@pytest.fixture(scope="module")
def workload(catalog):
    rng = np.random.default_rng(7)
    return generate_workload(catalog, WorkloadSpec(num_queries=6), rng)


def _strip_timing(report):
    return tuple(
        dataclasses.replace(outcome, planning_ms=0.0)
        for outcome in report.outcomes
    )


class TestDefaultModelCacheLock:
    def test_concurrent_first_fit_yields_one_shared_suite(self):
        """N racing first calls must fit exactly one model per profile."""
        with raqo._MODEL_CACHE_LOCK:
            saved = dict(raqo._DEFAULT_MODEL_CACHE)
            raqo._DEFAULT_MODEL_CACHE.clear()
        try:
            workers = 8
            barrier = threading.Barrier(workers)

            def racing_call(_):
                barrier.wait()
                return default_cost_model(HIVE_PROFILE)

            with ThreadPoolExecutor(max_workers=workers) as pool:
                suites = list(pool.map(racing_call, range(workers)))
            assert all(suite is suites[0] for suite in suites)
            with raqo._MODEL_CACHE_LOCK:
                hive_keys = [
                    key
                    for key in raqo._DEFAULT_MODEL_CACHE
                    if key[0] == HIVE_PROFILE.name
                ]
            assert len(hive_keys) == 1
        finally:
            with raqo._MODEL_CACHE_LOCK:
                raqo._DEFAULT_MODEL_CACHE.update(saved)

    def test_distinct_profiles_cache_distinct_suites(self):
        assert default_cost_model(HIVE_PROFILE) is not default_cost_model(
            SPARK_PROFILE
        )
        # Memoised: repeated calls return the identical object.
        assert default_cost_model(HIVE_PROFILE) is default_cost_model(
            HIVE_PROFILE
        )


class TestCloneIsolationUnderStress:
    def test_parallel_runs_are_reproducible(self, catalog, workload):
        """Repeated parallel runs return byte-identical reports."""
        runner = WorkloadRunner(RaqoPlanner.default(catalog))
        reports = [
            runner.run(workload, max_workers=8) for _ in range(3)
        ]
        first = _strip_timing(reports[0])
        for report in reports[1:]:
            assert _strip_timing(report) == first

    def test_parallel_run_never_touches_the_shared_planner_cache(
        self, catalog, workload
    ):
        """Workers plan on clones: the original planner's resource plan
        cache must see zero traffic from a parallel run."""
        planner = RaqoPlanner.default(catalog)
        runner = WorkloadRunner(planner)
        assert planner.cache is not None
        before = dataclasses.replace(planner.cache.stats)
        runner.run(workload, max_workers=4)
        after = planner.cache.stats
        assert after.lookups == before.lookups
        assert after.inserts == before.inserts

    def test_interleaved_runners_do_not_cross_talk(self, catalog, workload):
        """Two runners fanning out simultaneously stay independent."""
        runner_a = WorkloadRunner(RaqoPlanner.default(catalog))
        runner_b = WorkloadRunner(
            RaqoPlanner.two_step_baseline(catalog)
        )
        with ThreadPoolExecutor(max_workers=2) as pool:
            future_a = pool.submit(
                runner_a.run, workload, "raqo", 4
            )
            future_b = pool.submit(
                runner_b.run, workload, "baseline", 4
            )
            report_a, report_b = future_a.result(), future_b.result()
        solo_a = WorkloadRunner(RaqoPlanner.default(catalog)).run(
            workload, "raqo"
        )
        solo_b = WorkloadRunner(
            RaqoPlanner.two_step_baseline(catalog)
        ).run(workload, "baseline")
        assert _strip_timing(report_a) == _strip_timing(solo_a)
        assert _strip_timing(report_b) == _strip_timing(solo_b)


class TestFaultDeterminism:
    """The fault subsystem's parallel-determinism acceptance criterion:
    with faults enabled, same-seed runs are bit-identical across the
    serial and the parallel runner (fault decisions are pure functions
    of (seed, scope, stage, attempt), never of execution order)."""

    @pytest.fixture(scope="class")
    def faults(self):
        from repro.faults.model import FaultPlan, FaultSpec

        return FaultPlan(
            FaultSpec(
                seed=13,
                preemption_rate=0.2,
                oom_rate=0.4,
                straggler_rate=0.2,
            )
        )

    def test_parallel_runs_with_faults_are_reproducible(
        self, catalog, workload, faults
    ):
        runner = WorkloadRunner(
            RaqoPlanner.default(catalog), faults=faults
        )
        reports = [
            runner.run(workload, max_workers=8) for _ in range(2)
        ]
        assert _strip_timing(reports[0]) == _strip_timing(reports[1])

    def test_serial_and_parallel_reports_are_identical(
        self, catalog, workload, faults
    ):
        serial = WorkloadRunner(
            RaqoPlanner.default(catalog), faults=faults
        ).run(workload, max_workers=1)
        parallel = WorkloadRunner(
            RaqoPlanner.default(catalog), faults=faults
        ).run(workload, max_workers=6)
        assert _strip_timing(serial) == _strip_timing(parallel)
        # The runs really injected something (the test is not vacuous).
        assert serial.total_faults_injected > 0
        assert serial.total_faults_injected == (
            parallel.total_faults_injected
        )
