"""Tests for the process-pool workload runner (planner sharding).

Each worker process rebuilds the planner from
``RaqoPlanner.picklable_init_kwargs()`` and, when tracing, ships its
spans back as dictionaries for ``Tracer.adopt`` to merge -- so a
process-sharded run must match a serial run byte for byte: outcomes
(modulo wall-clock), totals, and the canonical span tree.
"""

import dataclasses

import numpy as np
import pytest

from repro.catalog import tpch
from repro.core.raqo import RaqoPlanner, ResourcePlanningMethod
from repro.faults.model import FaultPlan, FaultSpec
from repro.obs.export import canonical_span_tree_json
from repro.obs.tracing import Tracer
from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.runner import WorkloadRunner


@pytest.fixture(scope="module")
def catalog():
    return tpch.tpch_catalog(100)


@pytest.fixture(scope="module")
def workload(catalog):
    rng = np.random.default_rng(5)
    return generate_workload(catalog, WorkloadSpec(num_queries=6), rng)


def _strip_timing(report):
    return tuple(
        dataclasses.replace(outcome, planning_ms=0.0)
        for outcome in report.outcomes
    )


class TestProcessRunner:
    def test_rejects_negative_processes(self, catalog, workload):
        runner = WorkloadRunner(RaqoPlanner.default(catalog))
        with pytest.raises(ValueError, match="processes"):
            runner.run(workload, processes=-1)

    def test_rejects_threads_and_processes_together(
        self, catalog, workload
    ):
        runner = WorkloadRunner(RaqoPlanner.default(catalog))
        with pytest.raises(ValueError, match="not both"):
            runner.run(workload, max_workers=4, processes=2)

    def test_processes_match_sequential(self, catalog, workload):
        runner = WorkloadRunner(RaqoPlanner.default(catalog))
        sequential = runner.run(workload)
        sharded = runner.run(workload, processes=2)
        assert _strip_timing(sharded) == _strip_timing(sequential)
        assert sharded.label == sequential.label
        assert sharded.total_dollars == sequential.total_dollars

    def test_traced_processes_emit_identical_span_tree(
        self, catalog, workload
    ):
        def run(processes):
            tracer = Tracer(seed=31)
            planner = RaqoPlanner.default(catalog, tracer=tracer)
            report = WorkloadRunner(planner).run(
                workload, label="shard", processes=processes
            )
            return report, canonical_span_tree_json(tracer)

        serial_report, serial_tree = run(0)
        sharded_report, sharded_tree = run(2)
        assert sharded_tree == serial_tree
        assert _strip_timing(sharded_report) == _strip_timing(
            serial_report
        )

    def test_processes_with_faults_match_sequential(
        self, catalog, workload
    ):
        faults = FaultPlan(FaultSpec.parse("seed=3,oom=0.2"))
        runner = WorkloadRunner(
            RaqoPlanner.default(catalog), faults=faults
        )
        sequential = runner.run(workload)
        sharded = runner.run(workload, processes=3)
        assert _strip_timing(sharded) == _strip_timing(sequential)
        assert (
            sharded.total_faults_injected
            == sequential.total_faults_injected
        )

    def test_brute_force_planner_ships_cleanly(self, catalog, workload):
        """The fitted cost model and cluster survive pickling."""
        planner = RaqoPlanner(
            catalog, resource_method=ResourcePlanningMethod.BRUTE_FORCE
        )
        runner = WorkloadRunner(planner)
        sequential = runner.run(workload)
        sharded = runner.run(workload, processes=2)
        assert _strip_timing(sharded) == _strip_timing(sequential)
