"""Tests for repro.workloads.runner."""

import numpy as np
import pytest

from repro.catalog import tpch
from repro.core.raqo import RaqoPlanner
from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.runner import WorkloadRunner, compare_planners


@pytest.fixture(scope="module")
def catalog():
    return tpch.tpch_catalog(100)


@pytest.fixture(scope="module")
def workload(catalog):
    rng = np.random.default_rng(11)
    return generate_workload(
        catalog, WorkloadSpec(num_queries=6), rng
    )


class TestWorkloadRunner:
    def test_runs_all_queries(self, catalog, workload):
        runner = WorkloadRunner(RaqoPlanner.default(catalog))
        report = runner.run(workload, label="raqo")
        assert len(report.outcomes) == len(workload)
        assert report.label == "raqo"

    def test_aggregates_consistent(self, catalog, workload):
        runner = WorkloadRunner(RaqoPlanner.default(catalog))
        report = runner.run(workload)
        assert report.total_planning_ms == pytest.approx(
            sum(o.planning_ms for o in report.outcomes)
        )
        assert report.total_executed_time_s == pytest.approx(
            sum(o.executed_time_s for o in report.outcomes)
        )
        assert report.total_dollars > 0

    def test_summary_row_shape(self, catalog, workload):
        runner = WorkloadRunner(RaqoPlanner.default(catalog))
        row = runner.run(workload).summary_row()
        assert row[0] == "workload"
        assert row[1] == len(workload)

    def test_raqo_beats_baseline_on_workload(self, catalog, workload):
        """Workload-level version of the paper's headline claim."""
        reports = compare_planners(
            {
                "raqo": RaqoPlanner.default(catalog),
                "baseline": RaqoPlanner.two_step_baseline(catalog),
            },
            workload,
        )
        by_label = {r.label: r for r in reports}
        assert (
            by_label["raqo"].total_executed_time_s
            <= by_label["baseline"].total_executed_time_s * 1.01
        )

    def test_across_query_cache_reduces_iterations(
        self, catalog, workload
    ):
        cold = WorkloadRunner(
            RaqoPlanner(catalog, clear_cache_between_queries=True)
        ).run(workload)
        warm = WorkloadRunner(
            RaqoPlanner(catalog, clear_cache_between_queries=False)
        ).run(workload)
        assert (
            warm.total_resource_iterations
            <= cold.total_resource_iterations
        )
        assert warm.cache_hit_total >= cold.cache_hit_total
