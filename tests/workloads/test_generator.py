"""Tests for repro.workloads.generator."""

import numpy as np
import pytest

from repro.catalog import tpch
from repro.workloads.generator import WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def catalog():
    return tpch.tpch_catalog(1)


class TestWorkloadSpec:
    def test_defaults_valid(self):
        WorkloadSpec(num_queries=10)

    def test_zero_queries_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_queries=0)

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                num_queries=5, sizes=(2, 3), size_weights=(1.0,)
            )

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                num_queries=5,
                sizes=(2, 3),
                size_weights=(-1.0, 2.0),
            )

    def test_zero_weight_sum_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                num_queries=5, sizes=(2,), size_weights=(0.0,)
            )

    def test_bad_repeat_probability(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_queries=5, repeat_probability=1.5)


class TestGeneration:
    def test_count_and_validity(self, catalog):
        rng = np.random.default_rng(3)
        queries = generate_workload(
            catalog, WorkloadSpec(num_queries=25), rng
        )
        assert len(queries) == 25
        for query in queries:
            query.validate(catalog)

    def test_sizes_come_from_spec(self, catalog):
        rng = np.random.default_rng(3)
        spec = WorkloadSpec(
            num_queries=30,
            sizes=(2, 4),
            size_weights=(0.5, 0.5),
            repeat_probability=0.0,
        )
        queries = generate_workload(catalog, spec, rng)
        assert {len(q.tables) for q in queries} <= {2, 4}

    def test_repeats_produce_duplicates(self, catalog):
        rng = np.random.default_rng(3)
        spec = WorkloadSpec(num_queries=40, repeat_probability=0.9)
        queries = generate_workload(catalog, spec, rng)
        table_sets = [q.tables for q in queries]
        assert len(set(table_sets)) < len(table_sets)

    def test_no_repeats_when_disabled(self, catalog):
        rng = np.random.default_rng(3)
        spec = WorkloadSpec(num_queries=10, repeat_probability=0.0)
        queries = generate_workload(catalog, spec, rng)
        names = [q.name for q in queries]
        assert len(set(names)) == 10

    def test_deterministic(self, catalog):
        spec = WorkloadSpec(num_queries=15)
        a = generate_workload(catalog, spec, np.random.default_rng(9))
        b = generate_workload(catalog, spec, np.random.default_rng(9))
        assert [q.tables for q in a] == [q.tables for q in b]

    def test_size_clamped_to_schema(self, catalog):
        rng = np.random.default_rng(3)
        spec = WorkloadSpec(
            num_queries=5,
            sizes=(50,),
            size_weights=(1.0,),
            repeat_probability=0.0,
        )
        queries = generate_workload(catalog, spec, rng)
        for query in queries:
            assert len(query.tables) <= 8
