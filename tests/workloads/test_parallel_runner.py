"""Tests for the parallel workload runner (thread-pool fan-out)."""

import dataclasses

import numpy as np
import pytest

from repro.catalog import tpch
from repro.core.raqo import PlannerKind, RaqoPlanner
from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.runner import WorkloadRunner


@pytest.fixture(scope="module")
def catalog():
    return tpch.tpch_catalog(100)


@pytest.fixture(scope="module")
def workload(catalog):
    rng = np.random.default_rng(23)
    return generate_workload(
        catalog, WorkloadSpec(num_queries=8), rng
    )


def _strip_timing(report):
    """Outcomes with wall-clock fields zeroed (they legitimately vary)."""
    return tuple(
        dataclasses.replace(outcome, planning_ms=0.0)
        for outcome in report.outcomes
    )


class TestParallelRunner:
    def test_rejects_zero_workers(self, catalog, workload):
        runner = WorkloadRunner(RaqoPlanner.default(catalog))
        with pytest.raises(ValueError, match="max_workers"):
            runner.run(workload, max_workers=0)

    def test_parallel_matches_sequential(self, catalog, workload):
        """Same queries, same report -- only wall-clock may differ."""
        runner = WorkloadRunner(RaqoPlanner.default(catalog))
        sequential = runner.run(workload, max_workers=1)
        parallel = runner.run(workload, max_workers=4)
        assert _strip_timing(parallel) == _strip_timing(sequential)
        assert [o.query.name for o in parallel.outcomes] == [
            q.name for q in workload
        ]

    def test_parallel_totals_match_sequential(self, catalog, workload):
        runner = WorkloadRunner(RaqoPlanner.default(catalog))
        sequential = runner.run(workload, max_workers=1)
        parallel = runner.run(workload, max_workers=4)
        assert (
            parallel.total_resource_iterations
            == sequential.total_resource_iterations
        )
        assert parallel.cache_hit_total == sequential.cache_hit_total
        assert parallel.total_executed_time_s == pytest.approx(
            sequential.total_executed_time_s
        )
        assert parallel.total_dollars == pytest.approx(
            sequential.total_dollars
        )

    def test_counters_not_corrupted_by_concurrency(
        self, catalog, workload
    ):
        """Per-query counters must not interleave across threads.

        Each worker plans on its own clone, so every outcome's counter
        must equal what a fresh planner reports for that query alone.
        """
        runner = WorkloadRunner(RaqoPlanner.default(catalog))
        parallel = runner.run(workload, max_workers=4)
        for query, outcome in zip(workload, parallel.outcomes):
            solo = RaqoPlanner.default(catalog).optimize(query)
            assert outcome.resource_iterations == (
                solo.resource_iterations
            )
            assert outcome.cache_hits == solo.counters.cache_hits

    def test_parallel_with_more_workers_than_queries(
        self, catalog, workload
    ):
        runner = WorkloadRunner(RaqoPlanner.default(catalog))
        report = runner.run(workload[:2], max_workers=16)
        assert len(report.outcomes) == 2

    def test_parallel_randomized_planner(self, catalog, workload):
        """Clones reproduce the seeded randomized planner exactly."""
        planner = RaqoPlanner(
            catalog,
            planner_kind=PlannerKind.FAST_RANDOMIZED,
            seed=3,
        )
        runner = WorkloadRunner(planner)
        sequential = runner.run(workload, max_workers=1)
        parallel = runner.run(workload, max_workers=4)
        assert _strip_timing(parallel) == _strip_timing(sequential)


class TestPlannerClone:
    def test_clone_is_independent(self, catalog):
        planner = RaqoPlanner.default(catalog)
        clone = planner.clone()
        assert clone is not planner
        assert clone.cost_model is planner.cost_model  # shared, immutable
        assert clone.coster is not planner.coster
        assert clone.cache is not planner.cache

    def test_clone_plans_identically(self, catalog):
        planner = RaqoPlanner.default(catalog)
        clone = planner.clone()
        original = planner.optimize(tpch.QUERY_Q3)
        cloned = clone.optimize(tpch.QUERY_Q3)
        assert cloned.cost == original.cost
        assert cloned.counters.resource_iterations == (
            original.counters.resource_iterations
        )

    def test_clone_tracks_replanned_cluster(self, catalog):
        from repro.cluster.cluster import ClusterConditions

        planner = RaqoPlanner.default(catalog)
        small = ClusterConditions(max_containers=8, max_container_gb=2.0)
        planner.replan(tpch.QUERY_Q2, small)
        assert planner.clone().cluster == small
