"""Golden regression tests for the paper's switch-point figures.

The simulator is deterministic, so the fig03/fig04/fig09 outputs are
snapshotted under ``tests/experiments/golden/`` and compared with a
small tolerance: cost-model refits or profile recalibrations may move a
curve by a hair, but a switch point drifting past the tolerance means
the reproduced figure no longer tells the paper's story and the golden
file needs a deliberate regeneration (see the module docstring of each
experiment for what the paper expects).
"""

import json
import math
from pathlib import Path

import pytest

from repro.engine.profiles import HIVE_PROFILE, SPARK_PROFILE
from repro.experiments import (
    fig03_operator_switch,
    fig04_data_switch,
    fig09_switch_space,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Relative tolerance for execution-time curves.
TIME_RTOL = 1e-6

#: Absolute tolerance (GB) for switch points: one sweep-resolution step.
SWITCH_ATOL_GB = 0.25


def load(name):
    return json.loads((GOLDEN_DIR / name).read_text())


def dec(value):
    """Golden files encode infinities as the string "inf"."""
    return math.inf if value == "inf" else value


def assert_time_close(actual, golden):
    golden = dec(golden)
    if math.isinf(golden):
        assert math.isinf(actual)
    else:
        assert actual == pytest.approx(golden, rel=TIME_RTOL)


class TestFig03Golden:
    @pytest.fixture(scope="class")
    def result(self):
        return fig03_operator_switch.run()

    def test_switch_points(self, result):
        golden = load("fig03.json")
        assert result.switch_container_gb() == pytest.approx(
            golden["switch_container_gb"], abs=1.0
        )
        assert (
            abs(
                result.switch_container_count()
                - golden["switch_container_count"]
            )
            <= 5
        )

    @pytest.mark.parametrize(
        "sweep", ["container_size_sweep", "container_count_sweep"]
    )
    def test_time_curves(self, result, sweep):
        golden = load("fig03.json")[sweep]
        points = getattr(result, sweep)
        assert len(points) == len(golden)
        for point, snap in zip(points, golden):
            assert point.config.num_containers == snap["num_containers"]
            assert point.config.container_gb == snap["container_gb"]
            assert_time_close(point.smj_time_s, snap["smj_time_s"])
            assert_time_close(point.bhj_time_s, snap["bhj_time_s"])


class TestFig04Golden:
    def test_switch_and_wall_points(self):
        golden = load("fig04.json")
        result = fig04_data_switch.run()
        assert set(result.series) == set(golden)
        for label, snap in golden.items():
            series = result.series[label]
            assert series.switch.switch_gb == pytest.approx(
                snap["switch_gb"], abs=SWITCH_ATOL_GB
            )
            assert series.switch.wall_gb == pytest.approx(
                snap["wall_gb"], abs=SWITCH_ATOL_GB
            )

    def test_bigger_containers_move_the_switch_point_out(self):
        # The paper's Fig 4(a) qualitative claim must survive any refit.
        golden = load("fig04.json")
        assert (
            golden["cs=9GB,nc=10"]["switch_gb"]
            > golden["cs=3GB,nc=10"]["switch_gb"]
        )


class TestFig09Golden:
    @pytest.mark.parametrize(
        "profile", [HIVE_PROFILE, SPARK_PROFILE], ids=lambda p: p.name
    )
    def test_switch_curves(self, profile):
        golden = load("fig09.json")[profile.name]
        result = fig09_switch_space.run(profile)
        actual = {
            f"{nc},{nr if nr is not None else 'default'}": [
                p.switch_gb for p in points
            ]
            for (nc, nr), points in result.curves.items()
        }
        assert set(actual) == set(golden)
        for combo, snapshot in golden.items():
            assert len(actual[combo]) == len(snapshot)
            for got, snap in zip(actual[combo], snapshot):
                assert got == pytest.approx(snap, abs=SWITCH_ATOL_GB)
