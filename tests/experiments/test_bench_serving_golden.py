"""Golden schema snapshot for ``BENCH_serving.json``.

The serving benchmark's numbers (QPS, latency quantiles) are
machine-dependent, so unlike the fig03/04/09 goldens there is nothing
numeric to pin.  What *is* pinned is the report's field structure: the
schema skeleton under ``tests/experiments/golden/
bench_serving_schema.json``.  Renaming, dropping, or retyping a field
in the benchmark payload fails here (and in the CI smoke step, which
runs ``bench_serving.py --check``) until the golden file is
deliberately regenerated::

    PYTHONPATH=src python - <<'PY'
    import json, sys
    sys.path.insert(0, "benchmarks")
    from bench_serving import GOLDEN_SCHEMA_PATH, run_benchmark, schema_skeleton
    skeleton = schema_skeleton(run_benchmark(quick=True, workers=2))
    GOLDEN_SCHEMA_PATH.write_text(json.dumps(skeleton, indent=2) + "\n")
    PY
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_serving import (  # noqa: E402
    GOLDEN_SCHEMA_PATH,
    run_benchmark,
    schema_skeleton,
    validate_report,
)


@pytest.fixture(scope="module")
def small_report():
    """One tiny benchmark run (2 workers, quick traces)."""
    return run_benchmark(quick=True, workers=2)


class TestSchemaSkeleton:
    def test_scalars_collapse_to_type_names(self):
        assert schema_skeleton(True) == "boolean"
        assert schema_skeleton(3) == "number"
        assert schema_skeleton(2.5) == "number"
        assert schema_skeleton("x") == "string"
        assert schema_skeleton(None) == "null"

    def test_dicts_keep_keys_and_sort_them(self):
        assert schema_skeleton({"b": 1, "a": "x"}) == {
            "a": "string",
            "b": "number",
        }

    def test_lists_collapse_to_first_element(self):
        assert schema_skeleton([1, 2, 3]) == ["number"]
        assert schema_skeleton([]) == []

    def test_skeleton_ignores_the_numbers(self):
        left = schema_skeleton({"qps": 100.0, "label": "a"})
        right = schema_skeleton({"qps": 9999.9, "label": "b"})
        assert left == right


class TestGoldenSchema:
    def test_golden_file_exists_and_is_sorted_json(self):
        golden = json.loads(GOLDEN_SCHEMA_PATH.read_text())
        assert list(golden) == sorted(golden)
        assert "traces" in golden

    def test_fresh_report_matches_the_golden_schema(self, small_report):
        problems = validate_report(small_report)
        assert problems == []

    def test_drift_is_detected(self, small_report):
        mutated = dict(small_report)
        mutated["surprise_field"] = 1
        del mutated["seed"]
        problems = validate_report(mutated)
        assert any("surprise_field" in p for p in problems)
        assert any("seed" in p and "missing" in p for p in problems)

    def test_retyped_field_is_detected(self, small_report):
        mutated = dict(small_report)
        mutated["seed"] = "zero"  # number -> string
        problems = validate_report(mutated)
        assert any("seed" in p for p in problems)


class TestBenchmarkPayload:
    def test_both_trace_shapes_are_reported(self, small_report):
        assert set(small_report["traces"]) == {"poisson", "bursty"}
        for label, trace in small_report["traces"].items():
            assert trace["completed"] + trace["rejected"] == (
                trace["requests"]
            )
            assert trace["qps"] > 0
            for quantile in ("p50", "p95", "p99", "mean", "max"):
                assert trace["latency_ms"][quantile] >= 0.0

    def test_cache_section_reconciles(self, small_report):
        for trace in small_report["traces"].values():
            cache = trace["cache"]
            assert cache["entries"] == (
                cache["inserts"] - cache["evictions"]
            )
            assert cache["hits"] + cache["misses"] >= cache["inserts"]
