"""Tests for the planner-evaluation drivers (Figs 12, 14, 15).

Reduced-size runs keeping the headline claims verifiable.
"""

import pytest

from repro.catalog import tpch
from repro.experiments import (
    fig12_tpch_planning,
    fig14_plan_cache,
    fig15_scalability,
)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_tpch_planning.run(
            queries=(tpch.QUERY_Q12, tpch.QUERY_Q3), repetitions=1
        )

    def test_grid_complete(self, result):
        assert len(result.rows) == 4  # 2 queries x 2 planners

    def test_raqo_explores_resource_space(self, result):
        for row in result.rows:
            assert row.resource_iterations > 0

    def test_raqo_adds_overhead(self, result):
        for row in result.rows:
            assert row.raqo_runtime_ms >= row.qo_runtime_ms

    def test_larger_query_explores_more(self, result):
        q12 = result.row("Q12", "selinger")
        q3 = result.row("Q3", "selinger")
        assert q3.resource_iterations > q12.resource_iterations

    def test_lookup_unknown_cell(self, result):
        with pytest.raises(KeyError):
            result.row("Q12", "nonexistent")


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_plan_cache.run(
            query=tpch.QUERY_Q2, repetitions=1
        )

    def test_caching_reduces_iterations(self, result):
        for point in result.points:
            assert point.resource_iterations <= (
                result.baseline_iterations
            )
        assert result.best_iteration_reduction() > 2.0

    def test_larger_threshold_never_explores_more(self, result):
        for variant in ("HC+Caching_NN", "HC+Caching_WA"):
            series = [
                p for p in result.points if p.variant == variant
            ]
            series.sort(key=lambda p: p.threshold_gb)
            iterations = [p.resource_iterations for p in series]
            assert iterations == sorted(iterations, reverse=True)

    def test_cache_hits_recorded(self, result):
        assert any(p.cache_hits > 0 for p in result.points)

    def test_both_variants_measured(self, result):
        variants = {p.variant for p in result.points}
        assert variants == {"HC+Caching_NN", "HC+Caching_WA"}


class TestFig15:
    def test_schema_scaling_claims(self):
        result = fig15_scalability.run_schema_scaling(
            sizes=(2, 5, 10), num_tables=20, iterations=2
        )
        assert len(result.points) == 3
        # Caching reduces resource iterations dramatically.
        for point in result.points[1:]:
            assert point.raqo_cached_iterations < point.raqo_iterations
        assert result.mean_cache_speedup > 1.5

    def test_resource_scaling_iterations_grow(self):
        result = fig15_scalability.run_resource_scaling(
            query_size=6,
            num_tables=20,
            container_scale=(100, 10_000),
            size_scale_gb=(10.0,),
            iterations=1,
        )
        iterations = [p.raqo_iterations for p in result.points]
        assert iterations[-1] > iterations[0]

    def test_scaled_cluster_levels(self):
        small = fig15_scalability.scaled_cluster(100, 10.0)
        large = fig15_scalability.scaled_cluster(100_000, 100.0)
        assert small.container_step == 1
        assert large.container_step > 1
        # The discrete level count grows with the cluster.
        small_levels = small.dimensions[0].num_values
        large_levels = large.dimensions[0].num_values
        assert large_levels > small_levels
