"""Golden schema snapshot for ``BENCH_planning.json``.

Like ``test_bench_serving_golden.py``: the planning benchmark's rates
are machine-dependent, so the golden pins the report's *field
structure* (``tests/experiments/golden/bench_planning_schema.json``),
not its numbers.  Renaming, dropping, or retyping a field -- including
the ``pareto_frontiers`` section the ``--assert-overhead`` gate reads
-- fails here until the golden is deliberately regenerated::

    PYTHONPATH=src python benchmarks/bench_planning_throughput.py \
        --quick --output /tmp/bench.json
    PYTHONPATH=src python - <<'PY'
    import json, sys
    sys.path.insert(0, "benchmarks")
    from bench_planning_throughput import GOLDEN_SCHEMA_PATH, schema_skeleton
    report = json.load(open("/tmp/bench.json"))
    GOLDEN_SCHEMA_PATH.write_text(
        json.dumps(schema_skeleton(report), indent=2) + "\n"
    )
    PY
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_planning_throughput import (  # noqa: E402
    GOLDEN_SCHEMA_PATH,
    validate_planning_report,
)

BASELINE_PATH = REPO_ROOT / "BENCH_planning.json"


class TestGoldenSchema:
    def test_golden_file_exists_and_is_sorted_json(self):
        golden = json.loads(GOLDEN_SCHEMA_PATH.read_text())
        assert list(golden) == sorted(golden)
        assert "pareto_frontiers" in golden
        assert "subplan_throughput" in golden

    def test_checked_in_baseline_matches_the_golden_schema(self):
        baseline = json.loads(BASELINE_PATH.read_text())
        assert validate_planning_report(baseline) == []

    def test_drift_is_detected(self):
        baseline = json.loads(BASELINE_PATH.read_text())
        mutated = dict(baseline)
        mutated["surprise_field"] = 1
        del mutated["pareto_frontiers"]
        problems = validate_planning_report(mutated)
        assert any("surprise_field" in p for p in problems)
        assert any(
            "pareto_frontiers" in p and "missing" in p for p in problems
        )

    def test_retyped_field_is_detected(self):
        baseline = json.loads(BASELINE_PATH.read_text())
        mutated = dict(baseline)
        mutated["pareto_frontiers"] = dict(mutated["pareto_frontiers"])
        mutated["pareto_frontiers"]["pareto_frontiers_per_s"] = "fast"
        problems = validate_planning_report(mutated)
        assert any("pareto_frontiers_per_s" in p for p in problems)


class TestBaselinePayload:
    """Sections the CI overhead gate depends on are present and sane."""

    def test_gated_sections_present(self):
        baseline = json.loads(BASELINE_PATH.read_text())
        assert baseline["subplan_throughput"]["vectorized"][
            "sub_plans_per_s"
        ] > 0
        pareto = baseline["pareto_frontiers"]
        assert pareto["pareto_frontiers_per_s"] > 0
        assert pareto["frontier_points"] >= pareto["frontiers"]
        assert pareto["overhead_vs_fastest"] > 0
