"""Tests for the experiment drivers: each figure's headline claims.

These run reduced-size versions of the drivers where the full sweep is
slow; the benchmarks run the full configurations.
"""

import math

import pytest

from repro.catalog import tpch
from repro.cluster.trace import TraceConfig
from repro.engine.profiles import HIVE_PROFILE, SPARK_PROFILE
from repro.experiments import (
    fig01_queue_cdf,
    fig02_potential_gains,
    fig03_operator_switch,
    fig04_data_switch,
    fig05_join_order,
    fig06_monetary,
    fig07_monetary_switch,
    fig09_switch_space,
    fig10_default_trees,
    fig11_raqo_trees,
    fig13_hill_climbing,
)
from repro.experiments.report import format_table


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(
            ["a", "bb"], [(1, 2.5), (10, 3.25)], title="t"
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert len(set(len(line) for line in lines[1:])) == 1

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_inf_and_nan_rendering(self):
        text = format_table(
            ["x"], [(float("inf"),), (float("nan"),)]
        )
        assert "inf" in text and "nan" in text


class TestFig01:
    def test_headline_statistics(self):
        # The calibrated defaults (2000 jobs) reproduce the paper's
        # two claims; shorter traces under-sample the bursts.
        result = fig01_queue_cdf.run(seed=7)
        assert result.fraction_ratio_ge_1 >= 0.80
        assert result.fraction_ratio_ge_4 >= 0.20

    def test_cdf_monotone(self):
        result = fig01_queue_cdf.run(TraceConfig(num_jobs=500), seed=1)
        ratios = [ratio for _, ratio in result.cdf]
        assert ratios == sorted(ratios)


class TestFig02:
    def test_hive_default_loses_somewhere(self):
        result = fig02_potential_gains.run(HIVE_PROFILE)
        assert result.max_time_ratio >= 1.3
        assert result.max_resource_ratio >= 1.3

    def test_spark_default_loses_somewhere(self):
        result = fig02_potential_gains.run(SPARK_PROFILE)
        assert result.max_time_ratio >= 1.2

    def test_ratios_never_below_one(self):
        result = fig02_potential_gains.run(HIVE_PROFILE)
        for point in result.points:
            assert point.time_ratio >= 1.0 - 1e-9


class TestFig03:
    def test_switch_points_match_paper(self):
        result = fig03_operator_switch.run()
        assert result.switch_container_gb() == pytest.approx(7.0)
        assert result.switch_container_count() == 20

    def test_oom_region(self):
        result = fig03_operator_switch.run()
        small = [
            p
            for p in result.container_size_sweep
            if p.config.container_gb < 4.5
        ]
        assert all(not p.bhj_feasible for p in small)


class TestFig04:
    def test_switch_points(self):
        result = fig04_data_switch.run()
        assert result.switch_gb("cs=3GB,nc=10") == pytest.approx(
            3.45, abs=0.15
        )
        assert 5.0 <= result.switch_gb("cs=9GB,nc=10") <= 7.0

    def test_switch_moves_with_resources(self):
        result = fig04_data_switch.run()
        assert result.switch_gb("cs=3GB,nc=10") != result.switch_gb(
            "cs=9GB,nc=10"
        )


class TestFig05:
    def test_plan1_wins_at_moderate_parallelism(self):
        result = fig05_join_order.run()
        at_16 = [
            p
            for p in result.container_count_sweep
            if p.config.num_containers == 16
        ][0]
        assert at_16.winner == "Plan 1"

    def test_plan2_overtakes_at_high_parallelism(self):
        result = fig05_join_order.run()
        crossover = result.crossover_containers()
        assert crossover is not None
        assert 24 <= crossover <= 44  # paper: 32

    def test_plan1_oom_at_small_containers(self):
        result = fig05_join_order.run()
        smallest = result.container_size_sweep[0]
        assert not math.isfinite(smallest.plan1_time_s)

    def test_container_size_mild_effect_on_plan2(self):
        result = fig05_join_order.run()
        times = [
            p.plan2_time_s
            for p in result.container_size_sweep
            if math.isfinite(p.plan2_time_s)
        ]
        assert max(times) / min(times) < 1.1


class TestFig06:
    def test_either_implementation_can_be_cheaper(self):
        result = fig06_monetary.run()
        winners = {
            p.cheaper.value
            for p in (
                result.container_size_sweep
                + result.container_count_sweep
            )
            if math.isfinite(p.bhj_dollars)
        }
        assert len(winners) == 2


class TestFig07:
    def test_monetary_switch_varies(self):
        result = fig07_monetary_switch.run()
        switches = {
            entry.switch.switch_gb for entry in result.series.values()
        }
        assert len(switches) > 1


class TestFig09:
    def test_hive_surface_shape(self):
        result = fig09_switch_space.run(HIVE_PROFILE, resolution_gb=0.2)
        for curve in result.curves.values():
            switches = [p.switch_gb for p in curve]
            # Switch points rise with container size.
            assert switches == sorted(switches)

    def test_default_rule_way_off(self):
        result = fig09_switch_space.run(HIVE_PROFILE, resolution_gb=0.2)
        assert result.default_rule_error() > 1.0  # off by >1 GB

    def test_spark_range(self):
        result = fig09_switch_space.run(
            SPARK_PROFILE, resolution_gb=0.05
        )
        for curve in result.curves.values():
            for point in curve:
                assert 0.05 <= point.switch_gb <= 1.5


class TestFig10:
    def test_learned_threshold_matches_rule(self):
        result = fig10_default_trees.run()
        for engine in ("hive", "spark"):
            assert result.learned_thresholds_gb[engine] == (
                pytest.approx(0.010, rel=0.3)
            )
        assert "class=BHJ" in result.rendered["hive"]


class TestFig11:
    def test_hive_tree_quality(self):
        result = fig11_raqo_trees.run(HIVE_PROFILE)
        assert result.training_accuracy >= 0.95
        assert result.max_path_length <= 7
        assert result.num_samples > 500

    def test_spark_tree_quality(self):
        result = fig11_raqo_trees.run(SPARK_PROFILE)
        assert result.training_accuracy >= 0.95
        assert result.max_path_length <= 7


class TestFig13:
    def test_hill_climbing_reduces_iterations(self):
        result = fig13_hill_climbing.run(
            queries=(tpch.QUERY_Q12, tpch.QUERY_Q3)
        )
        for row in result.rows:
            assert row.iteration_reduction > 1.5
        assert result.mean_iteration_reduction > 2.0
