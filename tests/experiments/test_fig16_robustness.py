"""Tests for the fig16 robustness experiment (reduced sweep for speed)."""

import pytest

from repro.experiments import fig16_robustness


@pytest.fixture(scope="module")
def result():
    return fig16_robustness.run(
        intensities=(0.0, 0.4), num_queries=4, seed=11
    )


class TestRobustnessSweep:
    def test_both_planners_swept(self, result):
        assert set(result.series) == {"raqo", "two_step"}
        for points in result.series.values():
            assert [p.intensity for p in points] == [0.0, 0.4]

    def test_fault_free_baseline_is_clean(self, result):
        for label in result.series:
            assert result.slowdown_at(label, 0.0) == 1.0
            base = result.series[label][0]
            assert base.faults_injected == 0
            assert base.retries == 0
            assert base.degraded_stages == 0

    def test_faults_slow_execution_down(self, result):
        for label in result.series:
            stressed = result.series[label][-1]
            assert stressed.slowdown >= 1.0
            assert (
                stressed.executed_time_s
                >= result.series[label][0].executed_time_s
            )
        # The sweep actually injects at high intensity.
        assert any(
            points[-1].faults_injected > 0
            for points in result.series.values()
        )

    def test_no_query_fails_under_recovery(self, result):
        for points in result.series.values():
            for point in points:
                assert point.failed_queries == 0

    def test_sweep_is_deterministic(self, result):
        again = fig16_robustness.run(
            intensities=(0.0, 0.4), num_queries=4, seed=11
        )
        assert again == result

    def test_max_slowdown_helper(self, result):
        for label, points in result.series.items():
            assert result.max_slowdown(label) == max(
                p.slowdown for p in points
            )


class TestFaultSpecScaling:
    def test_intensity_maps_to_rates(self):
        spec = fig16_robustness.fault_spec_for(0.4, seed=2)
        assert spec.seed == 2
        assert spec.oom_rate == 0.4
        assert spec.preemption_rate == 0.2
        assert spec.straggler_rate == 0.2

    def test_zero_intensity_is_zero_spec(self):
        assert fig16_robustness.fault_spec_for(0.0).is_zero
