"""Tests for repro.experiments.export and fig08."""

import pytest

from repro.experiments import (
    fig01_queue_cdf,
    fig03_operator_switch,
    fig08_architecture,
)
from repro.experiments.export import (
    ExportError,
    export_fig03,
    export_queue_cdf,
    read_csv,
    write_csv,
)


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        path = write_csv(
            tmp_path / "x.csv", ["a", "b"], [(1, 2), (3, 4)]
        )
        rows = read_csv(path)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_directories(self, tmp_path):
        path = write_csv(
            tmp_path / "deep" / "dir" / "x.csv", ["a"], [(1,)]
        )
        assert path.exists()

    def test_empty_headers_rejected(self, tmp_path):
        with pytest.raises(ExportError):
            write_csv(tmp_path / "x.csv", [], [])

    def test_row_arity_checked(self, tmp_path):
        with pytest.raises(ExportError):
            write_csv(tmp_path / "x.csv", ["a", "b"], [(1,)])


class TestFigureExports:
    def test_export_fig03(self, tmp_path):
        result = fig03_operator_switch.run()
        paths = export_fig03(result, tmp_path)
        assert len(paths) == 2
        size_rows = read_csv(paths[0])
        assert size_rows[0] == ["container_gb", "smj_s", "bhj_s", "winner"]
        assert len(size_rows) == len(result.container_size_sweep) + 1

    def test_export_queue_cdf(self, tmp_path):
        from repro.cluster.trace import TraceConfig

        result = fig01_queue_cdf.run(TraceConfig(num_jobs=300))
        path = export_queue_cdf(result, tmp_path)
        rows = read_csv(path)
        assert rows[0] == ["fraction_of_jobs", "queue_runtime_ratio"]
        assert len(rows) == len(result.cdf) + 1


class TestFig08:
    def test_stacks_described(self):
        result = fig08_architecture.run()
        assert len(result.current) == 4
        assert len(result.raqo) == 5

    def test_raqo_has_single_optimization_layer(self):
        result = fig08_architecture.run()
        assert result.optimization_layers_raqo == 1
        assert result.optimization_layers_current == 2

    def test_package_mapping_points_at_core(self):
        mapping = fig08_architecture.run().package_mapping()
        raqo_layer = [
            layer for layer in mapping if "RAQO" in layer
        ]
        assert len(raqo_layer) == 1
        assert "repro.core" in mapping[raqo_layer[0]]

    def test_render_mentions_both_stacks(self):
        result = fig08_architecture.run()
        text = fig08_architecture.render(result)
        assert "Current practice" in text
        assert "RAQO vision" in text
        assert "repro.core" in text
