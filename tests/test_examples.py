"""Smoke tests: every shipped example must run and produce its output.

Examples are the public face of the library; these tests run each one
in-process and assert on its key output lines so they cannot silently
rot.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    """Execute an example script as __main__ and capture its stdout."""
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "RAQO joint plan" in out
        assert "speedup over the two-step baseline" in out
        # The headline claim: RAQO at least matches the baseline.
        speedup = float(out.rsplit(":", 1)[1].strip().rstrip("x"))
        assert speedup >= 1.0

    def test_resource_aware_rules(self, capsys):
        out = run_example("resource_aware_rules.py", capsys)
        assert "Learned RAQO decision tree" in out
        assert "RAQO wins" in out

    def test_budget_and_price(self, capsys):
        out = run_example("budget_and_price.py", capsys)
        assert "[r => p]" in out
        assert "[p => (r, c)]" in out
        assert "[(p, r)]" in out
        assert "[c => (p, r)]" in out

    def test_adaptive_reoptimization(self, capsys):
        out = run_example("adaptive_reoptimization.py", capsys)
        assert "quiet cluster" in out
        assert "plan adapted to the new cluster conditions" in out

    def test_scheduling_and_whatif(self, capsys):
        out = run_example("scheduling_and_whatif.py", capsys)
        assert "scheduler policies" in out
        assert "robust plan" in out
        assert "what-if: shrinking envelope" in out
        assert "price-performance frontier" in out

    def test_all_examples_covered(self):
        """Every example file has a smoke test above."""
        tested = {
            "quickstart.py",
            "resource_aware_rules.py",
            "budget_and_price.py",
            "adaptive_reoptimization.py",
            "scheduling_and_whatif.py",
        }
        shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert shipped == tested
