"""Tests for repro.faults.model: specs, decisions, and fault plans."""

import pytest

from repro.engine.joins import JoinAlgorithm
from repro.faults.model import (
    FaultDecision,
    FaultError,
    FaultKind,
    FaultPlan,
    FaultSpec,
    NO_FAULT,
    ZERO_FAULTS,
    stage_key_for_join,
)


class TestFaultSpec:
    def test_defaults_are_zero(self):
        spec = FaultSpec()
        assert spec.is_zero
        assert spec.expected_attempts() == 1.0

    @pytest.mark.parametrize(
        "field", ["preemption_rate", "oom_rate", "straggler_rate"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, value):
        with pytest.raises(FaultError):
            FaultSpec(**{field: value})

    def test_certain_preemption_rejected(self):
        # A stage preempted with probability 1 can never finish.
        with pytest.raises(FaultError):
            FaultSpec(preemption_rate=1.0)

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(straggler_slowdown=0.5)

    def test_expected_attempts_is_geometric_mean(self):
        assert FaultSpec(preemption_rate=0.5).expected_attempts() == 2.0
        assert FaultSpec(
            preemption_rate=0.2
        ).expected_attempts() == pytest.approx(1.25)

    def test_round_trip(self):
        spec = FaultSpec(
            seed=9,
            preemption_rate=0.1,
            oom_rate=0.2,
            straggler_rate=0.3,
            straggler_slowdown=4.0,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultError):
            FaultSpec.from_dict({"seed": 1, "crash_rate": 0.5})

    def test_with_seed_keeps_rates(self):
        spec = FaultSpec(seed=1, oom_rate=0.4)
        reseeded = spec.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.oom_rate == 0.4


class TestFaultSpecParse:
    def test_full_spec(self):
        spec = FaultSpec.parse(
            "seed=7,preempt=0.1,oom=0.2,straggle=0.1,slowdown=4"
        )
        assert spec == FaultSpec(
            seed=7,
            preemption_rate=0.1,
            oom_rate=0.2,
            straggler_rate=0.1,
            straggler_slowdown=4.0,
        )

    def test_long_aliases(self):
        assert FaultSpec.parse(
            "preemption_rate=0.1,oom_rate=0.2"
        ) == FaultSpec(preemption_rate=0.1, oom_rate=0.2)

    @pytest.mark.parametrize("text", ["", "none", "  none  "])
    def test_none_is_zero_spec(self, text):
        assert FaultSpec.parse(text) == FaultSpec()

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultError, match="unknown fault spec key"):
            FaultSpec.parse("explode=0.5")

    def test_malformed_item_rejected(self):
        with pytest.raises(FaultError, match="malformed"):
            FaultSpec.parse("oom")

    def test_bad_value_rejected(self):
        with pytest.raises(FaultError, match="bad value"):
            FaultSpec.parse("oom=lots")

    def test_out_of_range_parsed_rate_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec.parse("oom=1.5")


class TestFaultDecision:
    def test_no_fault(self):
        assert not NO_FAULT.is_fault
        assert not NO_FAULT.is_kill

    def test_kill_kinds(self):
        assert FaultDecision(kind=FaultKind.PREEMPTION).is_kill
        assert FaultDecision(kind=FaultKind.OOM_KILL).is_kill
        assert not FaultDecision(kind=FaultKind.STRAGGLER).is_kill


class TestFaultPlan:
    def test_zero_plan_never_faults(self):
        for attempt in range(20):
            assert (
                ZERO_FAULTS.decide("k", attempt, oom_pressure=100.0)
                is NO_FAULT
            )

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(
            FaultSpec(
                seed=3,
                preemption_rate=0.3,
                oom_rate=0.3,
                straggler_rate=0.3,
            )
        )
        for attempt in range(10):
            first = plan.decide("stage-a", attempt, oom_pressure=0.5)
            again = plan.decide("stage-a", attempt, oom_pressure=0.5)
            assert first == again

    def test_decisions_are_order_independent(self):
        plan = FaultPlan(
            FaultSpec(seed=3, preemption_rate=0.4, straggler_rate=0.4)
        )
        keys = [f"stage-{i}" for i in range(8)]
        forward = [plan.decide(key, 0) for key in keys]
        backward = [plan.decide(key, 0) for key in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_seed_changes_outcomes(self):
        spec = FaultSpec(preemption_rate=0.5, straggler_rate=0.4)
        a = FaultPlan(spec.with_seed(1))
        b = FaultPlan(spec.with_seed(2))
        decisions_a = [a.decide(f"s{i}", 0) for i in range(40)]
        decisions_b = [b.decide(f"s{i}", 0) for i in range(40)]
        assert decisions_a != decisions_b

    def test_zero_pressure_disables_oom(self):
        plan = FaultPlan(FaultSpec(seed=5, oom_rate=1.0))
        for i in range(50):
            decision = plan.decide(f"s{i}", 0, oom_pressure=0.0)
            assert decision.kind is not FaultKind.OOM_KILL

    def test_pressure_scales_oom_rate(self):
        plan = FaultPlan(FaultSpec(seed=5, oom_rate=0.5))
        kills_low = sum(
            plan.decide(f"s{i}", 0, oom_pressure=0.1).kind
            is FaultKind.OOM_KILL
            for i in range(200)
        )
        kills_high = sum(
            plan.decide(f"s{i}", 0, oom_pressure=2.0).kind
            is FaultKind.OOM_KILL
            for i in range(200)
        )
        assert kills_low < kills_high

    def test_negative_pressure_rejected(self):
        plan = FaultPlan(FaultSpec(oom_rate=0.5))
        with pytest.raises(FaultError):
            plan.decide("s", 0, oom_pressure=-1.0)

    def test_straggler_slowdown_bounds(self):
        plan = FaultPlan(
            FaultSpec(seed=2, straggler_rate=1.0, straggler_slowdown=3.0)
        )
        for i in range(100):
            decision = plan.decide(f"s{i}", 0)
            assert decision.kind is FaultKind.STRAGGLER
            assert 2.0 <= decision.slowdown <= 3.0

    def test_kill_fraction_bounds(self):
        plan = FaultPlan(FaultSpec(seed=2, preemption_rate=0.9))
        fractions = [
            d.fraction
            for d in (plan.decide(f"s{i}", 0) for i in range(100))
            if d.is_kill
        ]
        assert fractions
        assert all(0.05 <= f <= 0.95 for f in fractions)

    def test_decision_values_are_plain_floats(self):
        plan = FaultPlan(
            FaultSpec(seed=1, preemption_rate=0.9, straggler_rate=0.9)
        )
        for i in range(20):
            decision = plan.decide(f"s{i}", 0)
            assert type(decision.fraction) is float
            assert type(decision.slowdown) is float

    def test_scoped_plans_draw_independently(self):
        base = FaultPlan(FaultSpec(seed=4, preemption_rate=0.5))
        a = base.scoped("q000")
        b = base.scoped("q001")
        decisions_a = [a.decide(f"s{i}", 0) for i in range(40)]
        decisions_b = [b.decide(f"s{i}", 0) for i in range(40)]
        assert decisions_a != decisions_b
        # Scoping is itself deterministic.
        assert decisions_a == [
            base.scoped("q000").decide(f"s{i}", 0) for i in range(40)
        ]

    def test_equality_includes_scope(self):
        base = FaultPlan(FaultSpec(seed=4, oom_rate=0.1))
        assert base == FaultPlan(FaultSpec(seed=4, oom_rate=0.1))
        assert base.scoped("x") == base.scoped("x")
        assert base.scoped("x") != base
        assert base.scoped("x") != base.scoped("y")
        assert hash(base.scoped("x")) == hash(base.scoped("x"))


class TestStageKey:
    def test_key_is_order_insensitive_within_sides(self):
        key = stage_key_for_join(
            ["orders", "customer"], ["lineitem"], JoinAlgorithm.SORT_MERGE
        )
        assert key == stage_key_for_join(
            ["customer", "orders"], ["lineitem"], JoinAlgorithm.SORT_MERGE
        )
        assert key == "customer|orders><lineitem:smj"

    def test_key_distinguishes_algorithm_and_sides(self):
        smj = stage_key_for_join(
            ["a"], ["b"], JoinAlgorithm.SORT_MERGE
        )
        bhj = stage_key_for_join(
            ["a"], ["b"], JoinAlgorithm.BROADCAST_HASH
        )
        swapped = stage_key_for_join(
            ["b"], ["a"], JoinAlgorithm.SORT_MERGE
        )
        assert len({smj, bhj, swapped}) == 3
