"""Tests for repro.faults.injection: the fault-aware stage attempt loop.

Uses a scripted fault double (duck-typed: the loop only calls
``decide``) so every branch of the loop is driven deterministically,
independent of the hash-derived RNG.
"""

import math

import pytest

from repro.cluster.containers import ResourceConfiguration
from repro.engine.joins import JoinAlgorithm, JoinExecution
from repro.faults.injection import run_stage_with_faults
from repro.faults.model import (
    FaultDecision,
    FaultKind,
    NO_FAULT,
    ZERO_FAULTS,
)
from repro.faults.recovery import RecoveryPolicy

RC = ResourceConfiguration(num_containers=10, container_gb=4.0)
GB_PER_S = RC.total_memory_gb  # 40 GB busy per second


class ScriptedFaults:
    """Returns pre-scripted decisions by attempt index."""

    def __init__(self, *decisions):
        self.decisions = decisions
        self.calls = []

    def decide(self, stage_key, attempt, oom_pressure=0.0):
        self.calls.append((stage_key, attempt, oom_pressure))
        if attempt < len(self.decisions):
            return self.decisions[attempt]
        return NO_FAULT


def feasible_attempt(time_s=100.0):
    def run(algorithm, resources):
        return JoinExecution(
            algorithm=algorithm,
            feasible=True,
            time_s=time_s,
            num_tasks=resources.num_containers,
        )

    return run


def bhj_walled_attempt(smj_time_s=200.0):
    """BHJ hits the static OOM wall; SMJ runs fine."""

    def run(algorithm, resources):
        if algorithm is JoinAlgorithm.BROADCAST_HASH:
            return JoinExecution(
                algorithm=algorithm,
                feasible=False,
                time_s=math.inf,
                num_tasks=0,
            )
        return JoinExecution(
            algorithm=algorithm,
            feasible=True,
            time_s=smj_time_s,
            num_tasks=resources.num_containers,
        )

    return run


def no_pressure(algorithm, resources):
    return 0.0


def run_stage(run_attempt, faults=None, recovery=None, **kwargs):
    return run_stage_with_faults(
        stage_key="t><t:smj",
        algorithm=kwargs.pop("algorithm", JoinAlgorithm.SORT_MERGE),
        resources=kwargs.pop("resources", RC),
        run_attempt=run_attempt,
        oom_pressure=kwargs.pop("oom_pressure", no_pressure),
        faults=faults,
        recovery=recovery,
        **kwargs,
    )


class TestCleanPath:
    def test_clean_success_has_quiet_outcome(self):
        outcome = run_stage(feasible_attempt(100.0), faults=ZERO_FAULTS)
        assert outcome.feasible
        assert outcome.elapsed_s == 100.0
        assert outcome.gb_seconds == 100.0 * GB_PER_S
        # Nothing noteworthy: attempts stay empty so zero-fault runs are
        # bit-identical to fault-free execution.
        assert outcome.attempts == ()
        assert outcome.retries == 0
        assert not outcome.degraded
        assert outcome.faults_injected == 0

    def test_no_faults_no_recovery(self):
        outcome = run_stage(feasible_attempt(42.0))
        assert outcome.feasible
        assert outcome.elapsed_s == 42.0


class TestRetries:
    def test_preemption_retries_with_backoff(self):
        faults = ScriptedFaults(
            FaultDecision(kind=FaultKind.PREEMPTION, fraction=0.5)
        )
        policy = RecoveryPolicy(
            max_retries=3, backoff_base_s=2.0, backoff_factor=2.0
        )
        outcome = run_stage(
            feasible_attempt(100.0), faults=faults, recovery=policy
        )
        assert outcome.feasible
        # 50 s wasted + 2 s backoff + 100 s clean rerun.
        assert outcome.elapsed_s == pytest.approx(152.0)
        # Backoff holds no containers: only busy time accrues GB-seconds.
        assert outcome.gb_seconds == pytest.approx(150.0 * GB_PER_S)
        assert outcome.retries == 1
        assert outcome.faults_injected == 1
        assert [a.succeeded for a in outcome.attempts] == [False, True]
        assert outcome.attempts[0].backoff_s == 2.0

    def test_retries_never_exceed_cap(self):
        faults = ScriptedFaults(
            *(
                FaultDecision(kind=FaultKind.PREEMPTION, fraction=0.1)
                for _ in range(10)
            )
        )
        policy = RecoveryPolicy(max_retries=2)
        outcome = run_stage(
            feasible_attempt(100.0), faults=faults, recovery=policy
        )
        assert not outcome.feasible
        assert outcome.elapsed_s == math.inf
        assert outcome.gb_seconds == math.inf
        assert outcome.retries == 2
        # Initial attempt + 2 retries, all killed.
        assert len(outcome.attempts) == 3
        assert not any(a.succeeded for a in outcome.attempts)

    def test_null_recovery_fails_on_first_kill(self):
        faults = ScriptedFaults(
            FaultDecision(kind=FaultKind.PREEMPTION, fraction=0.5)
        )
        outcome = run_stage(feasible_attempt(100.0), faults=faults)
        assert not outcome.feasible
        assert outcome.retries == 0


class TestDegradation:
    def test_static_oom_wall_degrades_to_smj(self):
        policy = RecoveryPolicy()
        outcome = run_stage(
            bhj_walled_attempt(200.0),
            algorithm=JoinAlgorithm.BROADCAST_HASH,
            faults=ZERO_FAULTS,
            recovery=policy,
        )
        assert outcome.feasible
        assert outcome.degraded
        assert outcome.algorithm is JoinAlgorithm.SORT_MERGE
        assert outcome.elapsed_s == 200.0
        assert outcome.retries == 0  # degradation is a re-plan
        wall = outcome.attempts[0]
        assert wall.fault is FaultKind.OOM_KILL
        assert not wall.injected  # static wall, not injected
        assert wall.time_s == 0.0
        assert outcome.faults_injected == 0

    def test_static_oom_wall_without_recovery_is_infeasible(self):
        outcome = run_stage(
            bhj_walled_attempt(),
            algorithm=JoinAlgorithm.BROADCAST_HASH,
        )
        assert not outcome.feasible
        assert outcome.elapsed_s == math.inf

    def test_injected_oom_on_bhj_degrades(self):
        faults = ScriptedFaults(
            FaultDecision(kind=FaultKind.OOM_KILL, fraction=0.25)
        )
        outcome = run_stage(
            feasible_attempt(100.0),
            algorithm=JoinAlgorithm.BROADCAST_HASH,
            faults=faults,
            recovery=RecoveryPolicy(),
        )
        assert outcome.feasible
        assert outcome.degraded
        assert outcome.algorithm is JoinAlgorithm.SORT_MERGE
        # 25 s wasted BHJ work + 100 s SMJ, no backoff for a re-plan.
        assert outcome.elapsed_s == pytest.approx(125.0)
        assert outcome.retries == 0
        assert outcome.faults_injected == 1

    def test_degradation_replans_resources(self):
        replanned = ResourceConfiguration(num_containers=20, container_gb=2.0)

        def replan(algorithm):
            assert algorithm is JoinAlgorithm.SORT_MERGE
            return replanned

        outcome = run_stage(
            bhj_walled_attempt(),
            algorithm=JoinAlgorithm.BROADCAST_HASH,
            faults=ZERO_FAULTS,
            recovery=RecoveryPolicy(),
            replan_on_degrade=replan,
        )
        assert outcome.feasible
        assert outcome.resources == replanned

    def test_injected_oom_on_smj_is_a_retry_not_a_degrade(self):
        faults = ScriptedFaults(
            FaultDecision(kind=FaultKind.OOM_KILL, fraction=0.5)
        )
        outcome = run_stage(
            feasible_attempt(100.0),
            faults=faults,
            recovery=RecoveryPolicy(max_retries=1),
        )
        assert outcome.feasible
        assert not outcome.degraded
        assert outcome.retries == 1

    def test_degradation_happens_at_most_once(self):
        # OOM-kill the BHJ, then OOM-kill the degraded SMJ too: the
        # second kill must consume the retry budget, not re-degrade.
        faults = ScriptedFaults(
            FaultDecision(kind=FaultKind.OOM_KILL, fraction=0.5),
            FaultDecision(kind=FaultKind.OOM_KILL, fraction=0.5),
        )
        outcome = run_stage(
            feasible_attempt(100.0),
            algorithm=JoinAlgorithm.BROADCAST_HASH,
            faults=faults,
            recovery=RecoveryPolicy(max_retries=2),
        )
        assert outcome.feasible
        assert outcome.degraded
        assert outcome.retries == 1
        assert len(outcome.attempts) == 3


class TestStragglers:
    def test_slow_straggler_without_speculation(self):
        faults = ScriptedFaults(
            FaultDecision(kind=FaultKind.STRAGGLER, slowdown=1.5)
        )
        outcome = run_stage(
            feasible_attempt(100.0),
            faults=faults,
            recovery=RecoveryPolicy(speculative_threshold=2.0),
        )
        assert outcome.feasible
        assert outcome.elapsed_s == pytest.approx(150.0)
        assert outcome.gb_seconds == pytest.approx(150.0 * GB_PER_S)
        assert not outcome.speculative
        assert outcome.faults_injected == 1
        assert outcome.attempts[0].succeeded

    def test_speculative_copy_beats_bad_straggler(self):
        faults = ScriptedFaults(
            FaultDecision(kind=FaultKind.STRAGGLER, slowdown=3.0)
        )
        policy = RecoveryPolicy(
            speculative_threshold=2.0, speculative_launch_fraction=0.5
        )
        outcome = run_stage(
            feasible_attempt(100.0), faults=faults, recovery=policy
        )
        assert outcome.feasible
        assert outcome.speculative
        # Copy launches at 50 s, finishes at 150 s < the 300 s straggle.
        assert outcome.elapsed_s == pytest.approx(150.0)
        # Both copies charged while racing: 150 + (150 - 50) busy secs.
        assert outcome.gb_seconds == pytest.approx(250.0 * GB_PER_S)
        assert outcome.attempts[0].speculative

    def test_speculation_never_exceeds_straggler_time(self):
        faults = ScriptedFaults(
            FaultDecision(kind=FaultKind.STRAGGLER, slowdown=2.0)
        )
        policy = RecoveryPolicy(
            speculative_threshold=2.0, speculative_launch_fraction=0.9
        )
        outcome = run_stage(
            feasible_attempt(100.0), faults=faults, recovery=policy
        )
        # Copy would finish at 190 s; straggler at 200 s: copy wins.
        assert outcome.elapsed_s == pytest.approx(190.0)


class TestDecisionPlumbing:
    def test_attempt_counter_and_pressure_reach_the_plan(self):
        faults = ScriptedFaults(
            FaultDecision(kind=FaultKind.PREEMPTION, fraction=0.5)
        )

        def pressure(algorithm, resources):
            return 0.75

        run_stage(
            feasible_attempt(10.0),
            faults=faults,
            recovery=RecoveryPolicy(),
            oom_pressure=pressure,
        )
        assert faults.calls == [
            ("t><t:smj", 0, 0.75),
            ("t><t:smj", 1, 0.75),
        ]
