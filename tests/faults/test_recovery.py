"""Tests for repro.faults.recovery: the recovery policy layer."""

import math

import pytest

from repro.faults.model import FaultError
from repro.faults.recovery import DEFAULT_RECOVERY, RecoveryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        assert DEFAULT_RECOVERY.max_retries == 3
        assert DEFAULT_RECOVERY.degrade_bhj_to_smj

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_cap_s": -1.0},
            {"speculative_threshold": 0.9},
            {"speculative_launch_fraction": 0.0},
            {"speculative_launch_fraction": 1.5},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(FaultError):
            RecoveryPolicy(**kwargs)

    def test_speculation_can_be_disabled_with_inf(self):
        policy = RecoveryPolicy(speculative_threshold=math.inf)
        assert policy.speculative_threshold == math.inf


class TestBackoff:
    def test_exponential_growth(self):
        policy = RecoveryPolicy(
            backoff_base_s=2.0, backoff_factor=2.0, backoff_cap_s=60.0
        )
        assert policy.backoff_s(1) == 2.0
        assert policy.backoff_s(2) == 4.0
        assert policy.backoff_s(3) == 8.0

    def test_cap_applies(self):
        policy = RecoveryPolicy(
            backoff_base_s=10.0, backoff_factor=10.0, backoff_cap_s=50.0
        )
        assert policy.backoff_s(1) == 10.0
        assert policy.backoff_s(2) == 50.0
        assert policy.backoff_s(9) == 50.0

    def test_retry_must_be_positive(self):
        with pytest.raises(FaultError):
            DEFAULT_RECOVERY.backoff_s(0)


class TestRoundTrip:
    def test_round_trip(self):
        policy = RecoveryPolicy(
            max_retries=5,
            backoff_base_s=1.0,
            backoff_factor=3.0,
            backoff_cap_s=30.0,
            degrade_bhj_to_smj=False,
            speculative_threshold=2.5,
            speculative_launch_fraction=0.25,
        )
        assert RecoveryPolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultError):
            RecoveryPolicy.from_dict({"max_retries": 1, "jitter": 0.1})
