"""The replay harness: deterministic traces and honest accounting.

``build_requests`` must be a pure function of its config (the
determinism property suite replays one trace at several worker counts),
and ``replay`` must account for every request exactly once: completed +
rejected == submitted, with rejections counted rather than retried.
"""

import dataclasses

import pytest

from repro.api import RaqoSession
from repro.cluster.trace import (
    bursty_arrival_times,
    poisson_arrival_times,
)
from repro.serving import ReplayConfig, build_requests, replay

import numpy as np


@pytest.fixture(scope="module")
def session(tpch_catalog_sf100):
    return RaqoSession(tpch_catalog_sf100)


class TestArrivalProcesses:
    def test_poisson_arrivals_are_sorted_and_seeded(self):
        rng = np.random.default_rng(3)
        times = poisson_arrival_times(50, 0.01, rng)
        assert len(times) == 50
        assert all(times[i] <= times[i + 1] for i in range(49))
        again = poisson_arrival_times(50, 0.01, np.random.default_rng(3))
        assert np.array_equal(times, again)

    def test_poisson_mean_gap_tracks_the_parameter(self):
        rng = np.random.default_rng(4)
        times = poisson_arrival_times(5000, 0.01, rng)
        mean_gap = float(times[-1]) / 5000
        assert mean_gap == pytest.approx(0.01, rel=0.1)

    def test_bursty_arrivals_alternate_gap_regimes(self):
        rng = np.random.default_rng(5)
        times = bursty_arrival_times(200, 0.001, 0.5, 20, rng)
        gaps = np.diff(times)
        assert (gaps > 0).all()
        # Both regimes must actually occur: tight in-burst gaps and
        # long idle gaps between bursts.
        assert (gaps < 0.01).sum() > 100
        assert (gaps > 0.1).sum() >= 2

    @pytest.mark.parametrize(
        "call",
        [
            lambda rng: poisson_arrival_times(-1, 0.01, rng),
            lambda rng: poisson_arrival_times(5, 0.0, rng),
            lambda rng: bursty_arrival_times(5, 0.0, 0.5, 10, rng),
            lambda rng: bursty_arrival_times(5, 0.001, 0.0, 10, rng),
            lambda rng: bursty_arrival_times(5, 0.001, 0.5, 0, rng),
        ],
    )
    def test_invalid_parameters_raise(self, call):
        with pytest.raises(ValueError):
            call(np.random.default_rng(0))


class TestBuildRequests:
    def test_same_config_same_trace(self, tpch_catalog_sf100):
        config = ReplayConfig(num_requests=40, seed=11)
        first = build_requests(config, catalog=tpch_catalog_sf100)
        second = build_requests(config, catalog=tpch_catalog_sf100)
        assert first == second

    def test_different_seeds_differ(self, tpch_catalog_sf100):
        base = ReplayConfig(num_requests=40, seed=11)
        other = dataclasses.replace(base, seed=12)
        assert build_requests(
            base, catalog=tpch_catalog_sf100
        ) != build_requests(other, catalog=tpch_catalog_sf100)

    def test_trace_shape(self, tpch_catalog_sf100):
        config = ReplayConfig(num_requests=30, num_tenants=3, seed=0)
        requests = build_requests(config, catalog=tpch_catalog_sf100)
        assert [r.request_id for r in requests] == list(range(30))
        assert {r.tenant for r in requests} <= {
            "tenant-0",
            "tenant-1",
            "tenant-2",
        }
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)

    def test_unique_queries_generates_a_bigger_pool(
        self, tpch_catalog_sf100
    ):
        config = ReplayConfig(
            num_requests=40, unique_queries=12, seed=0
        )
        requests = build_requests(config, catalog=tpch_catalog_sf100)
        names = {r.query.name for r in requests}
        # Generated q000... names, not the 4 TPC-H evaluation queries.
        assert all(name.startswith("q") for name in names)
        assert len(names) > 4

    @pytest.mark.parametrize(
        "bad",
        [
            dict(num_requests=0),
            dict(arrival="uniform"),
            dict(num_tenants=0),
            dict(unique_queries=-1),
        ],
    )
    def test_config_validation(self, bad):
        with pytest.raises(ValueError):
            ReplayConfig(**bad)


class TestReplay:
    def test_accounting_adds_up(self, session):
        config = ReplayConfig(num_requests=30, seed=2)
        requests = build_requests(config, catalog=session.catalog)
        with session.serve(workers=2, max_queue=256) as service:
            report = replay(service, requests, label="unit")
        assert report.label == "unit"
        assert report.requests == 30
        assert report.completed + report.rejected == 30
        assert report.rejected == 0
        assert len(report.responses) == report.completed
        assert report.qps > 0
        assert report.latency_ms["p50"] <= report.latency_ms["p95"]
        assert report.latency_ms["p95"] <= report.latency_ms["p99"]
        assert report.latency_ms["p99"] <= report.latency_ms["max"]

    def test_overload_counts_rejections_instead_of_retrying(
        self, session
    ):
        # A 1-deep admission queue against an un-started pool cannot
        # absorb a 10-request trace: overflow must surface as the
        # rejection count (completed + rejected == submitted).
        service = session.serve(workers=1, max_queue=1)
        requests = build_requests(
            ReplayConfig(num_requests=10, seed=3),
            catalog=session.catalog,
        )
        service.start()
        report = replay(service, requests, label="overload")
        service.stop()
        assert report.completed + report.rejected == 10

    def test_json_dict_is_json_serializable(self, session):
        import json

        requests = build_requests(
            ReplayConfig(num_requests=10, seed=4),
            catalog=session.catalog,
        )
        with session.serve(workers=2) as service:
            report = replay(service, requests, label="json")
        payload = report.to_json_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["label"] == "json"
        assert round_tripped["requests"] == 10
        assert set(round_tripped["latency_ms"]) == {
            "p50",
            "p95",
            "p99",
            "mean",
            "max",
        }

    def test_negative_time_scale_rejected(self, session):
        with session.serve(workers=1) as service:
            with pytest.raises(ValueError):
                replay(service, (), time_scale=-1.0)
