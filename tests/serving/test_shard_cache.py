"""The sharded plan cache: LRU semantics and exact counter reconciliation.

The cache's contract (``repro/serving/cache.py``) is that its traffic
counters reconcile *exactly*, even under concurrent hammering:

- every ``lookup`` counts exactly one hit or one miss (``peek`` counts
  nothing);
- ``entries == inserts - evictions == len(cache)`` at every quiescent
  point.

The stress test here aims every thread at a single shard -- the worst
possible lock contention -- and then checks the books balance to the
last count, mirroring ``tests/workloads/test_thread_safety.py``'s
approach to the parallel runner.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serving.cache import ShardedPlanCache


def make_cache(**kwargs):
    metrics = MetricsRegistry()
    cache = ShardedPlanCache(metrics=metrics, **kwargs)
    return cache, metrics


def same_shard_keys(cache, count, shard=0):
    """The first ``count`` keys whose SHA-256 routing lands on ``shard``."""
    keys = []
    index = 0
    while len(keys) < count:
        key = f"key-{index}"
        if cache.shard_index(key) == shard:
            keys.append(key)
        index += 1
    return keys


class TestBasics:
    def test_miss_then_hit(self):
        cache, metrics = make_cache()
        assert cache.lookup("a") is None
        cache.insert("a", "plan-a")
        assert cache.lookup("a") == "plan-a"
        assert metrics.counter("serving.cache.hits").value == 1
        assert metrics.counter("serving.cache.misses").value == 1

    def test_insert_refresh_is_not_a_new_entry(self):
        cache, metrics = make_cache()
        assert cache.insert("a", "v1") is True
        assert cache.insert("a", "v2") is False
        assert cache.lookup("a") == "v2"
        assert metrics.counter("serving.cache.inserts").value == 1
        assert len(cache) == 1

    def test_none_values_are_rejected(self):
        cache, _ = make_cache()
        with pytest.raises(ValueError):
            cache.insert("a", None)

    def test_contains_and_len(self):
        cache, _ = make_cache()
        cache.insert("a", 1)
        cache.insert("b", 2)
        assert "a" in cache and "b" in cache and "c" not in cache
        assert len(cache) == 2

    def test_peek_counts_nothing(self):
        cache, metrics = make_cache()
        cache.insert("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("missing") is None
        assert metrics.counter("serving.cache.hits").value == 0
        assert metrics.counter("serving.cache.misses").value == 0

    def test_hit_rate(self):
        cache, _ = make_cache()
        assert cache.hit_rate == 0.0
        cache.insert("a", 1)
        cache.lookup("a")
        cache.lookup("missing")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedPlanCache(shards=0)
        with pytest.raises(ValueError):
            ShardedPlanCache(shard_capacity=0)


class TestShardRouting:
    def test_routing_is_stable_and_in_range(self):
        cache, _ = make_cache(shards=8)
        for index in range(200):
            key = f"q{index}"
            first = cache.shard_index(key)
            assert 0 <= first < 8
            assert cache.shard_index(key) == first

    def test_routing_spreads_keys(self):
        """SHA-256 routing must not funnel everything into one shard."""
        cache, _ = make_cache(shards=8)
        used = {cache.shard_index(f"q{index}") for index in range(200)}
        assert len(used) == 8


class TestLruEviction:
    def test_capacity_is_per_shard(self):
        cache, metrics = make_cache(shards=4, shard_capacity=2)
        keys = same_shard_keys(cache, 3)
        for key in keys:
            cache.insert(key, key)
        assert len(cache) == 2
        assert metrics.counter("serving.cache.evictions").value == 1
        # The victim was the least recently used (the first inserted).
        assert keys[0] not in cache
        assert keys[1] in cache and keys[2] in cache

    def test_lookup_refreshes_lru_position(self):
        cache, _ = make_cache(shards=4, shard_capacity=2)
        old, mid, new = same_shard_keys(cache, 3)
        cache.insert(old, 1)
        cache.insert(mid, 2)
        cache.lookup(old)  # refresh: ``mid`` becomes the LRU victim
        cache.insert(new, 3)
        assert old in cache and new in cache and mid not in cache

    def test_entries_never_exceed_total_capacity(self):
        cache, _ = make_cache(shards=4, shard_capacity=4)
        for index in range(200):
            cache.insert(f"q{index}", index)
        assert len(cache) <= 16

    def test_clear_counts_every_entry_as_evicted(self):
        cache, metrics = make_cache()
        for index in range(5):
            cache.insert(f"q{index}", index)
        cache.clear()
        assert len(cache) == 0
        assert metrics.counter("serving.cache.evictions").value == 5
        assert metrics.gauge("serving.cache.entries").value == 0.0


class TestSnapshotReconciliation:
    def test_snapshot_reconciles_after_mixed_traffic(self):
        cache, metrics = make_cache(shards=2, shard_capacity=4)
        for index in range(20):
            cache.lookup(f"q{index % 12}")
            cache.insert(f"q{index % 12}", index)
        snap = cache.snapshot()
        assert snap["hits"] + snap["misses"] == 20
        assert snap["entries"] == snap["inserts"] - snap["evictions"]
        assert snap["entries"] == len(cache)
        assert metrics.gauge("serving.cache.entries").value == float(
            len(cache)
        )


@pytest.mark.stress
class TestSingleShardHammer:
    """Many threads, one shard: counters must reconcile exactly."""

    THREADS = 8
    OPS_PER_THREAD = 400

    def test_counters_reconcile_exactly(self):
        cache, metrics = make_cache(shards=4, shard_capacity=8)
        keys = same_shard_keys(cache, 24)
        barrier = threading.Barrier(self.THREADS)

        def hammer(thread_id):
            barrier.wait()
            lookups = 0
            for op in range(self.OPS_PER_THREAD):
                key = keys[(thread_id * 7 + op) % len(keys)]
                if op % 3 == 0:
                    cache.insert(key, (thread_id, op))
                else:
                    cache.lookup(key)
                    lookups += 1
            return lookups

        with ThreadPoolExecutor(max_workers=self.THREADS) as pool:
            lookups = sum(pool.map(hammer, range(self.THREADS)))

        hits = metrics.counter("serving.cache.hits").value
        misses = metrics.counter("serving.cache.misses").value
        inserts = metrics.counter("serving.cache.inserts").value
        evictions = metrics.counter("serving.cache.evictions").value
        entries = metrics.gauge("serving.cache.entries").value

        # Every lookup recorded exactly one of hit/miss -- no drops, no
        # double counts -- and the entry ledger balances to the count.
        assert hits + misses == lookups
        assert inserts - evictions == len(cache)
        assert entries == float(len(cache))
        # All keys target one 8-slot shard: it must sit exactly at
        # capacity after thousands of inserts, and evictions must have
        # happened (the test is not vacuous).
        assert len(cache) == 8
        assert evictions > 0

    def test_concurrent_single_key_insert_storm(self):
        """All threads fighting over one key: one insert, no evictions."""
        cache, metrics = make_cache(shards=4, shard_capacity=8)
        (key,) = same_shard_keys(cache, 1)
        barrier = threading.Barrier(self.THREADS)

        def storm(thread_id):
            barrier.wait()
            fresh = 0
            for op in range(self.OPS_PER_THREAD):
                fresh += cache.insert(key, (thread_id, op))
            return fresh

        with ThreadPoolExecutor(max_workers=self.THREADS) as pool:
            fresh_total = sum(pool.map(storm, range(self.THREADS)))

        assert fresh_total == 1
        assert metrics.counter("serving.cache.inserts").value == 1
        assert metrics.counter("serving.cache.evictions").value == 0
        assert metrics.gauge("serving.cache.entries").value == 1.0
        assert len(cache) == 1
