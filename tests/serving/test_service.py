"""The optimizer service frontend: admission, lifecycle, and batching.

Covers the serving contract that is *not* about determinism (the
property suite pins that): typed backpressure, rejected requests never
being planned, lifecycle rules, the asyncio frontend, cache-path
metadata on responses, and the session-facing metrics wiring.
"""

import asyncio

import pytest

from repro.api import RaqoSession
from repro.planner.plan import plan_signature
from repro.serving import (
    Overloaded,
    PlanRequest,
    ServiceConfig,
)


@pytest.fixture(scope="module")
def session(tpch_catalog_sf100):
    return RaqoSession(tpch_catalog_sf100)


def make_service(session, **knobs):
    return session.serve(**knobs)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "knobs",
        [
            dict(workers=0),
            dict(max_queue=0),
            dict(max_inflight=-1),
            dict(max_batch=0),
        ],
    )
    def test_bad_knobs_raise(self, knobs):
        with pytest.raises(ValueError):
            ServiceConfig(**knobs)

    def test_max_inflight_defaults_to_workers(self):
        assert ServiceConfig(workers=5).effective_max_inflight == 5
        assert (
            ServiceConfig(workers=5, max_inflight=2).effective_max_inflight
            == 2
        )

    def test_serve_rejects_config_plus_knobs(self, session):
        with pytest.raises(ValueError):
            session.serve(ServiceConfig(), workers=3)


class TestAdmissionControl:
    def test_overflow_raises_typed_overloaded(self, session):
        # Submitting before start() exercises admission with the pool
        # stalled: the queue fills deterministically.
        service = make_service(session, max_queue=3)
        for index in range(3):
            service.submit(PlanRequest(request_id=index, query="Q3"))
        with pytest.raises(Overloaded) as excinfo:
            service.submit(PlanRequest(request_id=99, query="Q3"))
        assert excinfo.value.queue_depth == 3
        assert excinfo.value.max_queue == 3
        # Drain cleanly so module-scoped session state stays tidy.
        with service:
            pass

    def test_rejected_request_is_never_planned(self, session):
        service = make_service(session, max_queue=1)
        admitted = service.submit(PlanRequest(request_id=0, query="Q3"))
        with pytest.raises(Overloaded):
            service.submit(PlanRequest(request_id=1, query="Q2"))
        planned_before = session.metrics.counter(
            "planning.queries"
        ).value
        with service:
            admitted.result(timeout=30)
        # Exactly the admitted request got planned; Q2 never entered
        # the pipeline (no future exists for it at all).
        assert (
            session.metrics.counter("planning.queries").value
            == planned_before + 1
        )

    def test_rejections_are_counted(self, session):
        service = make_service(session, max_queue=1)
        before = session.metrics.counter("serving.rejected").value
        service.submit(PlanRequest(request_id=0, query="Q3"))
        for _ in range(3):
            with pytest.raises(Overloaded):
                service.submit(PlanRequest(request_id=1, query="Q3"))
        assert (
            session.metrics.counter("serving.rejected").value
            == before + 3
        )
        with service:
            pass

    def test_unknown_query_rejected_before_admission(self, session):
        service = make_service(session, max_queue=1)
        with pytest.raises(KeyError):
            service.submit(PlanRequest(request_id=0, query="Q99"))
        # The malformed request consumed no queue space.
        service.submit(PlanRequest(request_id=1, query="Q3"))
        with service:
            pass


class TestLifecycle:
    def test_start_is_idempotent_and_stop_is_final(self, session):
        service = make_service(session, workers=1)
        assert service.start() is service
        assert service.start() is service
        service.stop()
        service.stop()  # also idempotent
        with pytest.raises(RuntimeError):
            service.start()
        with pytest.raises(RuntimeError):
            service.submit(PlanRequest(request_id=0, query="Q3"))

    def test_stop_drains_the_backlog_first(self, session):
        service = make_service(session, workers=2)
        futures = [
            service.submit(PlanRequest(request_id=index, query="Q3"))
            for index in range(6)
        ]
        with service:
            pass  # __exit__ -> stop(): sentinels queue behind the backlog
        for future in futures:
            assert future.result(timeout=0).result is not None

    def test_stop_before_start_fails_pending_futures(self, session):
        # submit-before-start is supported, so stop-before-start must
        # not strand the queued futures: no pool will ever drain them.
        service = make_service(session, workers=1)
        future = service.submit(PlanRequest(request_id=0, query="Q3"))
        service.stop()
        with pytest.raises(RuntimeError, match="before start"):
            future.result(timeout=0)
        with pytest.raises(RuntimeError):
            service.submit(PlanRequest(request_id=1, query="Q3"))
        with pytest.raises(RuntimeError):
            service.start()

    def test_context_manager_roundtrip(self, session):
        with make_service(session, workers=2) as service:
            response = service.plan("Q12", tenant="analytics")
        assert response.request.tenant == "analytics"
        assert response.result.query.name == "Q12"


class TestServingPaths:
    def test_plan_matches_direct_session_plan(self, session):
        direct = session.plan("Q3")
        with make_service(session, workers=2) as service:
            served = service.plan("Q3").result
        assert plan_signature(served.plan) == plan_signature(direct.plan)
        assert served.cost == direct.cost

    def test_repeat_requests_hit_the_cross_tenant_cache(self, session):
        with make_service(session, workers=1) as service:
            first = service.plan("Q2", tenant="tenant-a")
            second = service.plan("Q2", tenant="tenant-b")
        assert not first.cache_hit
        assert second.cache_hit
        # Cross-tenant: the hit came from another tenant's plan.
        assert second.result is first.result

    def test_batched_duplicates_coalesce_to_one_plan(self, session):
        service = make_service(session, workers=1, max_batch=8)
        planned_before = session.metrics.counter(
            "planning.queries"
        ).value
        futures = [
            service.submit(
                PlanRequest(request_id=index, query="All")
            )
            for index in range(5)
        ]
        with service:
            responses = [f.result(timeout=30) for f in futures]
        assert (
            session.metrics.counter("planning.queries").value
            == planned_before + 1
        )
        assert sum(1 for r in responses if r.coalesced) == 4
        signatures = {
            plan_signature(r.result.plan) for r in responses
        }
        assert len(signatures) == 1

    def test_cache_disabled_plans_every_time(self, session):
        planned_before = session.metrics.counter(
            "planning.queries"
        ).value
        with make_service(
            session, workers=1, cache_enabled=False
        ) as service:
            assert service.cache is None
            first = service.plan("Q3")
            second = service.plan("Q3")
        assert not first.cache_hit and not second.cache_hit
        assert (
            session.metrics.counter("planning.queries").value
            == planned_before + 2
        )

    def test_response_metadata_is_populated(self, session):
        with make_service(session, workers=1) as service:
            response = service.plan("Q12")
        assert response.batch_size >= 1
        assert response.latency_ms >= response.queue_ms >= 0.0

    def test_coalesced_counter_matches_responses(self, session):
        # serving.coalesced must count batch-dedup riders too, not just
        # single-flight attachers, so it reconciles with the responses.
        service = make_service(session, workers=1, max_batch=8)
        before = session.metrics.counter("serving.coalesced").value
        futures = [
            service.submit(PlanRequest(request_id=index, query="Q12"))
            for index in range(5)
        ]
        with service:
            responses = [f.result(timeout=30) for f in futures]
        coalesced = sum(1 for r in responses if r.coalesced)
        assert coalesced == 4
        assert (
            session.metrics.counter("serving.coalesced").value
            == before + coalesced
        )

    def test_cache_key_excludes_tenant(self, session):
        service = make_service(session)
        query = session.resolve_query("Q3")
        key = service.cache_key(query)
        assert "Q3" in key
        assert "tenant" not in key
        service.stop()

    def test_same_name_different_structure_do_not_collide(self, session):
        from repro.catalog.queries import Query

        # Generated workloads name everything q000..qNNN, so two
        # tenants easily submit *different* queries under one name; the
        # structural fingerprint in the cache key keeps them apart.
        join_a = Query(name="dup", tables=("orders", "lineitem"))
        join_b = Query(name="dup", tables=("customer", "orders"))
        with make_service(session, workers=1) as service:
            assert service.cache_key(join_a) != service.cache_key(join_b)
            first = service.plan(join_a, tenant="tenant-a")
            second = service.plan(join_b, tenant="tenant-b")
        assert not second.cache_hit
        assert first.result.query.tables == ("orders", "lineitem")
        assert second.result.query.tables == ("customer", "orders")

    def test_same_name_different_filters_do_not_collide(self, session):
        query = session.resolve_query("Q12")
        filtered = query.with_filter("orders", 0.3)
        service = make_service(session)
        assert service.cache_key(query) != service.cache_key(filtered)
        service.stop()


class TestErrorPropagation:
    def test_planner_failure_reaches_every_waiter(self, session):
        from repro.catalog.queries import Query, QueryError

        # A Query object passes submit-time resolution but references
        # tables the catalog does not have, so the optimizer run itself
        # fails; the exception must land on every attached future and
        # be counted, without wedging the worker pool.
        bad = Query(name="bogus", tables=("no_such_a", "no_such_b"))
        service = make_service(session, workers=1, max_batch=8)
        errors_before = session.metrics.counter("serving.errors").value
        futures = [
            service.submit(PlanRequest(request_id=index, query=bad))
            for index in range(3)
        ]
        with service:
            for future in futures:
                with pytest.raises(QueryError):
                    future.result(timeout=30)
            # The pool survived the failure and still serves plans.
            assert service.plan("Q3").result is not None
        assert (
            session.metrics.counter("serving.errors").value
            == errors_before + 3
        )

    def test_failed_key_is_not_cached(self, session):
        from repro.catalog.queries import Query, QueryError

        bad = Query(name="bogus2", tables=("no_such_a", "no_such_b"))
        with make_service(session, workers=1) as service:
            with pytest.raises(QueryError):
                service.submit(
                    PlanRequest(request_id=0, query=bad)
                ).result(timeout=30)
            key = service.cache_key(bad)
            assert key not in service.cache


class TestAsyncFrontend:
    def test_plan_async_roundtrip(self, session):
        async def drive(service):
            return await service.plan_async(
                PlanRequest(request_id=0, query="Q3", tenant="aio")
            )

        with make_service(session, workers=2) as service:
            response = asyncio.run(drive(service))
        assert response.result.query.name == "Q3"
        assert response.request.tenant == "aio"

    def test_concurrent_async_requests(self, session):
        async def drive(service):
            requests = [
                PlanRequest(request_id=index, query=name)
                for index, name in enumerate(
                    ["Q3", "Q2", "Q12", "All", "Q3", "Q2"]
                )
            ]
            return await asyncio.gather(
                *(service.plan_async(r) for r in requests)
            )

        with make_service(session, workers=4) as service:
            responses = asyncio.run(drive(service))
        assert [r.result.query.name for r in responses] == [
            "Q3",
            "Q2",
            "Q12",
            "All",
            "Q3",
            "Q2",
        ]


class TestMetricsWiring:
    def test_serving_metrics_land_in_session_snapshot(
        self, tpch_catalog_sf100
    ):
        session = RaqoSession(tpch_catalog_sf100)
        with session.serve(workers=2) as service:
            service.plan("Q3")
            service.plan("Q3")
        snapshot = session.metrics_snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        assert counters["serving.completed"] == 2
        assert counters["serving.admitted"] == 2
        assert counters["serving.cache.misses"] == 1
        assert counters["serving.cache.hits"] == 1
        assert counters["serving.cache.inserts"] == 1
        assert gauges["serving.cache.entries"] == 1.0
        assert "serving.latency_ms" in snapshot["histograms"]
