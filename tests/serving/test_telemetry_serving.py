"""Serving-side telemetry: per-tenant series, events, SLOs, replay rows.

The service must narrate its own behaviour into the telemetry plane --
admissions, rejections, coalesces, per-tenant latency -- and the replay
harness must fold the same story into per-tenant report rows.
"""

import pytest

from repro.api import RaqoSession
from repro.obs.slo import SloPolicy
from repro.serving import (
    Overloaded,
    PlanRequest,
    ReplayConfig,
    ServiceConfig,
    build_requests,
    replay,
)
from repro.serving.replay import _tenant_rows


@pytest.fixture()
def session(tpch_catalog_sf100):
    return RaqoSession(tpch_catalog_sf100)


def _drive(service, count=8, tenants=2):
    names = ("Q3", "Q12", "Q2")
    with service:
        futures = [
            service.submit(
                PlanRequest(
                    request_id=index,
                    query=names[index % len(names)],
                    tenant=f"tenant-{index % tenants}",
                )
            )
            for index in range(count)
        ]
        return [future.result() for future in futures]


class TestPerTenantSeries:
    def test_admission_and_completion_series(self, session):
        service = session.serve(workers=2)
        _drive(service, count=8, tenants=2)
        snap = session.telemetry_snapshot()
        counters = snap["counters"]
        admitted = sum(
            series["total"]
            for name, series in counters.items()
            if name.startswith("serving.tenant.admitted")
        )
        completed = sum(
            series["total"]
            for name, series in counters.items()
            if name.startswith("serving.tenant.completed")
        )
        assert admitted == 8
        assert completed == 8
        assert 'serving.tenant.admitted{tenant="tenant-0"}' in counters

    def test_latency_histogram_per_tenant(self, session):
        service = session.serve(workers=1)
        _drive(service, count=4, tenants=2)
        histograms = session.telemetry_snapshot()["histograms"]
        series = histograms[
            'serving.tenant.latency_ms{tenant="tenant-1"}'
        ]
        assert series["summary"]["count"] == 2.0
        assert series["summary"]["p50"] > 0.0

    def test_admission_events_carry_tenants(self, session):
        service = session.serve(workers=1)
        _drive(service, count=4, tenants=2)
        events = session.telemetry.events.events()
        admissions = [e for e in events if e.name == "admission"]
        assert len(admissions) == 4
        assert {e.tenant for e in admissions} == {
            "tenant-0",
            "tenant-1",
        }


class TestSloWiring:
    def test_service_tracks_slo_and_emits_burn(self, session):
        config = ServiceConfig(
            workers=1,
            slo=SloPolicy(
                latency_target_ms=0.0, window=8, min_samples=2
            ),
        )
        service = session.serve(config)
        _drive(service, count=6, tenants=2)
        counts = session.telemetry.events.counts()
        # Target 0 ms: every request violates, both tenants burn.
        assert counts["slo_burn"] == 2
        statuses = service.slo.statuses()
        assert [s.tenant for s in statuses] == ["tenant-0", "tenant-1"]
        assert all(s.alerting for s in statuses)

    def test_no_slo_by_default(self, session):
        service = session.serve(workers=1)
        assert service.slo is None
        _drive(service, count=2)
        assert "slo_burn" not in session.telemetry.events.counts()


class TestExposition:
    def test_service_exposition_parses_and_reports_tenants(
        self, session
    ):
        from repro.obs.prometheus import parse_exposition

        service = session.serve(
            ServiceConfig(
                workers=2,
                slo=SloPolicy(
                    latency_target_ms=0.0, window=8, min_samples=2
                ),
            )
        )
        _drive(service, count=8, tenants=2)
        parsed = parse_exposition(service.exposition())
        assert (
            parsed.value(
                "raqo_serving_tenant_completed_total",
                tenant="tenant-0",
            )
            == 4.0
        )
        assert (
            parsed.value("raqo_slo_alerting", tenant="tenant-1") == 1.0
        )


class TestReplayTenantRows:
    def test_rows_reconcile_with_totals(self, session):
        service = session.serve(workers=2)
        config = ReplayConfig(num_requests=30, num_tenants=3, seed=1)
        requests = build_requests(config, catalog=session.catalog)
        with service:
            report = replay(service, requests)
        assert report.completed == 30
        assert [row["tenant"] for row in report.tenants] == sorted(
            row["tenant"] for row in report.tenants
        )
        assert (
            sum(row["completed"] for row in report.tenants)
            == report.completed
        )
        assert (
            sum(row["rejected"] for row in report.tenants)
            == report.rejected
        )
        assert (
            sum(row["cache_hits"] for row in report.tenants)
            == report.cache_hits
        )
        for row in report.tenants:
            quantiles = row["latency_ms"]
            assert quantiles["p50"] <= quantiles["p95"] <= quantiles["max"]

    def test_rows_survive_json_round_trip(self, session):
        import json

        service = session.serve(workers=1)
        config = ReplayConfig(num_requests=10, num_tenants=2)
        requests = build_requests(config, catalog=session.catalog)
        with service:
            report = replay(service, requests)
        payload = json.loads(json.dumps(report.to_json_dict()))
        assert len(payload["tenants"]) == len(report.tenants)
        assert payload["tenants"][0]["tenant"] == "tenant-0"

    def test_rejected_only_tenant_still_gets_a_row(self):
        rows = _tenant_rows([], {"ghost": 3})
        assert rows == (
            {
                "tenant": "ghost",
                "completed": 0,
                "rejected": 3,
                "cache_hits": 0,
                "coalesced": 0,
                "latency_ms": {
                    "p50": 0.0,
                    "p95": 0.0,
                    "p99": 0.0,
                    "mean": 0.0,
                    "max": 0.0,
                },
            },
        )

    def test_rejections_emit_events_and_counters(self, session):
        service = session.serve(
            ServiceConfig(workers=1, max_queue=1, max_inflight=1)
        )
        rejected = 0
        with service:
            futures = []
            for index in range(12):
                try:
                    futures.append(
                        service.submit(
                            PlanRequest(
                                request_id=index,
                                query="Q3",
                                tenant="burst",
                            )
                        )
                    )
                except Overloaded:
                    rejected += 1
            for future in futures:
                future.result()
        counts = session.telemetry.events.counts()
        assert counts.get("rejection", 0) == rejected
        if rejected:
            counters = session.telemetry_snapshot()["counters"]
            series = counters['serving.tenant.rejected{tenant="burst"}']
            assert series["total"] == rejected
