"""Round-trip tests for the stable facade, :mod:`repro.api`."""

import json
import math

import pytest

from repro.api import RaqoSession, RunResult
from repro.catalog import tpch
from repro.cluster.cluster import ClusterConditions
from repro.faults.model import FaultPlan, FaultSpec
from repro.obs.tracing import Tracer
from repro.planner.cost_interface import PlanningResult


@pytest.fixture(scope="module")
def session():
    return RaqoSession(scale_factor=100)


class TestConstruction:
    def test_defaults_build_the_paper_world(self, session):
        assert session.cluster.max_containers == 100
        assert session.cluster.max_container_gb == 10.0
        assert session.catalog.table_names

    def test_top_level_reexport(self):
        import repro

        assert repro.RaqoSession is RaqoSession
        assert repro.RunResult is RunResult

    def test_custom_cluster_is_respected(self):
        cluster = ClusterConditions(
            max_containers=8, max_container_gb=4.0
        )
        session = RaqoSession(cluster=cluster)
        assert session.cluster is cluster
        assert session.planner.cluster is cluster

    def test_config_is_keyword_only(self):
        with pytest.raises(TypeError):
            RaqoSession(None, tpch.tpch_catalog(1), None, 7)


class TestQueryResolution:
    def test_accepts_tpch_names(self, session):
        query = session.resolve_query("Q3")
        assert query.name == "Q3"

    def test_accepts_query_objects(self, session):
        query = tpch.EVALUATION_QUERIES[0]
        assert session.resolve_query(query) is query

    def test_unknown_name_lists_known_queries(self, session):
        with pytest.raises(KeyError, match="Q3"):
            session.resolve_query("Q99")


class TestVerbs:
    def test_plan_returns_planning_result(self, session):
        result = session.plan("Q3")
        assert isinstance(result, PlanningResult)
        assert math.isfinite(result.cost.time_s)

    def test_run_round_trip(self, session):
        result = session.run("Q3")
        assert isinstance(result, RunResult)
        assert result.query.name == "Q3"
        assert result.execution.feasible
        assert math.isfinite(result.prediction_error)

    def test_run_with_fault_spec_string(self, session):
        result = session.run("Q12", faults="seed=3,oom=0.3,preempt=0.2")
        assert result.execution.feasible
        # The default recovery policy kicks in when faults are given,
        # so injected faults surface as retries/degradations -- never
        # as an unexecutable plan.
        counters = session.metrics_snapshot()["counters"]
        assert counters["execution.runs"] >= 1

    def test_run_accepts_prebuilt_fault_plans(self, session):
        plan = FaultPlan(FaultSpec.parse("seed=3,oom=0.3"))
        spec_result = session.run("Q12", faults=FaultSpec.parse("seed=3,oom=0.3"))
        plan_result = session.run("Q12", faults=plan)
        assert (
            spec_result.execution.time_s == plan_result.execution.time_s
        )

    def test_workload_round_trip(self, session):
        report = session.workload(["Q3", "Q12"], parallel=2, label="batch")
        assert report.label == "batch"
        assert [o.query.name for o in report.outcomes] == ["Q3", "Q12"]

    def test_workload_process_pool(self, session):
        threaded = session.workload(["Q3", "Q12"], parallel=2)
        sharded = session.workload(["Q3", "Q12"], processes=2)
        assert [o.query.name for o in sharded.outcomes] == ["Q3", "Q12"]
        assert sharded.total_dollars == threaded.total_dollars

    def test_workload_rejects_threads_and_processes(self, session):
        with pytest.raises(ValueError, match="not both"):
            session.workload(["Q3"], parallel=2, processes=2)

    def test_explain_renders_text(self, session):
        text = session.explain("Q3")
        assert "Q3" in text


class TestMetrics:
    def test_planning_and_execution_counters_accumulate(self):
        session = RaqoSession(scale_factor=100)
        session.run("Q3")
        snap = session.metrics_snapshot()
        counters = snap["counters"]
        assert counters["planning.queries"] == 1
        assert counters["execution.runs"] == 1
        assert counters["planning.resource_iterations"] > 0
        assert snap["histograms"]["planning.wall_ms"]["count"] == 1.0

    def test_cost_error_histogram_is_recorded(self):
        session = RaqoSession(scale_factor=100)
        session.run("Q3")
        errors = session.metrics_snapshot()["histograms"][
            "execution.cost_error_rel"
        ]
        assert errors["count"] >= 1.0
        assert errors["max"] < 10.0  # sanity: same cost model underneath

    def test_workload_counters_accumulate(self):
        session = RaqoSession(scale_factor=100)
        session.workload(["Q3", "Q12"])
        counters = session.metrics_snapshot()["counters"]
        assert counters["workload.batches"] == 1
        assert counters["workload.queries"] == 2

    def test_batch_metrics_are_recorded(self):
        session = RaqoSession(scale_factor=100)
        session.plan("Q3")
        snap = session.metrics_snapshot()
        assert snap["counters"]["planner.batched_calls"] > 0
        sizes = snap["histograms"]["planner.batch_size"]
        assert sizes["count"] > 0
        assert sizes["max"] >= sizes["min"] > 0


class TestTracedSession:
    def test_traced_session_exports_everywhere(self, tmp_path):
        session = RaqoSession(scale_factor=100, tracer=Tracer(seed=9))
        session.run("Q3")
        trace_path = session.write_trace(tmp_path / "trace.json")
        payload = json.loads(trace_path.read_text())
        assert payload["traceEvents"]
        count = session.write_spans(tmp_path / "spans.jsonl")
        assert count == len(session.tracer.spans())
        written = session.write_trace_dir(tmp_path / "bundle")
        assert set(written) >= {"trace", "spans", "report", "metrics"}
        assert "execution.runs = 1" in session.report()

    def test_untraced_session_still_reports(self):
        session = RaqoSession(scale_factor=100)
        session.run("Q3")
        report = session.report()
        assert "(no spans recorded)" in report
        assert "execution.runs" in report

    def test_tracer_is_shared_with_planner(self):
        tracer = Tracer(seed=1)
        session = RaqoSession(scale_factor=100, tracer=tracer)
        assert session.planner.tracer is tracer
        session.plan("Q3")
        assert any(
            span.name == "plan" for span in tracer.spans()
        )
