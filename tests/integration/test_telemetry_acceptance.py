"""Acceptance: the telemetry plane end to end, as the issue specifies.

One session plans, executes (with faults), serves a replay under an
SLO, and exports everything -- the stats file must be valid Prometheus
exposition, the event log must contain per-tenant SLO burn events and
harvested engine fault events, and the drift monitor must see the
session's cost-error stream.
"""

import json

import pytest

from repro.api import RaqoSession
from repro.obs.prometheus import parse_exposition
from repro.obs.slo import SloPolicy
from repro.obs.tracing import Tracer
from repro.serving import ReplayConfig, ServiceConfig, build_requests, replay


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("telemetry")
    session = RaqoSession(scale_factor=10, tracer=Tracer())
    # Simulated executions (with faults, so span harvesting has fault
    # events to lift) feed the sim-clock series and the drift monitor.
    session.run("Q3", faults="seed=7,oom=0.9,preempt=0.5")
    session.run("Q12", faults="seed=4,oom=0.9,straggle=0.5")
    # A served replay under an unmeetable SLO feeds the wall-clock
    # series and burns every tenant's error budget.
    service = session.serve(
        ServiceConfig(
            workers=2,
            slo=SloPolicy(
                latency_target_ms=0.0, window=10, min_samples=2
            ),
        )
    )
    config = ReplayConfig(num_requests=24, num_tenants=3, seed=0)
    requests = build_requests(config, catalog=session.catalog)
    with service:
        report = replay(service, requests)
    stats_path = tmp_path / "stats.prom"
    events_path = tmp_path / "events.jsonl"
    session.write_stats_file(stats_path)
    count = session.write_events(events_path)
    return session, report, stats_path, events_path, count


class TestStatsFile:
    def test_is_valid_prometheus_exposition(self, exported):
        _, report, stats_path, _, _ = exported
        parsed = parse_exposition(
            stats_path.read_text(encoding="utf-8")
        )
        assert (
            parsed.value("raqo_serving_completed_total")
            == report.completed
        )

    def test_covers_both_clock_domains(self, exported):
        _, _, stats_path, _, _ = exported
        parsed = parse_exposition(
            stats_path.read_text(encoding="utf-8")
        )
        names = {sample.name for sample in parsed.samples}
        # Sim-clock execution series and wall-clock serving series.
        assert "raqo_execution_stages_total" in names
        assert "raqo_serving_tenant_latency_ms_count" in names
        # SLO state rode along.
        assert "raqo_slo_burn_rate" in names

    def test_per_tenant_label_sets(self, exported):
        _, _, stats_path, _, _ = exported
        parsed = parse_exposition(
            stats_path.read_text(encoding="utf-8")
        )
        tenants = {
            sample.labels_dict["tenant"]
            for sample in parsed.series(
                "raqo_serving_tenant_completed_total"
            )
        }
        assert tenants == {"tenant-0", "tenant-1", "tenant-2"}


class TestEventLog:
    @staticmethod
    def _events(events_path):
        return [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]

    def test_written_count_matches_lines(self, exported):
        _, _, _, events_path, count = exported
        assert len(self._events(events_path)) == count > 0

    def test_slo_burn_events_per_tenant(self, exported):
        _, _, _, events_path, _ = exported
        burns = [
            event
            for event in self._events(events_path)
            if event["name"] == "slo_burn"
        ]
        # Target 0 ms: every tenant burns its budget exactly once.
        assert sorted(event["tenant"] for event in burns) == [
            "tenant-0",
            "tenant-1",
            "tenant-2",
        ]

    def test_engine_fault_events_are_harvested(self, exported):
        _, _, _, events_path, _ = exported
        events = self._events(events_path)
        harvested = [
            event
            for event in events
            if event["clock"] == "sim" and event["span_id"]
        ]
        assert harvested, "no span-harvested events in the log"
        names = {event["name"] for event in events}
        # The fault plans above inject OOMs deterministically.
        assert "fault" in names

    def test_admissions_recorded(self, exported):
        _, report, _, events_path, _ = exported
        admissions = [
            event
            for event in self._events(events_path)
            if event["name"] == "admission"
        ]
        assert len(admissions) == report.completed


class TestDriftMonitor:
    def test_saw_the_cost_error_stream(self, exported):
        session = exported[0]
        status = session.telemetry.drift.status()
        assert status.observations > 0

    def test_windowed_cost_errors_recorded(self, exported):
        session = exported[0]
        histograms = session.telemetry_snapshot(clock="sim")[
            "histograms"
        ]
        assert (
            histograms["execution.cost_error_rel"]["summary"]["count"]
            > 0
        )


class TestWriteEventsIdempotence:
    def test_second_export_does_not_duplicate_harvest(
        self, exported, tmp_path
    ):
        session, _, _, events_path, count = exported
        again = tmp_path / "events2.jsonl"
        assert session.write_events(again) == count
        assert (
            again.read_text().splitlines()
            == events_path.read_text().splitlines()
        )
