"""End-to-end integration tests across the whole stack.

These exercise the full pipeline the paper describes: catalog ->
cost-model training -> joint planning -> simulated execution -> metrics,
plus the headline comparison (RAQO beats the two-step baseline when both
plans are executed on the simulated engine).
"""

import pytest

from repro.catalog import tpch
from repro.catalog.random_schema import (
    RandomSchemaConfig,
    random_catalog,
    random_query,
)
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.core.cost_model import SimulatorCostModel
from repro.core.raqo import (
    DEFAULT_QO_RESOURCES,
    PlannerKind,
    RaqoPlanner,
)
from repro.engine.dataflow import plan_to_dag
from repro.engine.executor import execute_plan
from repro.engine.profiles import HIVE_PROFILE


@pytest.fixture(scope="module")
def catalog():
    return tpch.tpch_catalog(100)


@pytest.fixture(scope="module")
def estimator(catalog):
    return StatisticsEstimator(catalog)


class TestRaqoBeatsBaseline:
    """The paper's headline: joint optimization wins end to end."""

    @pytest.mark.parametrize(
        "query", tpch.EVALUATION_QUERIES, ids=lambda q: q.name
    )
    def test_simulated_execution_improves(
        self, catalog, estimator, query
    ):
        raqo = RaqoPlanner(
            catalog, cost_model=SimulatorCostModel(HIVE_PROFILE)
        )
        baseline = RaqoPlanner.two_step_baseline(
            catalog, cost_model=SimulatorCostModel(HIVE_PROFILE)
        )
        raqo_run = execute_plan(
            raqo.optimize(query).plan,
            estimator,
            HIVE_PROFILE,
            default_resources=DEFAULT_QO_RESOURCES,
        )
        baseline_run = execute_plan(
            baseline.optimize(query).plan,
            estimator,
            HIVE_PROFILE,
            default_resources=DEFAULT_QO_RESOURCES,
        )
        assert raqo_run.feasible
        assert raqo_run.time_s <= baseline_run.time_s * 1.01

    def test_oracle_prediction_matches_execution(
        self, catalog, estimator
    ):
        """With the simulator-backed cost model, predicted plan time
        equals executed plan time exactly."""
        planner = RaqoPlanner(
            catalog, cost_model=SimulatorCostModel(HIVE_PROFILE)
        )
        result = planner.optimize(tpch.QUERY_Q3)
        run = execute_plan(result.plan, estimator, HIVE_PROFILE)
        assert run.time_s == pytest.approx(result.cost.time_s)


class TestPlannerAgreement:
    def test_selinger_and_randomized_agree_on_small_queries(
        self, catalog
    ):
        """On small TPC-H queries, the randomized planner should land
        within a small factor of the DP optimum."""
        selinger = RaqoPlanner.default(catalog)
        randomized = RaqoPlanner(
            catalog,
            planner_kind=PlannerKind.FAST_RANDOMIZED,
            randomized_iterations=10,
        )
        for query in (tpch.QUERY_Q12, tpch.QUERY_Q3, tpch.QUERY_Q2):
            dp = selinger.optimize(query)
            rnd = randomized.optimize(query)
            assert rnd.cost.time_s <= dp.cost.time_s * 1.25


class TestFullPipelineOnRandomSchema:
    def test_plan_execute_random_schema(self, rng):
        catalog = random_catalog(RandomSchemaConfig(num_tables=12), rng)
        query = random_query(catalog, 6, rng)
        planner = RaqoPlanner(
            catalog,
            planner_kind=PlannerKind.FAST_RANDOMIZED,
            randomized_iterations=3,
        )
        result = planner.optimize(query)
        run = execute_plan(
            result.plan,
            StatisticsEstimator(catalog),
            HIVE_PROFILE,
            default_resources=DEFAULT_QO_RESOURCES,
        )
        assert run.feasible
        assert run.time_s > 0

    def test_plan_lowering_to_dag(self, catalog, estimator):
        planner = RaqoPlanner.default(catalog)
        result = planner.optimize(tpch.QUERY_ALL)
        dag = plan_to_dag(result.plan, estimator, HIVE_PROFILE)
        # 7 joins -> 14 stages, all wired acyclically.
        assert len(dag) == 14
        assert dag.total_tasks > 0


class TestAdaptiveFlow:
    def test_shrinking_cluster_increases_predicted_time(self, catalog):
        planner = RaqoPlanner.default(catalog)
        costs = []
        for max_nc, max_gb in ((100, 10.0), (20, 4.0), (5, 2.0)):
            result = planner.replan(
                tpch.QUERY_Q3,
                ClusterConditions(
                    max_containers=max_nc, max_container_gb=max_gb
                ),
            )
            costs.append(result.cost.time_s)
        assert costs[0] <= costs[1] <= costs[2]

    def test_replanned_resources_respect_envelope(self, catalog):
        planner = RaqoPlanner.default(catalog)
        cluster = ClusterConditions(
            max_containers=7, max_container_gb=3.0
        )
        result = planner.replan(tpch.QUERY_Q2, cluster)
        for join in result.plan.joins_postorder():
            assert cluster.contains(join.resources)
