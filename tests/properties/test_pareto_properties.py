"""Properties of the Pareto-frontier resource search.

The frontier (:mod:`repro.core.pareto`) is advertised as *exact* and
*deterministic*: every point is mutually non-dominated, the whole
frontier is a pure function of (plan, grid, cost model) -- byte-identical
across 1/2/8 thread workers and across a process boundary -- and the
objective selectors reduce to brute-force reference computations.  The
``weighted(w)`` objective is additionally the migration safety net for
the deprecated ``money_weight=`` knob: plans, exact cost floats, and
canonical span trees must be bit-identical between the two spellings.
"""

import dataclasses
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro.catalog import tpch
from repro.cluster.cluster import ClusterConditions
from repro.core.pareto import PlanObjective
from repro.core.raqo import RaqoPlanner, ResourcePlanningMethod
from repro.obs.export import canonical_span_tree_json
from repro.obs.tracing import Tracer
from repro.planner.cost_interface import frontier as exact_frontier
from repro.planner.plan import plan_signature
from repro.workloads.runner import _process_pool_context

#: A mid-sized grid: large enough for multi-point frontiers on every
#: query, small enough that the property sweep stays fast.
CLUSTER = ClusterConditions(max_containers=16, max_container_gb=6.0)

#: Queries swept (the 7-join "All" query's exact frontier has tens of
#: thousands of points on this grid -- correct, but too slow to sweep
#: in a property suite; the three-or-fewer-join queries cover the
#: single-stage, two-stage, and fold paths).
QUERY_NAMES = ("Q12", "Q3", "Q2")


def _queries():
    by_name = {q.name: q for q in tpch.EVALUATION_QUERIES}
    return [by_name[name] for name in QUERY_NAMES]


def _pareto_planner(catalog, objective=None):
    return RaqoPlanner(
        catalog,
        cluster=CLUSTER,
        resource_method=ResourcePlanningMethod.BRUTE_FORCE,
        objective=objective or PlanObjective.pareto(),
    )


def _frontier_bytes(result) -> bytes:
    """The frontier as exact bytes: float hex + per-stage allocations."""
    parts = []
    for point in result.frontier.points:
        parts.append(point.time_s.hex())
        parts.append(point.money.hex())
        for config in point.configs:
            parts.append(
                f"{config.num_containers}x{config.container_gb.hex()}"
            )
    return "|".join(parts).encode("ascii")


def _child_frontier(catalog, kwargs, query) -> bytes:
    """Optimize in a worker process; returns the frontier's bytes."""
    planner = RaqoPlanner(catalog, **kwargs)
    return _frontier_bytes(planner.optimize(query))


class TestFrontierShape:
    def test_points_mutually_non_dominated(self, catalog):
        planner = _pareto_planner(catalog)
        for query in _queries():
            points = planner.optimize(query).frontier.points
            assert len(points) >= 2
            for a in points:
                for b in points:
                    assert not a.cost.dominates(b.cost)

    def test_sorted_and_strictly_improving(self, catalog):
        planner = _pareto_planner(catalog)
        for query in _queries():
            points = planner.optimize(query).frontier.points
            for earlier, later in zip(points, points[1:]):
                assert earlier.time_s < later.time_s
                assert earlier.money > later.money

    def test_frontier_is_its_own_exact_frontier(self, catalog):
        """Re-running the scalar reference must be the identity."""
        planner = _pareto_planner(catalog)
        for query in _queries():
            points = planner.optimize(query).frontier.points
            entries = [(p, p.cost) for p in points]
            assert exact_frontier(entries) == entries

    def test_configs_cover_every_stage(self, catalog):
        planner = _pareto_planner(catalog)
        for query in _queries():
            result = planner.optimize(query)
            joins = list(result.plan.joins_postorder())
            for point in result.frontier.points:
                assert len(point.configs) == len(joins)


class TestFrontierDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_byte_identical_across_worker_counts(self, catalog, workers):
        planner = _pareto_planner(catalog)
        serial = {
            q.name: _frontier_bytes(planner.optimize(q))
            for q in _queries()
        }
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {
                q.name: pool.submit(
                    lambda query: _frontier_bytes(
                        planner.clone().optimize(query)
                    ),
                    q,
                )
                for q in _queries()
            }
            for name, future in futures.items():
                assert future.result() == serial[name]

    def test_byte_identical_serial_vs_process(self, catalog):
        planner = _pareto_planner(catalog)
        kwargs = planner.picklable_init_kwargs()
        serial = {
            q.name: _frontier_bytes(planner.optimize(q))
            for q in _queries()
        }
        with ProcessPoolExecutor(
            max_workers=2, mp_context=_process_pool_context()
        ) as pool:
            futures = {
                q.name: pool.submit(_child_frontier, catalog, kwargs, q)
                for q in _queries()
            }
            for name, future in futures.items():
                assert future.result() == serial[name]


class TestObjectiveSelection:
    def test_latency_bounded_equals_bruteforce_filter_argmin(
        self, catalog
    ):
        planner = _pareto_planner(catalog)
        for query in _queries():
            points = planner.optimize(query).frontier.points
            times = [p.time_s for p in points]
            budgets = (
                [t for t in times]
                + [(a + b) / 2 for a, b in zip(times, times[1:])]
                + [times[0] / 2, times[-1] * 2]
            )
            for budget in budgets:
                frontier = planner.optimize(query).frontier
                chosen = PlanObjective.latency_bounded(budget).select(
                    frontier
                )
                feasible = [p for p in points if p.time_s <= budget]
                if feasible:
                    expected = min(feasible, key=lambda p: p.money)
                else:
                    expected = points[0]  # unattainable -> fastest
                assert chosen == expected

    def test_cheapest_and_fastest_are_the_endpoints(self, catalog):
        planner = _pareto_planner(catalog)
        for query in _queries():
            frontier = planner.optimize(query).frontier
            cheapest = PlanObjective.cheapest().select(frontier)
            fastest = PlanObjective.fastest().select(frontier)
            assert cheapest == min(
                frontier.points, key=lambda p: p.money
            )
            assert fastest == min(
                frontier.points, key=lambda p: p.time_s
            )


class TestWeightedMigrationSafetyNet:
    """``weighted(w)`` must be bit-identical to legacy ``money_weight=w``."""

    @pytest.mark.parametrize("weight", [0.0, 2.0, 50.0])
    def test_plans_costs_and_span_trees_identical(self, catalog, weight):
        def observe(planner):
            result = planner.optimize(tpch.QUERY_Q3)
            return (
                plan_signature(result.plan),
                result.cost.time_s.hex(),
                result.cost.money.hex(),
                dataclasses.asdict(result.counters),
            )

        new_tracer = Tracer(seed=0)
        new_planner = RaqoPlanner(
            catalog,
            cluster=CLUSTER,
            objective=PlanObjective.weighted(weight),
            tracer=new_tracer,
        )
        with pytest.deprecated_call():
            legacy_tracer = Tracer(seed=0)
            legacy_planner = RaqoPlanner(
                catalog,
                cluster=CLUSTER,
                money_weight=weight,
                tracer=legacy_tracer,
            )
        assert observe(new_planner) == observe(legacy_planner)
        assert canonical_span_tree_json(
            new_tracer
        ) == canonical_span_tree_json(legacy_tracer)

    def test_session_weighted_matches_legacy_session(self, catalog):
        from repro.api import RaqoSession

        new = RaqoSession(
            catalog,
            cluster=CLUSTER,
            objective=PlanObjective.weighted(8.0),
        )
        with pytest.deprecated_call():
            legacy = RaqoSession(
                catalog, cluster=CLUSTER, money_weight=8.0
            )
        a = new.plan("Q3")
        b = legacy.plan("Q3")
        assert plan_signature(a.plan) == plan_signature(b.plan)
        assert (a.cost.time_s, a.cost.money) == (
            b.cost.time_s,
            b.cost.money,
        )
