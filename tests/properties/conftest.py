"""Shared scaffolding for the property-based suites.

Every property file used to carry its own copy of the seeded-generator
helpers (random connected join plans, resource envelopes, fault specs)
and its own module-scoped SF-100 catalog.  They live here once now:

- ``catalog`` / ``join_graph`` reuse the session-scoped
  ``tpch_catalog_sf100`` fixture from the top-level conftest, so the
  catalog is built once per test run instead of once per module;
- ``gen`` exposes the seeded generators as one namespace -- all of them
  are pure functions of the ``random.Random`` instance passed in, which
  is what makes the properties replayable from a seed.
"""

import random

import pytest

from repro.catalog.join_graph import JoinGraph
from repro.cluster.containers import ResourceConfiguration
from repro.engine.joins import JoinAlgorithm
from repro.faults.model import FaultSpec

#: Random trials per property (each trial is a fresh plan/spec/envelope).
TRIALS = 25

TPCH_TABLES = (
    "customer",
    "lineitem",
    "nation",
    "orders",
    "part",
    "partsupp",
    "region",
    "supplier",
)


class PropertyGenerators:
    """Seeded generators for random plans, envelopes, and fault specs.

    Methods draw only from the ``random.Random`` they are handed, never
    from global state, so a property that fails can be replayed exactly
    from its seed.
    """

    #: Random trials per property, exported on the fixture so test
    #: modules never have to import this conftest by module name.
    TRIALS = TRIALS

    def __init__(self, join_graph: JoinGraph) -> None:
        self.join_graph = join_graph

    def tables(self, rnd: random.Random):
        """2-5 distinct TPC-H tables forming a connected join subgraph.

        Grown by a random walk over the schema's join graph, so the
        estimator never sees a cross join.  Candidates are sorted before
        each draw to keep the generator a pure function of the seed.
        """
        target = rnd.randint(2, 5)
        tables = [rnd.choice(sorted(TPCH_TABLES))]
        while len(tables) < target:
            frontier = sorted(
                {
                    neighbor
                    for table in tables
                    for neighbor in self.join_graph.neighbors(table)
                }
                - set(tables)
            )
            if not frontier:
                break
            tables.append(rnd.choice(frontier))
        return tables

    def plan(self, rnd: random.Random):
        """A random left-deep plan with random join implementations."""
        from repro.planner.plan import left_deep_plan

        tables = self.tables(rnd)
        algorithms = [
            rnd.choice(
                (JoinAlgorithm.SORT_MERGE, JoinAlgorithm.BROADCAST_HASH)
            )
            for _ in range(len(tables) - 1)
        ]
        return left_deep_plan(tables, algorithms)

    def bhj_plan(self, rnd: random.Random):
        """A random left-deep plan forced to all-broadcast joins."""
        from repro.planner.plan import left_deep_plan

        tables = self.tables(rnd)
        return left_deep_plan(
            tables,
            [JoinAlgorithm.BROADCAST_HASH] * (len(tables) - 1),
        )

    def resources(self, rnd: random.Random) -> ResourceConfiguration:
        """A random envelope, skewed to include tight (OOM-prone) ones."""
        return ResourceConfiguration(
            num_containers=rnd.randint(2, 40),
            container_gb=float(rnd.randint(1, 10)),
        )

    def fault_spec(self, rnd: random.Random) -> FaultSpec:
        """Random rates under a random seed."""
        return FaultSpec(
            seed=rnd.randint(0, 2**31),
            preemption_rate=rnd.uniform(0.0, 0.5),
            oom_rate=rnd.uniform(0.0, 0.8),
            straggler_rate=rnd.uniform(0.0, 0.5),
            straggler_slowdown=rnd.uniform(1.5, 5.0),
        )


@pytest.fixture(scope="module")
def catalog(tpch_catalog_sf100):
    """The shared SF-100 catalog, under the name the suites use."""
    return tpch_catalog_sf100


@pytest.fixture(scope="module")
def join_graph(tpch_catalog_sf100):
    return tpch_catalog_sf100.join_graph


@pytest.fixture(scope="module")
def gen(join_graph):
    """The seeded property generators, bound to the TPC-H join graph."""
    return PropertyGenerators(join_graph)
