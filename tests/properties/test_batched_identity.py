"""Bit-identity of lattice-batched planning vs the scalar reference.

The batched DP-level costing (``CandidateBatch`` + ``cost_batch``) and
the process-pool workload sharding are pure performance features: every
observable output -- chosen plans, exact Cost floats, counters, cache
statistics, and the canonical span tree -- must be *bit-identical* to
the per-candidate scalar path. These tests sweep planners, catalogs,
resource-planning methods, and seeds to pin that invariant.
"""

import dataclasses

import numpy as np
import pytest

from repro.catalog import tpch
from repro.catalog.random_schema import (
    RandomSchemaConfig,
    random_catalog,
    random_query,
)
from repro.core.raqo import (
    PlannerKind,
    RaqoPlanner,
    ResourcePlanningMethod,
)
from repro.obs.export import canonical_span_tree_json
from repro.obs.tracing import Tracer
from repro.planner.plan import plan_signature


def _strip_batch_counters(counters):
    """Counters with the batching-only fields zeroed.

    ``batched_calls``/``batch_memo_hits`` legitimately differ between
    the two modes (that is what they count); everything else must not.
    """
    return dataclasses.replace(
        counters, batched_calls=0, batch_memo_hits=0
    )


def _observable(result):
    return (
        plan_signature(result.plan),
        result.cost.time_s,
        result.cost.money,
        _strip_batch_counters(result.counters),
    )


def _plan_all(catalog, queries, *, batched, tracer_seed=None, **kwargs):
    tracer = Tracer(seed=tracer_seed) if tracer_seed is not None else None
    planner = RaqoPlanner(
        catalog, batched_costing=batched, tracer=tracer, **kwargs
    )
    results = [planner.optimize(q) for q in queries]
    tree = canonical_span_tree_json(tracer) if tracer else None
    return results, tree


CONFIGS = [
    dict(
        planner_kind=PlannerKind.SELINGER,
        resource_method=ResourcePlanningMethod.BRUTE_FORCE,
    ),
    dict(
        planner_kind=PlannerKind.SELINGER,
        resource_method=ResourcePlanningMethod.HILL_CLIMB,
    ),
    dict(
        planner_kind=PlannerKind.FAST_RANDOMIZED,
        resource_method=ResourcePlanningMethod.BRUTE_FORCE,
        randomized_iterations=2,
    ),
    dict(
        planner_kind=PlannerKind.FAST_RANDOMIZED,
        resource_method=ResourcePlanningMethod.HILL_CLIMB,
        randomized_iterations=2,
    ),
]


#: The shared SF-100 ``catalog`` fixture comes from this directory's
#: conftest (built once per run, not once per module).
pytestmark = pytest.mark.slow


class TestBatchedScalarIdentity:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_tpch_identical_plans_costs_counters(self, catalog, config):
        queries = list(tpch.EVALUATION_QUERIES)
        batched, _ = _plan_all(catalog, queries, batched=True, **config)
        scalar, _ = _plan_all(catalog, queries, batched=False, **config)
        assert [_observable(r) for r in batched] == [
            _observable(r) for r in scalar
        ]

    @pytest.mark.parametrize("config", CONFIGS[:2])
    def test_tpch_identical_span_trees(self, catalog, config):
        """The synthetic per-candidate spans reproduce the scalar trace."""
        queries = list(tpch.EVALUATION_QUERIES)
        _, tree_b = _plan_all(
            catalog, queries, batched=True, tracer_seed=7, **config
        )
        _, tree_s = _plan_all(
            catalog, queries, batched=False, tracer_seed=7, **config
        )
        assert tree_b == tree_s

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_schema_identical(self, seed):
        rng = np.random.default_rng(seed)
        cat = random_catalog(RandomSchemaConfig(num_tables=6), rng)
        queries = [random_query(cat, 5, rng) for _ in range(3)]
        for config in CONFIGS[:2]:
            batched, _ = _plan_all(cat, queries, batched=True, **config)
            scalar, _ = _plan_all(cat, queries, batched=False, **config)
            assert [_observable(r) for r in batched] == [
                _observable(r) for r in scalar
            ]

    def test_batched_mode_actually_batches(self, catalog):
        results, _ = _plan_all(
            catalog,
            list(tpch.EVALUATION_QUERIES),
            batched=True,
            resource_method=ResourcePlanningMethod.BRUTE_FORCE,
        )
        for result in results:
            assert result.counters.batched_calls > 0
            assert result.batch_sizes
            assert (
                sum(result.batch_sizes) == result.counters.join_costings
            )
            # One batch per DP level, not per candidate.
            assert len(result.batch_sizes) < result.counters.join_costings

    def test_scalar_mode_reports_no_batches(self, catalog):
        results, _ = _plan_all(
            catalog,
            list(tpch.EVALUATION_QUERIES),
            batched=False,
            resource_method=ResourcePlanningMethod.BRUTE_FORCE,
        )
        for result in results:
            assert result.counters.batched_calls == 0
            assert result.batch_sizes == ()

    def test_memo_hits_match_within_and_across_batches(self, catalog):
        """Within-batch duplicates count as memo hits, like the scalar
        memo would have recorded them."""
        config = dict(resource_method=ResourcePlanningMethod.BRUTE_FORCE)
        batched, _ = _plan_all(
            catalog, list(tpch.EVALUATION_QUERIES), batched=True, **config
        )
        scalar, _ = _plan_all(
            catalog,
            list(tpch.EVALUATION_QUERIES),
            batched=False,
            **config,
        )
        for rb, rs in zip(batched, scalar):
            assert rb.counters.memo_hits == rs.counters.memo_hits
