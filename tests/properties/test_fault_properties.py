"""Property-based tests for the fault-injection subsystem.

Seeded stdlib-``random`` generators (shared via ``conftest.py``'s
``gen`` fixture -- no new dependency) produce random join plans,
resource envelopes, and fault specs; each property asserts one
invariant from the fault subsystem's contract:

1. the same seed produces a bit-identical ``ExecutionResult``;
2. a zero-fault plan is identical to running without fault injection;
3. per-stage retries never exceed the policy cap;
4. a degraded BHJ -> SMJ stage always terminates feasibly (under
   OOM-only faults: SMJ has zero OOM pressure, so the fallback cannot
   be re-killed).
"""

import random

import pytest

from repro.cluster.containers import ResourceConfiguration
from repro.engine.executor import execute_plan
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiles import HIVE_PROFILE
from repro.faults.model import FaultPlan, FaultSpec
from repro.faults.recovery import DEFAULT_RECOVERY, RecoveryPolicy

pytestmark = pytest.mark.slow


def run(plan, estimator, resources, faults=None, recovery=None):
    return execute_plan(
        plan,
        estimator,
        HIVE_PROFILE,
        default_resources=resources,
        faults=faults,
        recovery=recovery,
    )


class TestSameSeedBitIdentity:
    def test_identical_results_for_identical_seeds(self, estimator, gen):
        rnd = random.Random(1001)
        for _ in range(gen.TRIALS):
            plan = gen.plan(rnd)
            resources = gen.resources(rnd)
            spec = gen.fault_spec(rnd)
            first = run(
                plan, estimator, resources, faults=FaultPlan(spec)
            )
            again = run(
                plan, estimator, resources, faults=FaultPlan(spec)
            )
            assert first == again

    def test_different_seeds_eventually_differ(self, estimator, gen):
        # Sanity check that the generator actually injects: across the
        # trials, at least one seeded run must record a fault.
        rnd = random.Random(1002)
        injected = 0
        for _ in range(gen.TRIALS):
            plan = gen.plan(rnd)
            resources = gen.resources(rnd)
            spec = gen.fault_spec(rnd)
            result = run(
                plan, estimator, resources, faults=FaultPlan(spec)
            )
            injected += result.faults_injected
        assert injected > 0


class TestZeroFaultIdentity:
    def test_zero_fault_plan_matches_plain_executor(self, estimator, gen):
        rnd = random.Random(2001)
        for _ in range(gen.TRIALS):
            plan = gen.plan(rnd)
            resources = gen.resources(rnd)
            seed = rnd.randint(0, 2**31)
            plain = run(plan, estimator, resources)
            zero = run(
                plan,
                estimator,
                resources,
                faults=FaultPlan(FaultSpec(seed=seed)),
                recovery=RecoveryPolicy(degrade_bhj_to_smj=False),
            )
            assert zero == plain


class TestRetryCap:
    @pytest.mark.parametrize("max_retries", [0, 1, 3])
    def test_per_stage_retries_never_exceed_cap(
        self, estimator, gen, max_retries
    ):
        rnd = random.Random(3000 + max_retries)
        policy = RecoveryPolicy(max_retries=max_retries)
        for _ in range(gen.TRIALS):
            plan = gen.plan(rnd)
            resources = gen.resources(rnd)
            spec = gen.fault_spec(rnd)
            result = run(
                plan,
                estimator,
                resources,
                faults=FaultPlan(spec),
                recovery=policy,
            )
            for report in result.joins:
                assert report.retries <= max_retries
                # The attempt history agrees with the counter.
                if report.attempts:
                    kills = sum(
                        1
                        for a in report.attempts
                        if a.fault is not None
                        and a.fault.value != "straggler"
                        and a.injected
                        and not (
                            a.algorithm
                            is JoinAlgorithm.BROADCAST_HASH
                            and report.degraded
                        )
                    )
                    assert report.retries <= max(kills, max_retries)


class TestDegradedBhjTerminatesFeasibly:
    def test_oom_only_faults_always_recover(self, estimator, gen):
        # OOM-only faults: the SMJ fallback has zero OOM pressure, so a
        # degraded stage can never be killed again -- every query must
        # terminate feasibly no matter how hot the OOM rate runs.
        rnd = random.Random(4001)
        for _ in range(gen.TRIALS):
            plan = gen.bhj_plan(rnd)
            resources = gen.resources(rnd)
            spec = FaultSpec(
                seed=rnd.randint(0, 2**31),
                oom_rate=rnd.uniform(0.5, 1.0),
            )
            result = run(
                plan,
                estimator,
                resources,
                faults=FaultPlan(spec),
                recovery=DEFAULT_RECOVERY,
            )
            assert result.feasible
            for report in result.joins:
                if report.degraded:
                    assert report.algorithm is JoinAlgorithm.SORT_MERGE
                    assert report.feasible

    def test_static_walls_always_recover(self, estimator, gen):
        # Even without injected faults, every statically infeasible BHJ
        # must come back feasible through the SMJ fallback.
        rnd = random.Random(4002)
        recovered = 0
        for _ in range(gen.TRIALS):
            plan = gen.bhj_plan(rnd)
            # Tiny containers: big broadcast tables cannot fit.
            resources = ResourceConfiguration(
                num_containers=rnd.randint(2, 10),
                container_gb=1.0,
            )
            plain = run(plan, estimator, resources)
            healed = run(
                plan,
                estimator,
                resources,
                recovery=DEFAULT_RECOVERY,
            )
            assert healed.feasible
            if not plain.feasible:
                recovered += 1
                assert healed.degraded_stages > 0
        # The envelope generator must actually hit the wall sometimes.
        assert recovered > 0
