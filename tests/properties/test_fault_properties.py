"""Property-based tests for the fault-injection subsystem.

Seeded stdlib-``random`` generators (no new dependency) produce random
join plans, resource envelopes, and fault specs; each property asserts
one invariant from the fault subsystem's contract:

1. the same seed produces a bit-identical ``ExecutionResult``;
2. a zero-fault plan is identical to running without fault injection;
3. per-stage retries never exceed the policy cap;
4. a degraded BHJ -> SMJ stage always terminates feasibly (under
   OOM-only faults: SMJ has zero OOM pressure, so the fallback cannot
   be re-killed).
"""

import random

import pytest

from repro.cluster.containers import ResourceConfiguration
from repro.engine.executor import execute_plan
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiles import HIVE_PROFILE
from repro.faults.model import FaultPlan, FaultSpec
from repro.faults.recovery import DEFAULT_RECOVERY, RecoveryPolicy

#: Random trials per property (each trial is a fresh plan/spec/envelope).
TRIALS = 25

TPCH_TABLES = (
    "customer",
    "lineitem",
    "nation",
    "orders",
    "part",
    "partsupp",
    "region",
    "supplier",
)


@pytest.fixture(scope="module")
def join_graph():
    from repro.catalog import tpch

    return tpch.tpch_catalog(100).join_graph


def gen_tables(rnd: random.Random, join_graph):
    """2-5 distinct TPC-H tables forming a connected join subgraph.

    Grown by a random walk over the schema's join graph, so the
    estimator never sees a cross join. Candidates are sorted before each
    draw to keep the generator a pure function of the seed.
    """
    target = rnd.randint(2, 5)
    tables = [rnd.choice(sorted(TPCH_TABLES))]
    while len(tables) < target:
        frontier = sorted(
            {
                neighbor
                for table in tables
                for neighbor in join_graph.neighbors(table)
            }
            - set(tables)
        )
        if not frontier:
            break
        tables.append(rnd.choice(frontier))
    return tables


def gen_plan(rnd: random.Random, join_graph):
    """A random left-deep plan with random join implementations."""
    from repro.planner.plan import left_deep_plan

    tables = gen_tables(rnd, join_graph)
    algorithms = [
        rnd.choice(
            (JoinAlgorithm.SORT_MERGE, JoinAlgorithm.BROADCAST_HASH)
        )
        for _ in range(len(tables) - 1)
    ]
    return left_deep_plan(tables, algorithms)


def gen_resources(rnd: random.Random) -> ResourceConfiguration:
    """A random envelope, skewed to include tight (OOM-prone) ones."""
    return ResourceConfiguration(
        num_containers=rnd.randint(2, 40),
        container_gb=float(rnd.randint(1, 10)),
    )


def gen_fault_spec(rnd: random.Random) -> FaultSpec:
    """Random rates under a random seed."""
    return FaultSpec(
        seed=rnd.randint(0, 2**31),
        preemption_rate=rnd.uniform(0.0, 0.5),
        oom_rate=rnd.uniform(0.0, 0.8),
        straggler_rate=rnd.uniform(0.0, 0.5),
        straggler_slowdown=rnd.uniform(1.5, 5.0),
    )


def run(plan, estimator, resources, faults=None, recovery=None):
    return execute_plan(
        plan,
        estimator,
        HIVE_PROFILE,
        default_resources=resources,
        faults=faults,
        recovery=recovery,
    )


class TestSameSeedBitIdentity:
    def test_identical_results_for_identical_seeds(self, estimator, join_graph):
        rnd = random.Random(1001)
        for _ in range(TRIALS):
            plan = gen_plan(rnd, join_graph)
            resources = gen_resources(rnd)
            spec = gen_fault_spec(rnd)
            first = run(
                plan, estimator, resources, faults=FaultPlan(spec)
            )
            again = run(
                plan, estimator, resources, faults=FaultPlan(spec)
            )
            assert first == again

    def test_different_seeds_eventually_differ(self, estimator, join_graph):
        # Sanity check that the generator actually injects: across the
        # trials, at least one seeded run must record a fault.
        rnd = random.Random(1002)
        injected = 0
        for _ in range(TRIALS):
            plan = gen_plan(rnd, join_graph)
            resources = gen_resources(rnd)
            spec = gen_fault_spec(rnd)
            result = run(
                plan, estimator, resources, faults=FaultPlan(spec)
            )
            injected += result.faults_injected
        assert injected > 0


class TestZeroFaultIdentity:
    def test_zero_fault_plan_matches_plain_executor(self, estimator, join_graph):
        rnd = random.Random(2001)
        for _ in range(TRIALS):
            plan = gen_plan(rnd, join_graph)
            resources = gen_resources(rnd)
            seed = rnd.randint(0, 2**31)
            plain = run(plan, estimator, resources)
            zero = run(
                plan,
                estimator,
                resources,
                faults=FaultPlan(FaultSpec(seed=seed)),
                recovery=RecoveryPolicy(degrade_bhj_to_smj=False),
            )
            assert zero == plain


class TestRetryCap:
    @pytest.mark.parametrize("max_retries", [0, 1, 3])
    def test_per_stage_retries_never_exceed_cap(
        self, estimator, join_graph, max_retries
    ):
        rnd = random.Random(3000 + max_retries)
        policy = RecoveryPolicy(max_retries=max_retries)
        for _ in range(TRIALS):
            plan = gen_plan(rnd, join_graph)
            resources = gen_resources(rnd)
            spec = gen_fault_spec(rnd)
            result = run(
                plan,
                estimator,
                resources,
                faults=FaultPlan(spec),
                recovery=policy,
            )
            for report in result.joins:
                assert report.retries <= max_retries
                # The attempt history agrees with the counter.
                if report.attempts:
                    kills = sum(
                        1
                        for a in report.attempts
                        if a.fault is not None
                        and a.fault.value != "straggler"
                        and a.injected
                        and not (
                            a.algorithm
                            is JoinAlgorithm.BROADCAST_HASH
                            and report.degraded
                        )
                    )
                    assert report.retries <= max(kills, max_retries)


class TestDegradedBhjTerminatesFeasibly:
    def test_oom_only_faults_always_recover(self, estimator, join_graph):
        # OOM-only faults: the SMJ fallback has zero OOM pressure, so a
        # degraded stage can never be killed again -- every query must
        # terminate feasibly no matter how hot the OOM rate runs.
        rnd = random.Random(4001)
        for _ in range(TRIALS):
            tables = gen_tables(rnd, join_graph)
            from repro.planner.plan import left_deep_plan

            plan = left_deep_plan(
                tables,
                [JoinAlgorithm.BROADCAST_HASH] * (len(tables) - 1),
            )
            resources = gen_resources(rnd)
            spec = FaultSpec(
                seed=rnd.randint(0, 2**31),
                oom_rate=rnd.uniform(0.5, 1.0),
            )
            result = run(
                plan,
                estimator,
                resources,
                faults=FaultPlan(spec),
                recovery=DEFAULT_RECOVERY,
            )
            assert result.feasible
            for report in result.joins:
                if report.degraded:
                    assert report.algorithm is JoinAlgorithm.SORT_MERGE
                    assert report.feasible

    def test_static_walls_always_recover(self, estimator, join_graph):
        # Even without injected faults, every statically infeasible BHJ
        # must come back feasible through the SMJ fallback.
        rnd = random.Random(4002)
        recovered = 0
        for _ in range(TRIALS):
            tables = gen_tables(rnd, join_graph)
            from repro.planner.plan import left_deep_plan

            plan = left_deep_plan(
                tables,
                [JoinAlgorithm.BROADCAST_HASH] * (len(tables) - 1),
            )
            # Tiny containers: big broadcast tables cannot fit.
            resources = ResourceConfiguration(
                num_containers=rnd.randint(2, 10),
                container_gb=1.0,
            )
            plain = run(plan, estimator, resources)
            healed = run(
                plan,
                estimator,
                resources,
                recovery=DEFAULT_RECOVERY,
            )
            assert healed.feasible
            if not plain.feasible:
                recovered += 1
                assert healed.degraded_stages > 0
        # The envelope generator must actually hit the wall sometimes.
        assert recovered > 0
