"""Serving determinism properties: worker counts must not be observable.

The service's contract (``repro/serving/service.py``) is that pool
sizing is a deployment knob, not a semantic one: the same seed and the
same request trace produce

1. identical plans (signature and exact Cost floats) for every request
   at 1, 2, and 8 workers, with the cache enabled;
2. a byte-identical canonical span tree across those worker counts
   (request spans keyed by request id, plan spans by cache key, all
   scheduling-dependent facts quarantined on ``wall_`` attributes);
3. the same plans with the cache disabled entirely (the cache is a
   latency feature, never a semantic one);

and that admission control enforces its two invariants: concurrent
optimizer runs never exceed ``max_inflight``, and a rejected request is
never planned -- not even partially.
"""

import pytest

from repro.api import RaqoSession
from repro.obs.export import canonical_span_tree_json
from repro.obs.tracing import Tracer
from repro.planner.plan import plan_signature
from repro.serving import (
    Overloaded,
    ReplayConfig,
    build_requests,
    replay,
)

pytestmark = pytest.mark.slow

WORKER_COUNTS = (1, 2, 8)

#: The shared trace all worker-count sweeps replay: bursty arrivals
#: (the adversarial case for batching nondeterminism), several tenants,
#: enough requests that every evaluation query repeats many times.
TRACE = ReplayConfig(
    num_requests=60, arrival="bursty", num_tenants=4, seed=17
)


def replay_once(catalog, workers, *, cache_enabled=True, config=TRACE):
    """One full service lifecycle over the shared trace.

    Fresh session + tracer per run: nothing can leak between worker
    counts except what the test means to compare.
    """
    tracer = Tracer(seed=0)
    session = RaqoSession(catalog, tracer=tracer)
    service = session.serve(
        workers=workers,
        max_queue=4096,  # ample: determinism holds only without rejections
        cache_enabled=cache_enabled,
    )
    requests = build_requests(config, catalog=catalog)
    with service:
        report = replay(service, requests, label=f"w{workers}")
    assert report.rejected == 0
    plans = {
        response.request.request_id: (
            plan_signature(response.result.plan),
            response.result.cost.time_s,
            response.result.cost.money,
        )
        for response in report.responses
    }
    assert len(plans) == config.num_requests
    return plans, canonical_span_tree_json(tracer), report


class TestWorkerCountBitIdentity:
    @pytest.fixture(scope="class")
    def runs(self, tpch_catalog_sf100):
        return {
            workers: replay_once(tpch_catalog_sf100, workers)
            for workers in WORKER_COUNTS
        }

    def test_plans_identical_across_worker_counts(self, runs):
        reference_plans, _, _ = runs[WORKER_COUNTS[0]]
        for workers in WORKER_COUNTS[1:]:
            plans, _, _ = runs[workers]
            assert plans == reference_plans

    def test_span_trees_byte_identical_across_worker_counts(self, runs):
        reference_tree = runs[WORKER_COUNTS[0]][1]
        assert reference_tree  # the tracer really recorded something
        for workers in WORKER_COUNTS[1:]:
            assert runs[workers][1] == reference_tree

    def test_every_key_planned_exactly_once(self, runs):
        """With ample cache capacity nothing is evicted, so the trace's
        distinct queries each cost exactly one optimizer run."""
        for workers in WORKER_COUNTS:
            report = runs[workers][2]
            planned = sum(
                1
                for response in report.responses
                if not response.cache_hit and not response.coalesced
            )
            distinct = len(
                {r.result.query.name for r in report.responses}
            )
            assert planned == distinct

    def test_same_trace_replayed_twice_is_identical(
        self, tpch_catalog_sf100, runs
    ):
        plans, tree, _ = replay_once(tpch_catalog_sf100, 2)
        assert plans == runs[2][0]
        assert tree == runs[2][1]


class TestCacheTransparency:
    def test_cache_off_produces_the_same_plans(self, tpch_catalog_sf100):
        config = ReplayConfig(num_requests=25, seed=23)
        cached, _, _ = replay_once(
            tpch_catalog_sf100, 2, cache_enabled=True, config=config
        )
        uncached, _, report = replay_once(
            tpch_catalog_sf100, 2, cache_enabled=False, config=config
        )
        assert cached == uncached
        assert all(
            not response.cache_hit for response in report.responses
        )


class TestAdmissionInvariants:
    def test_planning_concurrency_never_exceeds_max_inflight(
        self, tpch_catalog_sf100
    ):
        # Many distinct queries (low cache traffic) over many workers,
        # but a cap of 2 concurrent optimizer runs.
        session = RaqoSession(tpch_catalog_sf100)
        service = session.serve(
            workers=8, max_inflight=2, max_queue=4096
        )
        config = ReplayConfig(
            num_requests=30, unique_queries=16, seed=29
        )
        requests = build_requests(config, catalog=session.catalog)
        with service:
            report = replay(service, requests, label="capped")
        assert report.completed == 30
        assert 1 <= service.planning_high_water <= 2

    def test_rejected_requests_are_never_planned(
        self, tpch_catalog_sf100
    ):
        # Submit against a stalled pool: the 4-deep queue fills
        # deterministically and everything else bounces.
        session = RaqoSession(tpch_catalog_sf100)
        service = session.serve(workers=2, max_queue=4)
        requests = build_requests(
            ReplayConfig(num_requests=20, seed=31),
            catalog=session.catalog,
        )
        admitted = []
        rejected = 0
        for request in requests:
            try:
                future = service.submit(request)
            except Overloaded:
                rejected += 1
            else:
                admitted.append((request, future))
        assert len(admitted) == 4
        assert rejected == 16
        assert session.metrics.counter("planning.queries").value == 0
        with service:
            pass
        # Draining planned exactly the admitted requests' distinct
        # cache keys -- the rejected 16 never touched the optimizer.
        distinct_admitted = {
            service.cache_key(session.resolve_query(request.query))
            for request, _ in admitted
        }
        assert (
            session.metrics.counter("planning.queries").value
            == len(distinct_admitted)
        )
        for _, future in admitted:
            assert future.result(timeout=0).result is not None
