"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURE_MODULES, main


class TestPlanCommand:
    def test_plan_default(self, capsys):
        assert main(["plan", "--query", "Q12"]) == 0
        out = capsys.readouterr().out
        assert "Scan(orders)" in out
        assert "predicted time" in out
        assert "resource configurations explored" in out

    def test_plan_fast_randomized(self, capsys):
        assert (
            main(
                [
                    "plan",
                    "--query",
                    "Q2",
                    "--planner",
                    "fast_randomized",
                ]
            )
            == 0
        )
        assert "predicted time" in capsys.readouterr().out

    def test_plan_baseline_explores_nothing(self, capsys):
        assert main(["plan", "--query", "Q12", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "resource configurations explored: 0" in out

    def test_plan_custom_cluster(self, capsys):
        assert (
            main(
                [
                    "plan",
                    "--query",
                    "Q12",
                    "--containers",
                    "8",
                    "--container-gb",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # Planned resources stay inside the 8 x 2 GB envelope.
        assert "x 1GB>" in out or "x 2GB>" in out

    def test_plan_brute_force(self, capsys):
        assert (
            main(
                [
                    "plan",
                    "--query",
                    "Q12",
                    "--resource-method",
                    "brute_force",
                    "--containers",
                    "10",
                    "--container-gb",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # Brute force explores the whole 10x4 grid per costing.
        assert "resource configurations explored" in out

    def test_invalid_query_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "--query", "Q99"])


class TestExecuteCommand:
    def test_execute_compares_against_baseline(self, capsys):
        assert main(["execute", "--query", "Q12"]) == 0
        out = capsys.readouterr().out
        assert "simulated execution" in out
        assert "two-step baseline" in out
        assert "speedup" in out

    def test_execute_baseline_only(self, capsys):
        assert main(["execute", "--query", "Q12", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "two-step baseline" not in out


class TestFigureCommand:
    def test_figure_names_cover_all_evaluation_figures(self):
        expected = {
            "fig01", "fig02", "fig03", "fig04", "fig05", "fig06",
            "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "fig16", "fig17",
        }
        assert set(FIGURE_MODULES) == expected

    def test_figure_runs(self, capsys):
        assert main(["figure", "fig03"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3(a)" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestTreesCommand:
    def test_hive_trees(self, capsys):
        assert main(["trees", "--engine", "hive"]) == 0
        out = capsys.readouterr().out
        assert "default tree (hive)" in out
        assert "RAQO tree (hive)" in out
        assert "max path length" in out

    def test_spark_trees(self, capsys):
        assert main(["trees", "--engine", "spark"]) == 0
        assert "spark" in capsys.readouterr().out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestServingCommands:
    def test_serve_zero_tenants_is_usage_error(self, capsys):
        assert main(["serve", "--tenants", "0"]) == 2
        assert "--tenants" in capsys.readouterr().err

    def test_serve_zero_requests_is_usage_error(self, capsys):
        assert main(["serve", "--requests", "0"]) == 2
        assert "--requests" in capsys.readouterr().err

    def test_replay_zero_tenants_is_usage_error(self, capsys):
        assert main(["replay", "--tenants", "0"]) == 2
        assert "--tenants" in capsys.readouterr().err

    def test_replay_zero_requests_is_usage_error(self, capsys):
        assert main(["replay", "--num-requests", "0"]) == 2
        assert "--num-requests" in capsys.readouterr().err


class TestFaultOptions:
    def test_run_alias_with_faults(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--query",
                    "Q3",
                    "--faults",
                    "seed=7,preempt=0.2,oom=0.4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "simulated execution" in out
        assert "faults:" in out
        assert "retries" in out

    def test_execute_without_faults_prints_no_fault_line(self, capsys):
        assert main(["execute", "--query", "Q3", "--baseline"]) == 0
        assert "faults:" not in capsys.readouterr().out

    def test_max_retries_alone_enables_recovery(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--query",
                    "Q3",
                    "--baseline",
                    "--max-retries",
                    "0",
                ]
            )
            == 0
        )
        assert "faults: 0 injected" in capsys.readouterr().out

    def test_workload_with_faults_is_deterministic(self, capsys):
        import re

        def strip_wall_time(out):
            # Planner wall time varies run to run; the simulated
            # numbers (and fault counters) must not.
            return re.sub(r"planning\s+[\d.,]+ ms", "planning -", out)

        argv = [
            "workload",
            "--num-queries",
            "3",
            "--faults",
            "seed=1,oom=0.3,preempt=0.15",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert strip_wall_time(second) == strip_wall_time(first)
        assert "faults:" in first

    def test_invalid_fault_spec_is_a_usage_error(self):
        with pytest.raises(SystemExit, match="invalid --faults spec"):
            main(["run", "--query", "Q3", "--faults", "explode=1"])

    def test_fig16_is_registered(self):
        assert "fig16" in FIGURE_MODULES


class TestObjectiveOption:
    @pytest.mark.parametrize(
        "spec",
        ["fastest", "cheapest", "weighted:2.5", "latency-bound:60", "pareto"],
    )
    def test_plan_accepts_every_objective(self, spec, capsys):
        assert main(["plan", "--query", "Q12", "--objective", spec]) == 0
        assert "predicted time" in capsys.readouterr().out

    def test_pareto_plan_prints_frontier_summary(self, capsys):
        assert (
            main(
                [
                    "plan",
                    "--query",
                    "Q3",
                    "--objective",
                    "pareto",
                    "--resource-method",
                    "brute_force",
                    "--containers",
                    "10",
                    "--container-gb",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "frontier" in out
        assert "fastest" in out and "cheapest" in out

    def test_run_and_workload_accept_objective(self, capsys):
        assert (
            main(["run", "--query", "Q3", "--objective", "cheapest"]) == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "workload",
                    "--num-queries",
                    "2",
                    "--objective",
                    "weighted:1.5",
                ]
            )
            == 0
        )

    @pytest.mark.parametrize(
        "spec", ["bogus", "weighted:x", "weighted:-1", "latency-bound:0"]
    )
    def test_malformed_objective_is_usage_error(self, spec, capsys):
        assert main(["plan", "--query", "Q12", "--objective", spec]) == 2
        err = capsys.readouterr().err
        assert "invalid objective" in err


class TestWorkloadSharding:
    def test_procs_and_workers_conflict_is_usage_error(self, capsys):
        assert (
            main(
                [
                    "workload",
                    "--num-queries",
                    "2",
                    "--procs",
                    "2",
                    "--parallel",
                    "2",
                ]
            )
            == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err

    def test_negative_procs_is_usage_error(self, capsys):
        assert (
            main(["workload", "--num-queries", "2", "--procs", "-1"])
            == 2
        )
        assert "--procs" in capsys.readouterr().err

    def test_workers_alias_matches_parallel(self, capsys):
        import re

        def strip_wall_time(out):
            return re.sub(r"planning\s+[\d.,]+ ms", "planning -", out)

        assert (
            main(["workload", "--num-queries", "3", "--workers", "2"])
            == 0
        )
        first = capsys.readouterr().out
        assert (
            main(["workload", "--num-queries", "3", "--parallel", "2"])
            == 0
        )
        second = capsys.readouterr().out
        assert strip_wall_time(second) == strip_wall_time(first)

    def test_procs_match_serial_output(self, capsys):
        import re

        def strip_wall_time(out):
            return re.sub(r"planning\s+[\d.,]+ ms", "planning -", out)

        assert main(["workload", "--num-queries", "3"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["workload", "--num-queries", "3", "--procs", "2"])
            == 0
        )
        sharded = capsys.readouterr().out
        assert "2 process(es)" in sharded
        assert strip_wall_time(sharded.replace(
            "2 process(es)", "1 worker(s)"
        )) == strip_wall_time(serial)
