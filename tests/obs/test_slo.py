"""Per-tenant SLO tracking: budgets, burn rates, edge-triggered alerts."""

import pytest

from repro.obs.events import EventLog
from repro.obs.slo import SloPolicy, SloTracker


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="latency_target_ms"):
            SloPolicy(latency_target_ms=-1.0)
        with pytest.raises(ValueError, match="objective"):
            SloPolicy(latency_target_ms=1.0, objective=0.0)
        with pytest.raises(ValueError, match="window"):
            SloPolicy(latency_target_ms=1.0, window=0)

    def test_error_budget_is_complement_of_objective(self):
        assert SloPolicy(10.0, objective=0.95).error_budget == pytest.approx(
            0.05
        )

    def test_perfect_objective_budget_is_floored(self):
        assert SloPolicy(10.0, objective=1.0).error_budget == 1e-9


class TestBurnAlerts:
    @staticmethod
    def _tracker(**overrides):
        policy = SloPolicy(
            latency_target_ms=10.0,
            objective=0.5,
            window=4,
            min_samples=2,
            **overrides,
        )
        log = EventLog()
        return SloTracker(policy, events=log), log

    def test_burn_fires_once_on_the_edge(self):
        tracker, log = self._tracker()
        # budget 0.5; two violations in a window of two => burn 2.0.
        assert tracker.record("acme", 50.0, ts_s=0.0) is None
        edge = tracker.record("acme", 50.0, ts_s=1.0)
        assert edge is not None and edge.name == "slo_burn"
        # Sustained burn stays silent: no new event per request.
        assert tracker.record("acme", 50.0, ts_s=2.0) is None
        assert log.counts() == {"slo_burn": 1}

    def test_recovery_fires_when_window_drains(self):
        tracker, log = self._tracker()
        for ts in (0.0, 1.0):
            tracker.record("acme", 50.0, ts_s=ts)
        # Window 4: fast requests push the violations out.
        edges = [
            tracker.record("acme", 1.0, ts_s=2.0 + i) for i in range(4)
        ]
        recovered = [e for e in edges if e is not None]
        assert [e.name for e in recovered] == ["slo_recovered"]
        assert log.counts() == {"slo_burn": 1, "slo_recovered": 1}

    def test_min_samples_gates_alerting(self):
        policy = SloPolicy(
            latency_target_ms=10.0,
            objective=0.5,
            window=10,
            min_samples=5,
        )
        tracker = SloTracker(policy, events=EventLog())
        for index in range(4):
            assert tracker.record("t", 99.0, ts_s=float(index)) is None
        edge = tracker.record("t", 99.0, ts_s=4.0)
        assert edge is not None and edge.name == "slo_burn"

    def test_tenants_are_independent(self):
        tracker, log = self._tracker()
        tracker.record("fast", 1.0, ts_s=0.0)
        tracker.record("slow", 50.0, ts_s=0.0)
        tracker.record("slow", 50.0, ts_s=1.0)
        assert tracker.status("fast").alerting is False
        assert tracker.status("slow").alerting is True
        (event,) = log.events()
        assert event.tenant == "slow"


class TestStatus:
    def test_unseen_tenant_is_zeroed(self):
        tracker = SloTracker(SloPolicy(10.0))
        status = tracker.status("ghost")
        assert status.requests == 0
        assert status.burn_rate == 0.0
        assert status.alerting is False

    def test_statuses_sorted_and_snapshot_json_ready(self):
        tracker = SloTracker(SloPolicy(10.0))
        tracker.record("b", 1.0, ts_s=0.0)
        tracker.record("a", 1.0, ts_s=0.0)
        assert [s.tenant for s in tracker.statuses()] == ["a", "b"]
        assert tracker.snapshot()[0]["tenant"] == "a"

    def test_deterministic_event_indices(self):
        """Same observation sequence => same alert edges, always."""

        def run():
            tracker = SloTracker(
                SloPolicy(10.0, objective=0.5, window=4, min_samples=2),
                events=EventLog(),
            )
            edges = []
            latencies = [50.0, 50.0, 1.0, 1.0, 1.0, 1.0, 50.0, 50.0]
            for index, latency in enumerate(latencies):
                event = tracker.record("t", latency, ts_s=float(index))
                edges.append(None if event is None else event.name)
            return edges

        assert run() == run()
