"""Golden determinism: serial and parallel runs emit identical traces.

The tentpole contract of the tracing layer: span identities are derived
from ``(seed, path)``, never from thread scheduling or wall clocks, so
the *canonical* span tree of a seeded workload is byte-identical whether
the queries ran serially or on a thread pool.  The same seed must also
reproduce the tree across separate tracer instances.
"""

import numpy as np
import pytest

from repro.catalog import tpch
from repro.core.raqo import RaqoPlanner
from repro.faults.model import FaultPlan, FaultSpec
from repro.obs.export import canonical_span_tree_json, chrome_trace
from repro.obs.tracing import Tracer
from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.runner import WorkloadRunner


@pytest.fixture(scope="module")
def catalog():
    return tpch.tpch_catalog(100)


@pytest.fixture(scope="module")
def workload(catalog):
    rng = np.random.default_rng(7)
    return generate_workload(catalog, WorkloadSpec(num_queries=6), rng)


FAULTS = FaultPlan(
    FaultSpec.parse("seed=11,preempt=0.15,oom=0.2,straggle=0.1")
)


def _traced_run(catalog, workload, max_workers, seed=42):
    tracer = Tracer(seed=seed)
    planner = RaqoPlanner.default(catalog, tracer=tracer)
    runner = WorkloadRunner(planner, faults=FAULTS)
    report = runner.run(
        workload, label="golden", max_workers=max_workers
    )
    return tracer, report


class TestSerialParallelIdentity:
    def test_canonical_trees_byte_identical(self, catalog, workload):
        serial_tracer, serial_report = _traced_run(
            catalog, workload, max_workers=1
        )
        parallel_tracer, parallel_report = _traced_run(
            catalog, workload, max_workers=4
        )
        assert canonical_span_tree_json(
            serial_tracer
        ) == canonical_span_tree_json(parallel_tracer)
        # The reports agree too (wall-clock timing aside).
        assert [
            o.query.name for o in serial_report.outcomes
        ] == [o.query.name for o in parallel_report.outcomes]
        assert (
            serial_report.total_retries == parallel_report.total_retries
        )

    def test_same_seed_reproduces_span_ids(self, catalog, workload):
        first, _ = _traced_run(catalog, workload, max_workers=2)
        second, _ = _traced_run(catalog, workload, max_workers=2)
        assert [s.span_id for s in first.spans()] == [
            s.span_id for s in second.spans()
        ]

    def test_different_tracer_seed_changes_ids_not_shape(
        self, catalog, workload
    ):
        a, _ = _traced_run(catalog, workload, max_workers=1, seed=1)
        b, _ = _traced_run(catalog, workload, max_workers=1, seed=2)
        assert [s.path for s in a.spans()] == [s.path for s in b.spans()]
        assert [s.span_id for s in a.spans()] != [
            s.span_id for s in b.spans()
        ]

    def test_workload_trace_covers_every_layer(self, catalog, workload):
        tracer, _ = _traced_run(catalog, workload, max_workers=1)
        names = {span.name for span in tracer.spans()}
        assert {"workload", "query", "plan", "run", "stage"} <= names
        kinds = {span.kind for span in tracer.spans()}
        assert {"planner", "engine"} <= kinds

    def test_faulted_trace_records_fault_events(self, catalog, workload):
        tracer, report = _traced_run(catalog, workload, max_workers=1)
        assert report.total_faults_injected > 0
        event_names = {
            event.name
            for span in tracer.spans()
            for event in span.events
        }
        assert "fault" in event_names

    def test_chrome_export_of_workload_validates(self, catalog, workload):
        from repro.obs.export import validate_chrome_trace

        tracer, _ = _traced_run(catalog, workload, max_workers=2)
        validate_chrome_trace(chrome_trace(tracer))
