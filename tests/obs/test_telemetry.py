"""The TelemetryPlane: instrument registry, snapshots, determinism.

The headline property lives in the last class: a workload recorded
serially and the same workload recorded across threads produce
byte-identical ``sim``-domain telemetry snapshots.
"""

import json

import pytest

from repro.api import RaqoSession
from repro.obs.drift import DriftConfig
from repro.obs.slo import SloPolicy
from repro.obs.telemetry import TelemetryPlane
from repro.obs.windows import (
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
)


class TestInstrumentRegistry:
    def test_get_or_create_returns_same_instrument(self):
        plane = TelemetryPlane()
        first = plane.windowed_counter("a", [("t", "x")])
        second = plane.windowed_counter("a", [("t", "x")])
        assert first is second

    def test_label_order_does_not_split_series(self):
        plane = TelemetryPlane()
        first = plane.windowed_gauge("g", [("a", "1"), ("b", "2")])
        second = plane.windowed_gauge("g", [("b", "2"), ("a", "1")])
        assert first is second

    def test_same_name_different_kinds_coexist(self):
        plane = TelemetryPlane()
        counter = plane.windowed_counter("x")
        histogram = plane.windowed_histogram("x")
        assert isinstance(counter, WindowedCounter)
        assert isinstance(histogram, WindowedHistogram)

    def test_clock_conflict_is_an_error(self):
        plane = TelemetryPlane()
        plane.windowed_counter("c", clock="sim")
        with pytest.raises(ValueError, match="clock"):
            plane.windowed_counter("c", clock="wall")

    def test_default_window_widths_per_clock(self):
        plane = TelemetryPlane(wall_window_s=0.25, sim_window_s=20.0)
        assert plane.windowed_counter("w").window_s == 0.25
        assert (
            plane.windowed_counter("s", clock="sim").window_s == 20.0
        )

    def test_instruments_sorted_and_filterable(self):
        plane = TelemetryPlane()
        plane.windowed_gauge("b", clock="sim")
        plane.windowed_counter("a")
        sim = plane.instruments(clock="sim")
        assert [i.name for i in sim] == ["b"]
        assert isinstance(sim[0], WindowedGauge)


class TestSnapshot:
    def test_sections_keyed_by_series(self):
        plane = TelemetryPlane()
        plane.windowed_counter("c", [("tenant", "acme")]).inc(ts_s=0.0)
        plane.windowed_histogram("h").observe(1.0, ts_s=0.0)
        snap = plane.snapshot()
        assert 'c{tenant="acme"}' in snap["counters"]
        assert "h" in snap["histograms"]
        assert "events" in snap and "slo" in snap and "drift" in snap

    def test_clock_filtered_snapshot_omits_wall_state(self):
        plane = TelemetryPlane()
        plane.windowed_counter("wall-side").inc(ts_s=0.0)
        plane.windowed_counter("sim-side", clock="sim").inc(ts_s=0.0)
        snap = plane.snapshot(clock="sim")
        assert list(snap["counters"]) == ["sim-side"]
        # Events/SLO/drift are cross-clock: only the unfiltered
        # snapshot reports them.
        assert "events" not in snap

    def test_slo_and_drift_ride_along(self):
        plane = TelemetryPlane(
            drift=DriftConfig(
                baseline_window=1, window=2, min_samples=1
            )
        )
        tracker = plane.slo_tracker(
            SloPolicy(latency_target_ms=1.0, min_samples=1, window=2)
        )
        tracker.record("acme", 9.0, ts_s=0.0)
        plane.drift.record(0.1, ts_s=0.0)
        plane.drift.record(0.9, ts_s=1.0)
        snap = plane.snapshot()
        assert snap["slo"][0]["tenant"] == "acme"
        assert snap["slo"][0]["alerting"] is True
        assert snap["drift"]["drifting"] is True
        assert snap["events"] == {
            "cost_model_drift": 1,
            "slo_burn": 1,
        }

    def test_wall_now_is_monotone_and_relative(self):
        plane = TelemetryPlane()
        first = plane.wall_now()
        second = plane.wall_now()
        assert 0.0 <= first <= second < 60.0


class TestSerialParallelByteIdentity:
    """The tentpole determinism property, on a real session workload."""

    QUERIES = ("Q12", "Q3", "Q2", "All", "Q3", "Q12")

    @staticmethod
    def _sim_snapshot(parallel):
        session = RaqoSession(scale_factor=10)
        session.workload(
            TestSerialParallelByteIdentity.QUERIES, parallel=parallel
        )
        return json.dumps(
            session.telemetry_snapshot(clock="sim"), sort_keys=True
        )

    def test_workload_sim_snapshots_are_byte_identical(self):
        serial = self._sim_snapshot(parallel=1)
        threaded = self._sim_snapshot(parallel=4)
        assert serial == threaded
        # And the snapshot is not trivially empty.
        payload = json.loads(serial)
        assert payload["counters"]
        assert payload["histograms"]
