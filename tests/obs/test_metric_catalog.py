"""Meta-test: every emitted metric name is documented, and vice versa.

AST-scans ``src/`` for instrument registrations and compares the
emitted names against ``docs/metrics_catalog.md``.  Two failure modes:

- **undocumented** -- a name emitted in the source is missing from the
  catalog (you added a metric; document it);
- **stale** -- a catalog entry no longer corresponds to anything the
  source emits (you removed or renamed a metric; prune the doc).

Names built with f-strings (the plan cache's ``f"{prefix}.hits"``)
are matched structurally: the constant fragments become a pattern that
catalog entries may satisfy.
"""

import ast
import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
CATALOG = REPO / "docs" / "metrics_catalog.md"

#: Instrument-registration methods whose first argument is the name.
INSTRUMENT_METHODS = {
    "counter",
    "gauge",
    "histogram",
    "windowed_counter",
    "windowed_gauge",
    "windowed_histogram",
}

#: Exposition-only gauges register through prometheus_name(...) calls.
NAME_FUNCTIONS = {"prometheus_name"}


def _fstring_pattern(node: ast.JoinedStr) -> str:
    """A regex matching every possible rendering of the f-string."""
    parts = []
    for piece in node.values:
        if isinstance(piece, ast.Constant):
            parts.append(re.escape(str(piece.value)))
        else:
            parts.append(r"[^\s]+")
    return "^" + "".join(parts) + "$"


def scan_emitted():
    """(literal names, f-string patterns) registered under ``src/``."""
    literals = set()
    patterns = set()
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            method = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if method is None:
                continue
            first = node.args[0]
            if method in INSTRUMENT_METHODS | NAME_FUNCTIONS:
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    literals.add(first.value)
                elif isinstance(first, ast.JoinedStr):
                    patterns.add(_fstring_pattern(first))
            elif method == "increment_many" and isinstance(
                first, ast.Dict
            ):
                for key in first.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        literals.add(key.value)
    # prometheus_name() is also applied to already-collected dotted
    # names inside the encoder; only dotted literals are metric names.
    literals = {name for name in literals if "." in name}
    return literals, patterns


def documented_names():
    """Backticked dotted names from the catalog's tables."""
    text = CATALOG.read_text(encoding="utf-8")
    names = set()
    for line in text.splitlines():
        if not line.startswith("|"):
            continue
        match = re.match(r"\|\s*`([a-z0-9_.]+)`\s*\|", line)
        if match and "." in match.group(1):
            names.add(match.group(1))
    return names


def test_catalog_exists_and_is_nonempty():
    assert CATALOG.exists(), f"missing {CATALOG}"
    assert len(documented_names()) >= 30


def test_every_emitted_metric_is_documented():
    literals, _ = scan_emitted()
    documented = documented_names()
    undocumented = sorted(literals - documented)
    assert not undocumented, (
        "metrics emitted in src/ but missing from "
        f"docs/metrics_catalog.md: {undocumented}; document them "
        "(kind, clock, one-line description)"
    )


def test_no_stale_catalog_entries():
    literals, patterns = scan_emitted()
    compiled = [re.compile(pattern) for pattern in patterns]
    stale = sorted(
        name
        for name in documented_names()
        if name not in literals
        and not any(regex.match(name) for regex in compiled)
    )
    assert not stale, (
        "docs/metrics_catalog.md lists metrics no longer emitted in "
        f"src/: {stale}; prune or rename the entries"
    )


def test_fstring_registrations_are_covered():
    """The dynamic cache prefix resolves to documented names."""
    _, patterns = scan_emitted()
    documented = documented_names()
    for pattern in patterns:
        regex = re.compile(pattern)
        assert any(regex.match(name) for name in documented), (
            f"no catalog entry matches dynamic metric {pattern!r}"
        )
