"""Null-tracer identity: tracing must never change what is computed.

A traced run and an untraced run of the same seeded query must produce
bit-identical planning and execution results -- the only permitted
difference is the :attr:`AttemptRecord.span_id` back-reference, which is
``None`` when no tracer recorded the attempt.
"""

import dataclasses

import pytest

from repro.catalog import tpch
from repro.core.raqo import RaqoPlanner
from repro.engine.executor import execute_plan
from repro.engine.profiles import HIVE_PROFILE
from repro.faults.model import FaultPlan, FaultSpec
from repro.faults.recovery import DEFAULT_RECOVERY
from repro.obs.tracing import NULL_TRACER, Tracer


@pytest.fixture(scope="module")
def catalog():
    return tpch.tpch_catalog(100)


@pytest.fixture(scope="module")
def queries(catalog):
    return [q for q in tpch.EVALUATION_QUERIES[:4]]


FAULTS = FaultPlan(FaultSpec.parse("seed=3,oom=0.25,preempt=0.15"))


def _scrub_span_ids(execution):
    """The execution result with span back-references nulled out."""
    joins = tuple(
        dataclasses.replace(
            join,
            attempts=tuple(
                dataclasses.replace(attempt, span_id=None)
                for attempt in join.attempts
            ),
        )
        for join in execution.joins
    )
    return dataclasses.replace(execution, joins=joins)


def _run(catalog, query, tracer):
    planner = RaqoPlanner.default(catalog, tracer=tracer)
    planning = planner.optimize(query)
    execution = execute_plan(
        planning.plan,
        planner.estimator,
        HIVE_PROFILE,
        faults=FAULTS,
        recovery=DEFAULT_RECOVERY,
        tracer=tracer,
    )
    return planning, execution


class TestNullTracerIdentity:
    def test_traced_and_untraced_runs_match(self, catalog, queries):
        for query in queries:
            untraced_plan, untraced_exec = _run(
                catalog, query, NULL_TRACER
            )
            traced_plan, traced_exec = _run(
                catalog, query, Tracer(seed=0)
            )
            assert traced_plan.plan == untraced_plan.plan
            assert traced_plan.cost == untraced_plan.cost
            assert _scrub_span_ids(traced_exec) == _scrub_span_ids(
                untraced_exec
            )

    def test_untraced_attempts_have_no_span_ids(self, catalog, queries):
        _, execution = _run(catalog, queries[0], NULL_TRACER)
        for join in execution.joins:
            for attempt in join.attempts:
                assert attempt.span_id is None

    def test_traced_attempts_reference_recorded_spans(
        self, catalog, queries
    ):
        tracer = Tracer(seed=0)
        faulted = None
        for query in queries:
            tracer.clear()
            _, execution = _run(catalog, query, tracer)
            if any(join.attempts for join in execution.joins):
                faulted = execution
                break
        assert faulted is not None, "no query produced attempt records"
        recorded = {span.span_id for span in tracer.spans()}
        for join in faulted.joins:
            for attempt in join.attempts:
                assert attempt.span_id in recorded

    def test_execution_errors_carry_trace_context(self, catalog):
        from repro.engine.executor import ExecutionError

        error = ExecutionError("boom", span_id="a" * 16, trace_id="b" * 16)
        assert error.span_id == "a" * 16
        assert error.trace_id == "b" * 16
