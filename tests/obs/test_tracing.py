"""Tests for repro.obs.tracing: deterministic IDs, nesting, null path."""

import threading

from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    SpanHandle,
    Tracer,
)


class TestSpanIdentity:
    def test_same_seed_same_path_same_id(self):
        first = Tracer(seed=7)
        second = Tracer(seed=7)
        with first.span("run", kind="engine") as a:
            pass
        with second.span("run", kind="engine") as b:
            pass
        assert a.span_id == b.span_id
        assert a.trace_id == b.trace_id

    def test_different_seed_different_id(self):
        first = Tracer(seed=7)
        second = Tracer(seed=8)
        with first.span("run") as a:
            pass
        with second.span("run") as b:
            pass
        assert a.span_id != b.span_id
        assert a.trace_id != b.trace_id

    def test_sibling_ordinals_disambiguate(self):
        tracer = Tracer(seed=0)
        with tracer.span("workload") as root:
            with tracer.span("stage") as s0:
                pass
            with tracer.span("stage") as s1:
                pass
        assert s0.path == (root.path[0], "stage[0]")
        assert s1.path == (root.path[0], "stage[1]")
        assert s0.span_id != s1.span_id

    def test_explicit_key_fixes_the_path_component(self):
        tracer = Tracer(seed=0)
        with tracer.span("workload") as root:
            span = tracer.span("query", parent=root, key="3")
            with span:
                pass
        assert span.path[-1] == "query[3]"

    def test_keyed_ids_do_not_depend_on_creation_order(self):
        forward = Tracer(seed=5)
        with forward.span("workload", key="w") as root:
            for key in ("0", "1", "2"):
                with forward.span("query", parent=root, key=key):
                    pass
        backward = Tracer(seed=5)
        with backward.span("workload", key="w") as root:
            for key in ("2", "1", "0"):
                with backward.span("query", parent=root, key=key):
                    pass
        forward_ids = {s.path: s.span_id for s in forward.spans()}
        backward_ids = {s.path: s.span_id for s in backward.spans()}
        assert forward_ids == backward_ids

    def test_span_ids_are_sixteen_hex_chars(self):
        tracer = Tracer(seed=123)
        with tracer.span("plan") as span:
            pass
        assert len(span.span_id) == 16
        int(span.span_id, 16)  # must parse as hex


class TestNesting:
    def test_implicit_parenting_uses_the_entered_span(self):
        tracer = Tracer(seed=0)
        with tracer.span("run") as outer:
            with tracer.span("stage") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        assert inner.parent_id == outer.span_id

    def test_thread_local_stacks_are_independent(self):
        tracer = Tracer(seed=0)
        seen = {}

        def worker():
            seen["current"] = tracer.current_span()

        with tracer.span("run"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["current"] is None

    def test_spans_sorted_by_path(self):
        tracer = Tracer(seed=0)
        with tracer.span("b"):
            pass
        with tracer.span("a"):
            pass
        names = [span.path for span in tracer.spans()]
        assert names == sorted(names)

    def test_clear_resets_spans_and_ordinals(self):
        tracer = Tracer(seed=0)
        with tracer.span("run") as first:
            pass
        tracer.clear()
        assert len(tracer) == 0
        with tracer.span("run") as again:
            pass
        assert again.span_id == first.span_id


class TestSpanPayload:
    def test_attributes_and_events_round_trip(self):
        tracer = Tracer(seed=0)
        with tracer.span("stage", kind="engine") as span:
            span.set_attribute("algorithm", "BHJ")
            span.set_attributes({"num_containers": 10})
            span.event("fault", sim_time_s=1.5, attributes={"kind": "oom"})
            span.set_sim_window(0.0, 4.0)
        payload = span.to_dict()
        assert payload["attributes"] == {
            "algorithm": "BHJ",
            "num_containers": 10,
        }
        assert payload["events"][0]["name"] == "fault"
        assert payload["events"][0]["sim_time_s"] == 1.5
        assert payload["sim_start_s"] == 0.0
        assert payload["sim_end_s"] == 4.0

    def test_wall_clock_is_recorded_on_enter_exit(self):
        tracer = Tracer(seed=0)
        with tracer.span("plan", kind="planner") as span:
            pass
        assert span.wall_start_s is not None
        assert span.wall_end_s is not None
        assert span.wall_end_s >= span.wall_start_s


class TestNullTracer:
    def test_null_tracer_is_inactive_and_allocation_free(self):
        assert NULL_TRACER.active is False
        assert NULL_TRACER.span("anything") is NULL_SPAN
        assert NULL_TRACER.current_span() is None

    def test_null_span_accepts_the_full_surface(self):
        span = NULL_TRACER.span("run")
        with span as entered:
            entered.set_attribute("k", 1)
            entered.set_attributes({"a": 2})
            entered.event("fault", sim_time_s=1.0)
            entered.set_sim_window(0.0, 1.0)
        assert span.active is False
        assert span.span_id == ""

    def test_real_span_is_a_span_handle(self):
        tracer = Tracer(seed=0)
        with tracer.span("run") as span:
            pass
        assert isinstance(span, SpanHandle)
        assert isinstance(span, Span)
        assert span.active is True

    def test_fresh_null_tracer_is_also_inactive(self):
        assert NullTracer().active is False
