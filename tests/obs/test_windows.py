"""Windowed instruments: bucketing, aggregates, order-independence.

The windowed layer's contract is that every per-bucket aggregate is a
pure function of the *set* of observations, never their order -- the
substrate of the serial==parallel snapshot byte-identity property.
"""

import json
import math
import random
import threading

import pytest

from repro.obs.windows import (
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
    exact_quantile,
    labels_key,
    normalize_labels,
)


class TestLabels:
    def test_normalize_sorts_and_stringifies(self):
        labels = normalize_labels([("b", 2), ("a", "x")])
        assert labels == (("a", "x"), ("b", "2"))

    def test_normalize_dedups_last_wins(self):
        labels = normalize_labels([("a", "1"), ("a", "2")])
        assert labels == (("a", "2"),)

    def test_none_and_empty_are_empty(self):
        assert normalize_labels(None) == ()
        assert normalize_labels([]) == ()

    def test_labels_key_rendering(self):
        assert labels_key(()) == ""
        assert labels_key((("a", "1"), ("b", "x"))) == '{a="1",b="x"}'


class TestExactQuantile:
    def test_empty_is_nan(self):
        assert math.isnan(exact_quantile([], 0.5))

    def test_nearest_rank(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert exact_quantile(ordered, 0.50) == 2.0
        assert exact_quantile(ordered, 0.95) == 4.0
        assert exact_quantile(ordered, 0.0) == 1.0
        assert exact_quantile(ordered, 1.0) == 4.0


class TestWindowedCounter:
    def test_rejects_bad_clock_and_window(self):
        with pytest.raises(ValueError, match="clock"):
            WindowedCounter("c", clock="cpu")
        with pytest.raises(ValueError, match="window_s"):
            WindowedCounter("c", window_s=0.0)

    def test_rejects_negative_amounts(self):
        counter = WindowedCounter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1, ts_s=0.0)

    def test_buckets_by_timestamp(self):
        counter = WindowedCounter("c", window_s=10.0)
        counter.inc(ts_s=0.0)
        counter.inc(ts_s=9.999)
        counter.inc(2, ts_s=10.0)
        snap = counter.snapshot()
        assert counter.total == 4
        assert snap["total"] == 4
        assert snap["windows"] == [
            {"window": 0, "start_s": 0.0, "count": 2, "rate_per_s": 0.2},
            {"window": 1, "start_s": 10.0, "count": 2, "rate_per_s": 0.2},
        ]

    def test_snapshot_last_caps_trailing_windows(self):
        counter = WindowedCounter("c", window_s=1.0)
        for ts in (0.5, 1.5, 2.5):
            counter.inc(ts_s=ts)
        windows = counter.snapshot(last=2)["windows"]
        assert [w["window"] for w in windows] == [1, 2]

    def test_series_includes_labels(self):
        counter = WindowedCounter(
            "c", labels=normalize_labels([("tenant", "acme")])
        )
        assert counter.series == 'c{tenant="acme"}'


class TestWindowedGauge:
    def test_min_max_mean_per_bucket(self):
        gauge = WindowedGauge("g", window_s=10.0)
        for value in (1.0, 3.0, 2.0):
            gauge.record(value, ts_s=5.0)
        (window,) = gauge.snapshot()["windows"]
        assert window["samples"] == 3
        assert window["min"] == 1.0
        assert window["max"] == 3.0
        assert window["mean"] == 2.0

    def test_latest_is_mean_of_most_recent_bucket(self):
        gauge = WindowedGauge("g", window_s=1.0)
        assert math.isnan(gauge.latest())
        gauge.record(10.0, ts_s=0.0)
        gauge.record(2.0, ts_s=5.0)
        gauge.record(4.0, ts_s=5.2)
        assert gauge.latest() == 3.0


class TestWindowedHistogram:
    def test_summary_over_all_windows(self):
        histogram = WindowedHistogram("h", window_s=1.0)
        for index in range(1, 101):
            histogram.observe(float(index), ts_s=index / 50.0)
        summary = histogram.summary()
        assert summary["count"] == 100.0
        assert summary["sum"] == 5050.0
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] == 50.0
        assert summary["p95"] == 95.0
        assert summary["p99"] == 99.0

    def test_empty_summary(self):
        assert WindowedHistogram("h").summary() == {"count": 0.0}

    def test_snapshot_has_per_window_distributions(self):
        histogram = WindowedHistogram("h", window_s=10.0)
        histogram.observe(1.0, ts_s=0.0)
        histogram.observe(5.0, ts_s=15.0)
        snap = histogram.snapshot()
        assert [w["window"] for w in snap["windows"]] == [0, 1]
        assert snap["windows"][1]["p50"] == 5.0
        assert snap["summary"]["count"] == 2.0


class TestOrderIndependence:
    """Shuffled or threaded recording yields byte-identical snapshots."""

    @staticmethod
    def _observations(count=400, seed=7):
        rng = random.Random(seed)
        return [
            (rng.uniform(0.0, 50.0), rng.uniform(0.1, 100.0))
            for _ in range(count)
        ]

    def test_shuffled_observations_snapshot_identically(self):
        observations = self._observations()
        shuffled = list(observations)
        random.Random(11).shuffle(shuffled)
        snapshots = []
        for sequence in (observations, shuffled):
            histogram = WindowedHistogram("h", clock="sim", window_s=5.0)
            for ts, value in sequence:
                histogram.observe(value, ts_s=ts)
            snapshots.append(
                json.dumps(histogram.snapshot(), sort_keys=True)
            )
        assert snapshots[0] == snapshots[1]

    def test_threaded_recording_snapshots_identically(self):
        observations = self._observations()
        serial = WindowedHistogram("h", clock="sim", window_s=5.0)
        for ts, value in observations:
            serial.observe(value, ts_s=ts)

        threaded = WindowedHistogram("h", clock="sim", window_s=5.0)
        chunk = len(observations) // 4

        def worker(part):
            for ts, value in part:
                threaded.observe(value, ts_s=ts)

        threads = [
            threading.Thread(
                target=worker,
                args=(observations[i * chunk : (i + 1) * chunk],),
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert json.dumps(serial.snapshot(), sort_keys=True) == json.dumps(
            threaded.snapshot(), sort_keys=True
        )

    def test_counter_threaded_totals_reconcile(self):
        counter = WindowedCounter("c", window_s=1.0)

        def worker():
            for index in range(500):
                counter.inc(ts_s=index / 100.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = counter.snapshot()
        assert counter.total == 2000
        assert sum(w["count"] for w in snap["windows"]) == 2000
