"""Tests for repro.obs.metrics."""

import math
import threading

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("planning.queries")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_increment_many_bulk_updates(self):
        registry = MetricsRegistry()
        registry.increment_many({"a": 2, "b": 3})
        registry.increment_many({"a": 1})
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 3, "b": 3}


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("free_gb")
        gauge.set(10.0)
        gauge.add(-2.5)
        assert gauge.value == 7.5


class TestHistogram:
    def test_summary_fields(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4.0
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert summary["p50"] == 2.0

    def test_empty_summary_and_quantile(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.summary() == {"count": 0.0}
        assert math.isnan(histogram.quantile(0.5))

    def test_quantile_bounds_checked(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_nearest_rank_quantiles(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(0.5) == 50.0
        assert histogram.quantile(0.95) == 95.0
        assert histogram.quantile(1.0) == 100.0

    def test_values_preserve_recording_order(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(3.0)
        histogram.observe(1.0)
        assert histogram.values == (3.0, 1.0)


class TestRegistrySnapshots:
    def test_snapshot_is_sorted_and_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(2.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # must serialize without a custom encoder

    def test_identical_updates_snapshot_identically(self):
        def build():
            registry = MetricsRegistry()
            registry.increment_many({"x": 1, "y": 2})
            registry.histogram("h").observe(1.0)
            return registry.snapshot()

        assert build() == build()

    def test_render_text_mentions_every_section(self):
        registry = MetricsRegistry()
        registry.counter("planning.queries").inc()
        registry.gauge("free_gb").set(4.0)
        registry.histogram("h").observe(1.0)
        text = registry.render_text("metrics")
        assert "counters:" in text
        assert "planning.queries = 1" in text
        assert "gauges:" in text
        assert "histograms:" in text

    def test_render_text_empty_registry(self):
        assert "(no metrics recorded)" in MetricsRegistry().render_text()

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestHistogramSummaryConsistency:
    """Regression: summary() reads everything under one lock snapshot.

    The old implementation computed count/sum from one copy of the
    values, then re-acquired the lock per quantile against the *live*
    list -- so a concurrent observer could make ``p50`` describe more
    observations than ``count``.  Now the whole summary derives from a
    single copied snapshot.
    """

    def test_summary_is_internally_consistent_under_writes(self):
        histogram = MetricsRegistry().histogram("h")

        def writer():
            # Every observation is 7.0, so any *consistent* summary
            # must satisfy sum == 7 * count and p50 == p95 == 7.
            for _ in range(5000):
                histogram.observe(7.0)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        while any(thread.is_alive() for thread in threads):
            summary = histogram.summary()
            if summary == {"count": 0.0}:
                continue
            assert summary["sum"] == 7.0 * summary["count"]
            assert summary["mean"] == 7.0
            assert summary["p50"] == 7.0
            assert summary["p95"] == 7.0
        for thread in threads:
            thread.join()
        assert histogram.summary()["count"] == 20000.0

    def test_summary_quantiles_match_quantile_method(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (5.0, 1.0, 9.0, 3.0, 7.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["p50"] == histogram.quantile(0.5)
        assert summary["p95"] == histogram.quantile(0.95)
