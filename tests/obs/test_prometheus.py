"""Prometheus exposition: encoder, golden snapshot, parser, endpoint."""

import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (
    MetricsServer,
    parse_exposition,
    parse_metrics_addr,
    prometheus_exposition,
    prometheus_name,
    write_stats_file,
)
from repro.obs.slo import SloPolicy
from repro.obs.telemetry import TelemetryPlane

GOLDEN = Path(__file__).parent / "golden" / "exposition.prom"


def _fixture_plane():
    """A small, fully deterministic registry + plane."""
    metrics = MetricsRegistry()
    metrics.counter("planning.queries").inc(3)
    metrics.gauge("cluster.free_gb").set(12.5)
    histogram = metrics.histogram("planning.wall_ms")
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)

    plane = TelemetryPlane(metrics=metrics)
    plane.windowed_counter(
        "serving.tenant.admitted", [("tenant", "acme")]
    ).inc(5, ts_s=0.25)
    plane.windowed_gauge(
        "cluster.memory_in_use_gb", clock="sim"
    ).record(40.0, ts_s=3.0)
    latency = plane.windowed_histogram(
        "serving.tenant.latency_ms", [("tenant", "acme")]
    )
    for value in (10.0, 20.0, 30.0):
        latency.observe(value, ts_s=0.25)
    tracker = plane.slo_tracker(
        SloPolicy(latency_target_ms=15.0, window=4, min_samples=2)
    )
    tracker.record("acme", 10.0, ts_s=0.1)
    tracker.record("acme", 20.0, ts_s=0.2)
    for error in (0.1, 0.1):
        plane.drift.record(error, ts_s=0.0)
    return metrics, plane


class TestName:
    def test_namespacing_and_mangling(self):
        assert (
            prometheus_name("serving.tenant.latency_ms")
            == "raqo_serving_tenant_latency_ms"
        )

    def test_hostile_characters_flattened(self):
        assert prometheus_name("a-b c") == "raqo_a_b_c"


class TestGoldenExposition:
    def test_exposition_matches_golden(self):
        """The encoder's full output, pinned byte for byte.

        Regenerate after intentional format changes::

            PYTHONPATH=src python tests/obs/test_prometheus.py
        """
        metrics, plane = _fixture_plane()
        text = prometheus_exposition(metrics, plane)
        assert text == GOLDEN.read_text(encoding="utf-8")

    def test_exposition_parses_cleanly(self):
        metrics, plane = _fixture_plane()
        parsed = parse_exposition(prometheus_exposition(metrics, plane))
        assert parsed.value("raqo_planning_queries_total") == 3.0
        assert parsed.value("raqo_cluster_free_gb") == 12.5
        assert (
            parsed.value(
                "raqo_serving_tenant_admitted_total", tenant="acme"
            )
            == 5.0
        )
        assert (
            parsed.value(
                "raqo_serving_tenant_latency_ms",
                quantile="0.5",
                tenant="acme",
            )
            == 20.0
        )
        assert parsed.value(
            "raqo_slo_burn_rate", tenant="acme"
        ) == pytest.approx(10.0)
        assert parsed.types["raqo_planning_wall_ms"] == "summary"

    def test_windowed_counter_exposes_last_window_rate(self):
        _, plane = _fixture_plane()
        parsed = parse_exposition(prometheus_exposition(plane=plane))
        # 5 events in one 0.5 s window => 10/s.
        assert (
            parsed.value(
                "raqo_serving_tenant_admitted_rate_per_s",
                tenant="acme",
            )
            == 10.0
        )


class TestWriteStatsFile:
    def test_writes_and_returns_text(self, tmp_path):
        metrics, plane = _fixture_plane()
        path = tmp_path / "stats.prom"
        text = write_stats_file(path, metrics, plane)
        assert path.read_text(encoding="utf-8") == text
        assert parse_exposition(text).samples


class TestParser:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no preceding TYPE"):
            parse_exposition("raqo_x 1\n")

    def test_duplicate_family_rejected(self):
        text = (
            "# TYPE raqo_x counter\nraqo_x 1\n"
            "# TYPE raqo_x counter\n"
        )
        with pytest.raises(ValueError, match="declared twice"):
            parse_exposition(text)

    def test_malformed_labels_rejected(self):
        text = '# TYPE raqo_x gauge\nraqo_x{tenant=acme} 1\n'
        with pytest.raises(ValueError, match="malformed labels"):
            parse_exposition(text)

    def test_bad_value_rejected(self):
        text = "# TYPE raqo_x gauge\nraqo_x one\n"
        with pytest.raises(ValueError, match="bad sample value"):
            parse_exposition(text)

    def test_summary_children_resolve_to_family(self):
        text = (
            "# TYPE raqo_h summary\n"
            'raqo_h{quantile="0.5"} 2\n'
            "raqo_h_sum 10\n"
            "raqo_h_count 4\n"
        )
        parsed = parse_exposition(text)
        assert [s.kind for s in parsed.samples] == ["summary"] * 3


class TestMetricsAddr:
    def test_host_port(self):
        assert parse_metrics_addr("0.0.0.0:9100") == ("0.0.0.0", 9100)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_metrics_addr(":0") == ("127.0.0.1", 0)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_metrics_addr("9100")
        with pytest.raises(ValueError, match="invalid port"):
            parse_metrics_addr("localhost:http")


class TestMetricsServer:
    def test_scrape_round_trip(self):
        metrics, plane = _fixture_plane()

        def render():
            return prometheus_exposition(metrics, plane)

        with MetricsServer("127.0.0.1", 0, render) as server:
            host, port = server.address
            body = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ).read()
        parsed = parse_exposition(body.decode("utf-8"))
        assert parsed.value("raqo_planning_queries_total") == 3.0

    def test_other_paths_404(self):
        with MetricsServer("127.0.0.1", 0, lambda: "") as server:
            host, port = server.address
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=10
                )


if __name__ == "__main__":
    metrics, plane = _fixture_plane()
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(
        prometheus_exposition(metrics, plane), encoding="utf-8"
    )
    print(f"regenerated {GOLDEN}")
