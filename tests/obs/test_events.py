"""The unified event log: ordering, JSONL export, span harvesting."""

import json

import pytest

from repro.obs.events import EventLog, TelemetryEvent
from repro.obs.tracing import Tracer


class TestEmit:
    def test_rejects_unknown_clock(self):
        log = EventLog()
        with pytest.raises(ValueError, match="clock"):
            log.emit("x", 0.0, clock="cpu")

    def test_sequences_events(self):
        log = EventLog()
        first = log.emit("a", 1.0)
        second = log.emit("b", 0.5)
        assert (first.seq, second.seq) == (0, 1)
        assert len(log) == 2

    def test_export_order_is_deterministic(self):
        log = EventLog()
        log.emit("late", 2.0, clock="wall")
        log.emit("sim-event", 100.0, clock="sim")
        log.emit("early", 1.0, clock="wall")
        names = [event.name for event in log.events()]
        # sim sorts before wall (clock domain first), then timestamp.
        assert names == ["sim-event", "early", "late"]

    def test_counts_by_name(self):
        log = EventLog()
        log.emit("a", 0.0)
        log.emit("a", 1.0)
        log.emit("b", 2.0)
        assert log.counts() == {"a": 2, "b": 1}


class TestJsonl:
    def test_round_trips_through_json(self, tmp_path):
        log = EventLog()
        log.emit(
            "rejection",
            1.5,
            tenant="acme",
            attributes={"queue_depth": 4, "request_id": 7},
        )
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(path) == 1
        (line,) = path.read_text().splitlines()
        record = json.loads(line)
        assert record["name"] == "rejection"
        assert record["tenant"] == "acme"
        assert record["attributes"] == {
            "queue_depth": 4,
            "request_id": 7,
        }

    def test_attributes_serialize_sorted(self):
        event = TelemetryEvent(
            name="x",
            ts_s=0.0,
            clock="wall",
            attributes={"b": 1, "a": 2},
        )
        assert list(event.to_dict()["attributes"]) == ["a", "b"]


class TestHarvest:
    @staticmethod
    def _traced():
        tracer = Tracer()
        with tracer.span("stage", kind="engine") as span:
            span.set_sim_window(0.0, 10.0)
            span.event("fault", sim_time_s=4.0, attributes={"kind": "oom"})
            span.event("retry", sim_time_s=5.0)
        return tracer

    def test_lifts_span_events_with_span_ids(self):
        log = EventLog()
        assert log.harvest_tracer(self._traced()) == 2
        events = log.events()
        assert [event.name for event in events] == ["fault", "retry"]
        assert all(event.clock == "sim" for event in events)
        assert all(event.span_id for event in events)
        assert events[0].ts_s == 4.0
        assert events[0].attributes["kind"] == "oom"

    def test_harvest_is_idempotent(self):
        log = EventLog()
        tracer = self._traced()
        assert log.harvest_tracer(tracer) == 2
        assert log.harvest_tracer(tracer) == 0
        assert len(log) == 2

    def test_clear_resets_harvest_bookkeeping(self):
        log = EventLog()
        tracer = self._traced()
        log.harvest_tracer(tracer)
        log.clear()
        assert len(log) == 0
        assert log.harvest_tracer(tracer) == 2
