"""The ``repro top`` dashboard renderer: strict loading, stable panes."""

import pytest

from repro.obs.dashboard import (
    load_events_jsonl,
    render_dashboard,
    render_dashboard_from_files,
)
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import prometheus_exposition


def _sample_events(tmp_path):
    log = EventLog()
    log.emit("admission", 0.1, tenant="acme")
    log.emit("rejection", 0.2, tenant="acme", attributes={"queue_depth": 4})
    log.emit("slo_burn", 0.3, tenant="hooli")
    path = tmp_path / "events.jsonl"
    log.write_jsonl(path)
    return path


class TestLoadEvents:
    def test_loads_written_log(self, tmp_path):
        events = load_events_jsonl(_sample_events(tmp_path))
        assert [e["name"] for e in events] == [
            "admission",
            "rejection",
            "slo_burn",
        ]

    def test_rejects_non_json_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "ts_s": 0}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_events_jsonl(path)

    def test_rejects_non_event_records(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('["not", "an", "event"]\n')
        with pytest.raises(ValueError, match="not a telemetry event"):
            load_events_jsonl(path)


class TestRender:
    def test_all_panes_render(self, tmp_path):
        events = load_events_jsonl(_sample_events(tmp_path))
        metrics = MetricsRegistry()
        metrics.counter("planning.queries").inc(7)
        text = render_dashboard(
            events, prometheus_exposition(metrics)
        )
        assert "repro top" in text
        assert "slo_burn" in text
        assert "tenant=hooli" in text  # the alert pane
        assert "raqo_planning_queries_total = 7" in text
        # Tenant table counts rejections per tenant.
        assert "acme" in text and "hooli" in text

    def test_missing_inputs_are_noted(self):
        text = render_dashboard(None, None)
        assert "(no event log)" in text
        assert "(no stats file)" in text

    def test_metric_limit_reports_hidden_series(self):
        metrics = MetricsRegistry()
        for index in range(25):
            metrics.counter(f"c{index:02d}").inc()
        text = render_dashboard(
            [], prometheus_exposition(metrics), metric_limit=20
        )
        assert "(5 more series)" in text

    def test_rendering_is_deterministic(self, tmp_path):
        events = load_events_jsonl(_sample_events(tmp_path))
        metrics = MetricsRegistry()
        metrics.counter("a").inc()
        stats = prometheus_exposition(metrics)
        assert render_dashboard(events, stats) == render_dashboard(
            events, stats
        )


class TestRenderFromFiles:
    def test_reads_both_files(self, tmp_path):
        events_path = _sample_events(tmp_path)
        stats_path = tmp_path / "stats.prom"
        metrics = MetricsRegistry()
        metrics.gauge("cluster.free_gb").set(3.0)
        stats_path.write_text(prometheus_exposition(metrics))
        text = render_dashboard_from_files(events_path, stats_path)
        assert "rejection" in text
        assert "raqo_cluster_free_gb = 3" in text

    def test_missing_files_render_empty_panes(self, tmp_path):
        text = render_dashboard_from_files(
            tmp_path / "absent.jsonl", tmp_path / "absent.prom"
        )
        assert "(no event log)" in text
        assert "(no stats file)" in text
