"""Cost-model drift monitoring: baselines, ratios, edge alerts."""

import math

import pytest

from repro.obs.drift import DriftConfig, DriftMonitor
from repro.obs.events import EventLog


def _monitor(**config):
    log = EventLog()
    defaults = dict(
        baseline_window=4, window=4, threshold=0.5, min_samples=2
    )
    defaults.update(config)
    return DriftMonitor(DriftConfig(**defaults), events=log), log


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="baseline_window"):
            DriftConfig(baseline_window=0)
        with pytest.raises(ValueError, match="threshold"):
            DriftConfig(threshold=0.0)


class TestBaseline:
    def test_first_observations_freeze_the_baseline(self):
        monitor, _ = _monitor()
        for error in (0.1, 0.2, 0.3, 0.4):
            assert monitor.record(error, ts_s=0.0) is None
        status = monitor.status()
        assert status.baseline_mean == pytest.approx(0.25)
        assert math.isnan(status.rolling_mean)
        assert status.drifting is False

    def test_non_finite_errors_are_ignored(self):
        monitor, _ = _monitor()
        assert monitor.record(math.inf, ts_s=0.0) is None
        assert monitor.record(math.nan, ts_s=0.0) is None
        assert monitor.status().observations == 0


class TestDriftAlerts:
    def test_drift_fires_on_the_edge_only(self):
        monitor, log = _monitor()
        for _ in range(4):
            monitor.record(0.1, ts_s=0.0)
        # Rolling mean 0.4 vs baseline 0.1 => ratio 4.0 >= 1.5.
        assert monitor.record(0.4, ts_s=10.0) is None  # min_samples
        edge = monitor.record(0.4, ts_s=11.0)
        assert edge is not None and edge.name == "cost_model_drift"
        assert monitor.record(0.4, ts_s=12.0) is None
        assert log.counts() == {"cost_model_drift": 1}
        assert log.events()[0].clock == "sim"
        assert log.events()[0].attributes["ratio"] == pytest.approx(4.0)

    def test_recalibration_event_on_recovery(self):
        monitor, log = _monitor()
        for _ in range(4):
            monitor.record(0.1, ts_s=0.0)
        for ts in (1.0, 2.0):
            monitor.record(0.4, ts_s=ts)
        # Four calibrated observations flush the rolling window.
        edges = [
            monitor.record(0.1, ts_s=3.0 + i) for i in range(4)
        ]
        names = [e.name for e in edges if e is not None]
        assert names == ["cost_model_recalibrated"]
        assert log.counts() == {
            "cost_model_drift": 1,
            "cost_model_recalibrated": 1,
        }

    def test_zero_baseline_stays_finite(self):
        monitor, _ = _monitor()
        for _ in range(4):
            monitor.record(0.0, ts_s=0.0)
        monitor.record(0.5, ts_s=1.0)
        monitor.record(0.5, ts_s=2.0)
        status = monitor.status()
        assert math.isfinite(status.ratio)
        assert status.drifting is True


class TestStatus:
    def test_snapshot_nans_become_nulls(self):
        monitor = DriftMonitor()
        snap = monitor.snapshot()
        assert snap["baseline_mean"] is None
        assert snap["rolling_mean"] is None
        assert snap["ratio"] is None
        assert snap["drifting"] is False

    def test_determinism(self):
        def run():
            monitor, log = _monitor()
            errors = [0.1] * 4 + [0.3, 0.35, 0.1, 0.1, 0.1, 0.1, 0.4]
            for index, error in enumerate(errors):
                monitor.record(error, ts_s=float(index))
            return [(e.name, e.seq) for e in log.events()]

        assert run() == run()
