"""Tests for repro.obs.export: canonical tree, Chrome trace, JSONL."""

import json

import pytest

from repro.obs.export import (
    canonical_span_tree_json,
    chrome_trace,
    export_spans_jsonl,
    render_text_report,
    span_tree,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace_dir,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def _sample_tracer(seed=3):
    tracer = Tracer(seed=seed)
    with tracer.span("run", kind="engine") as run:
        run.set_sim_window(0.0, 10.0)
        run.set_attribute("stages", 2)
        with tracer.span("stage", kind="engine") as stage:
            stage.set_sim_window(0.0, 6.0)
            stage.set_attributes(
                {"num_containers": 10, "total_memory_gb": 40.0}
            )
            stage.event("fault", sim_time_s=2.0, attributes={"kind": "oom"})
        with tracer.span("stage", kind="engine") as stage:
            stage.set_sim_window(6.0, 10.0)
            stage.set_attributes(
                {"num_containers": 4, "total_memory_gb": 8.0}
            )
    with tracer.span("plan", kind="planner") as plan:
        plan.set_attribute("wall_planning_ms", 12.5)
        plan.set_attribute("configurations", 100)
    return tracer


class TestCanonicalTree:
    def test_tree_nests_children_under_parents(self):
        forest = span_tree(_sample_tracer())
        names = {node["name"] for node in forest}
        assert names == {"run", "plan"}
        run = next(n for n in forest if n["name"] == "run")
        assert [child["name"] for child in run["children"]] == [
            "stage",
            "stage",
        ]

    def test_tree_excludes_wall_clock_fields(self):
        forest = span_tree(_sample_tracer())
        plan = next(n for n in forest if n["name"] == "plan")
        assert "wall_planning_ms" not in plan["attributes"]
        assert plan["attributes"] == {"configurations": 100}
        for node in forest:
            assert "wall_start_s" not in node
            assert "wall_end_s" not in node

    def test_canonical_json_is_machine_independent(self):
        first = canonical_span_tree_json(_sample_tracer())
        second = canonical_span_tree_json(_sample_tracer())
        assert first == second

    def test_canonical_json_differs_across_seeds(self):
        assert canonical_span_tree_json(
            _sample_tracer(seed=1)
        ) != canonical_span_tree_json(_sample_tracer(seed=2))


class TestChromeTrace:
    def test_payload_validates_and_carries_lanes(self):
        payload = chrome_trace(_sample_tracer())
        validate_chrome_trace(payload)
        events = payload["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in metadata} == {
            "planner (wall clock)",
            "engine (simulated time)",
            "cluster (simulated time)",
        }
        complete = [e for e in events if e["ph"] == "X"]
        # Engine spans land on the simulated-time lane (pid 2),
        # planner spans on the wall-clock lane (pid 1).
        assert {e["pid"] for e in complete if e["cat"] == "engine"} == {2}
        assert {e["pid"] for e in complete if e["cat"] == "planner"} == {1}

    def test_instant_and_counter_events_present(self):
        payload = chrome_trace(_sample_tracer())
        events = payload["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert any(e["name"] == "fault" for e in instants)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "expected container-occupancy counter events"
        peaks = [e["args"]["containers"] for e in counters]
        assert max(peaks) == 10
        assert peaks[-1] == 0  # all containers released at the end

    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_sample_tracer(), path)
        loaded = json.loads(path.read_text())
        validate_chrome_trace(loaded)

    def test_metrics_attach_as_other_data(self):
        metrics = MetricsRegistry()
        metrics.counter("planning.queries").inc()
        payload = chrome_trace(_sample_tracer(), metrics=metrics)
        assert payload["otherData"]["metrics"]["counters"] == {
            "planning.queries": 1
        }


class TestChromeTraceValidation:
    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])

    def test_missing_trace_events_rejected(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_invalid_phase_rejected(self):
        payload = {
            "traceEvents": [
                {"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0}
            ]
        }
        with pytest.raises(ValueError, match="invalid phase"):
            validate_chrome_trace(payload)

    def test_negative_timestamp_rejected(self):
        payload = {
            "traceEvents": [
                {
                    "ph": "X",
                    "name": "x",
                    "pid": 1,
                    "tid": 1,
                    "ts": -1.0,
                    "dur": 1.0,
                }
            ]
        }
        with pytest.raises(ValueError, match="'ts' >= 0"):
            validate_chrome_trace(payload)

    def test_complete_event_requires_duration(self):
        payload = {
            "traceEvents": [
                {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0.0}
            ]
        }
        with pytest.raises(ValueError, match="'dur'"):
            validate_chrome_trace(payload)

    def test_missing_pid_rejected(self):
        payload = {
            "traceEvents": [{"ph": "M", "name": "process_name", "tid": 0}]
        }
        with pytest.raises(ValueError, match="'pid'"):
            validate_chrome_trace(payload)


class TestJsonlAndText:
    def test_jsonl_one_object_per_span(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "spans.jsonl"
        count = export_spans_jsonl(tracer, path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(tracer.spans())
        rows = [json.loads(line) for line in lines]
        assert all("span_id" in row for row in rows)
        paths = [tuple(row["path"]) for row in rows]
        assert paths == sorted(paths)

    def test_text_report_shows_tree_and_events(self):
        report = render_text_report(_sample_tracer())
        assert "run[0]" in report
        assert "stage[0]" in report
        assert "! fault @ sim 2.00s" in report

    def test_text_report_empty_tracer(self):
        assert "(no spans recorded)" in render_text_report(Tracer(seed=0))

    def test_trace_dir_bundle(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        written = write_trace_dir(
            _sample_tracer(), tmp_path / "bundle", metrics=metrics
        )
        assert set(written) == {"trace", "spans", "report", "metrics"}
        for path in written.values():
            assert path.exists()
        validate_chrome_trace(
            json.loads(written["trace"].read_text())
        )
        assert json.loads(written["metrics"].read_text())["counters"] == {
            "c": 1
        }
