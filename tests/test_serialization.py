"""Tests for repro.serialization."""

import pytest

from repro.catalog import tpch
from repro.cluster.containers import ResourceConfiguration
from repro.core.decision_tree import DecisionTreeClassifier
from repro.core.paper_models import PAPER_SMJ_MODEL
from repro.core.raqo import RaqoPlanner, default_cost_model
from repro.engine.joins import JoinAlgorithm
from repro.planner.plan import left_deep_plan, plan_signature
from repro.serialization import (
    SerializationError,
    cost_model_from_dict,
    cost_model_to_dict,
    load_json,
    plan_from_dict,
    plan_to_dict,
    save_json,
    tree_from_dict,
    tree_to_dict,
)


class TestPlanRoundTrip:
    def test_bare_plan(self):
        plan = left_deep_plan(("a", "b", "c"))
        rebuilt = plan_from_dict(plan_to_dict(plan))
        assert plan_signature(rebuilt) == plan_signature(plan)

    def test_joint_plan_keeps_resources(self):
        planner = RaqoPlanner.default(tpch.tpch_catalog(100))
        plan = planner.optimize(tpch.QUERY_Q3).plan
        rebuilt = plan_from_dict(plan_to_dict(plan))
        originals = [j.resources for j in plan.joins_postorder()]
        restored = [j.resources for j in rebuilt.joins_postorder()]
        assert originals == restored
        assert all(r is not None for r in restored)

    def test_algorithms_preserved(self):
        plan = left_deep_plan(
            ("a", "b"),
            algorithms=(JoinAlgorithm.BROADCAST_HASH,),
        )
        rebuilt = plan_from_dict(plan_to_dict(plan))
        [join] = rebuilt.joins_postorder()
        assert join.algorithm is JoinAlgorithm.BROADCAST_HASH

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            plan_from_dict({"kind": "cube"})


class TestCostModelRoundTrip:
    def test_paper_model(self):
        payload = cost_model_to_dict(PAPER_SMJ_MODEL)
        rebuilt = cost_model_from_dict(payload)
        config = ResourceConfiguration(num_containers=10, container_gb=4.0)
        assert rebuilt.predict(3.0, 77.0, config) == pytest.approx(
            PAPER_SMJ_MODEL.predict(3.0, 77.0, config)
        )

    def test_trained_suite_models(self):
        suite = default_cost_model()
        for model in suite.models.values():
            rebuilt = cost_model_from_dict(cost_model_to_dict(model))
            config = ResourceConfiguration(num_containers=25, container_gb=6.0)
            assert rebuilt.predict(2.0, 77.0, config) == pytest.approx(
                model.predict(2.0, 77.0, config)
            )

    def test_unknown_feature_map_rejected(self):
        payload = cost_model_to_dict(PAPER_SMJ_MODEL)
        payload["feature_map"] = "mystery"
        with pytest.raises(SerializationError):
            cost_model_from_dict(payload)


class TestTreeRoundTrip:
    def _tree(self):
        X = [[1.0, 5.0], [2.0, 6.0], [10.0, 5.0], [11.0, 7.0]]
        y = ["BHJ", "BHJ", "SMJ", "SMJ"]
        return DecisionTreeClassifier(max_depth=3).fit(X, y), X, y

    def test_predictions_survive(self):
        tree, X, y = self._tree()
        rebuilt = tree_from_dict(tree_to_dict(tree))
        assert rebuilt.predict(X) == tree.predict(X)
        assert rebuilt.predict_one([5.0, 5.0]) == tree.predict_one(
            [5.0, 5.0]
        )

    def test_structure_survives(self):
        tree, _, _ = self._tree()
        rebuilt = tree_from_dict(tree_to_dict(tree))
        assert rebuilt.export_text() == tree.export_text()
        assert rebuilt.depth == tree.depth

    def test_unfitted_tree_rejected(self):
        with pytest.raises(SerializationError):
            tree_to_dict(DecisionTreeClassifier())


class TestFileHelpers:
    def test_save_and_load(self, tmp_path):
        plan = left_deep_plan(("a", "b"))
        path = tmp_path / "plan.json"
        save_json(plan_to_dict(plan), path)
        rebuilt = plan_from_dict(load_json(path))
        assert plan_signature(rebuilt) == plan_signature(plan)


class TestFaultArtifacts:
    def test_fault_spec_round_trip(self):
        from repro.faults.model import FaultSpec
        from repro.serialization import (
            fault_spec_from_dict,
            fault_spec_to_dict,
        )

        spec = FaultSpec(
            seed=7,
            preemption_rate=0.1,
            oom_rate=0.2,
            straggler_rate=0.3,
            straggler_slowdown=4.0,
        )
        assert fault_spec_from_dict(fault_spec_to_dict(spec)) == spec

    def test_fault_spec_payload_is_json_safe(self):
        import json

        from repro.faults.model import FaultSpec
        from repro.serialization import fault_spec_to_dict

        payload = fault_spec_to_dict(FaultSpec(seed=1, oom_rate=0.5))
        assert json.loads(json.dumps(payload)) == payload

    def test_bad_fault_spec_payload_rejected(self):
        from repro.serialization import fault_spec_from_dict

        with pytest.raises(SerializationError):
            fault_spec_from_dict({"seed": 1, "oom_rate": 2.0})
        with pytest.raises(SerializationError):
            fault_spec_from_dict({"surprise": True})

    def test_recovery_policy_round_trip(self):
        from repro.faults.recovery import RecoveryPolicy
        from repro.serialization import (
            recovery_policy_from_dict,
            recovery_policy_to_dict,
        )

        policy = RecoveryPolicy(
            max_retries=5,
            backoff_base_s=1.5,
            degrade_bhj_to_smj=False,
        )
        assert (
            recovery_policy_from_dict(recovery_policy_to_dict(policy))
            == policy
        )

    def test_bad_recovery_policy_rejected(self):
        from repro.serialization import recovery_policy_from_dict

        with pytest.raises(SerializationError):
            recovery_policy_from_dict({"max_retries": -3})
