"""Cross-planner property tests on random schemas.

These pin the optimality relationships between the three planners: on
any (small) random catalog, the exhaustive bushy DP lower-bounds the
left-deep DP, which the randomized planner should approach.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.queries import Query
from repro.catalog.random_schema import RandomSchemaConfig, random_catalog
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.planner.bushy import BushyPlanner
from repro.planner.cost_interface import (
    Cost,
    PlanningContext,
    get_plan_cost,
)
from repro.planner.plan import left_deep_plan
from repro.planner.randomized import FastRandomizedPlanner
from repro.planner.selinger import SelingerPlanner


class SizeCoster:
    def join_cost(self, left_tables, right_tables, algorithm, context):
        stats = context.estimator.join_stats(left_tables, right_tables)
        return Cost(time_s=stats.size_gb, money=0.0), None


def make_setup(seed, num_tables=6, query_size=5):
    rng = np.random.default_rng(seed)
    catalog = random_catalog(
        RandomSchemaConfig(num_tables=num_tables), rng
    )
    from repro.catalog.random_schema import random_query

    query = random_query(catalog, query_size, rng)
    context = PlanningContext(
        estimator=StatisticsEstimator(catalog),
        cluster=ClusterConditions(max_containers=10, max_container_gb=4.0),
    )
    return catalog, query, context


class TestPlannerRelationships:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_property_bushy_lower_bounds_selinger(self, seed):
        catalog, query, context = make_setup(seed)
        selinger = SelingerPlanner(SizeCoster()).plan(query, context)
        bushy = BushyPlanner(SizeCoster()).plan(
            query,
            PlanningContext(
                estimator=context.estimator, cluster=context.cluster
            ),
        )
        assert bushy.cost.time_s <= selinger.cost.time_s + 1e-9

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_property_selinger_matches_exhaustive_left_deep(self, seed):
        catalog, query, context = make_setup(seed, query_size=4)
        result = SelingerPlanner(SizeCoster()).plan(query, context)
        graph = catalog.join_graph
        coster = SizeCoster()
        best = None
        for perm in itertools.permutations(query.tables):
            valid = all(
                graph.edges_between(perm[: i + 1], [perm[i + 1]])
                for i in range(len(perm) - 1)
            )
            if not valid:
                continue
            plan = left_deep_plan(perm)
            _, cost = get_plan_cost(plan, coster, context)
            if best is None or cost.time_s < best:
                best = cost.time_s
        assert best is not None
        assert result.cost.time_s == pytest.approx(best)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=8, deadline=None)
    def test_property_randomized_close_to_bushy_optimum(self, seed):
        catalog, query, context = make_setup(seed, query_size=4)
        bushy = BushyPlanner(SizeCoster()).plan(query, context)
        randomized = FastRandomizedPlanner(
            SizeCoster(), iterations=10, seed=seed % 1000
        ).plan(
            query,
            PlanningContext(
                estimator=context.estimator, cluster=context.cluster
            ),
        )
        # Randomized search has no optimality guarantee; a loose factor
        # catches real regressions (e.g. invalid mutations) without
        # flaking on unlucky seeds.
        assert randomized.cost.time_s <= bushy.cost.time_s * 3.0 + 1e-9
