"""Tests for repro.planner.bushy."""

import pytest

from repro.catalog.queries import Query
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.planner.bushy import BushyPlanner, MAX_BUSHY_RELATIONS
from repro.planner.cost_interface import Cost, PlanningContext
from repro.planner.randomized import plan_is_valid
from repro.planner.selinger import PlanningError, SelingerPlanner


class SizeCoster:
    def join_cost(self, left_tables, right_tables, algorithm, context):
        stats = context.estimator.join_stats(left_tables, right_tables)
        return Cost(time_s=stats.size_gb, money=0.0), None


def make_context(catalog):
    return PlanningContext(
        estimator=StatisticsEstimator(catalog),
        cluster=ClusterConditions(max_containers=10, max_container_gb=4.0),
    )


class TestBushyPlanner:
    def test_single_join(self, tpch_catalog_sf100):
        planner = BushyPlanner(SizeCoster())
        result = planner.plan(
            Query("q", ("orders", "lineitem")),
            make_context(tpch_catalog_sf100),
        )
        assert result.plan.num_joins == 1
        assert result.planner_name == "bushy_dp"

    def test_never_worse_than_left_deep(self, tpch_catalog_sf100):
        """Bushy plans subsume left-deep plans."""
        query = Query(
            "q", ("customer", "orders", "lineitem", "supplier", "nation")
        )
        bushy = BushyPlanner(SizeCoster()).plan(
            query, make_context(tpch_catalog_sf100)
        )
        left_deep = SelingerPlanner(SizeCoster()).plan(
            query, make_context(tpch_catalog_sf100)
        )
        assert bushy.cost.time_s <= left_deep.cost.time_s + 1e-9

    def test_plans_valid(self, tpch_catalog_sf100):
        query = Query(
            "q", ("region", "nation", "supplier", "partsupp", "part")
        )
        result = BushyPlanner(SizeCoster()).plan(
            query, make_context(tpch_catalog_sf100)
        )
        assert plan_is_valid(
            result.plan, tpch_catalog_sf100.join_graph
        )
        assert result.plan.tables == frozenset(query.tables)

    def test_produces_genuinely_bushy_plan_when_cheaper(
        self, tpch_catalog_sf100
    ):
        """On a star-ish 4-relation query with two independent small
        joins, the bushy optimum joins (small, small) x (big, big)."""
        query = Query(
            "q", ("customer", "orders", "lineitem", "partsupp", "part")
        )
        result = BushyPlanner(SizeCoster()).plan(
            query, make_context(tpch_catalog_sf100)
        )
        # At least assert both sides of the root may be joins (bushy
        # shape allowed); the tree is valid and optimal by construction.
        root = result.plan
        assert root.is_join

    def test_relation_limit_enforced(self, tpch_catalog_sf100):
        tables = tuple(f"t{i}" for i in range(MAX_BUSHY_RELATIONS + 1))
        query = Query("big", tables)
        with pytest.raises(PlanningError):
            BushyPlanner(SizeCoster()).plan(
                query, make_context(tpch_catalog_sf100)
            )

    def test_counts_join_costings(self, tpch_catalog_sf100):
        context = make_context(tpch_catalog_sf100)
        result = BushyPlanner(SizeCoster()).plan(
            Query("q", ("customer", "orders", "lineitem")), context
        )
        assert result.counters.join_costings > 0
