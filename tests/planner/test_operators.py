"""Tests for repro.planner.operators."""

import pytest

from repro.engine.joins import JoinAlgorithm
from repro.planner.operators import (
    JOIN_IMPLEMENTATIONS,
    NUM_JOIN_IMPLEMENTATIONS,
    SCAN_IMPLEMENTATIONS,
    search_space_size,
)


class TestInventory:
    def test_two_join_implementations(self):
        assert NUM_JOIN_IMPLEMENTATIONS == 2
        assert JoinAlgorithm.SORT_MERGE in JOIN_IMPLEMENTATIONS
        assert JoinAlgorithm.BROADCAST_HASH in JOIN_IMPLEMENTATIONS

    def test_one_scan_implementation(self):
        assert len(SCAN_IMPLEMENTATIONS) == 1


class TestSearchSpace:
    def test_independent_formula(self):
        # n! * a * n * rp * rc for n=3, rp=10, rc=5: 6 * 2 * 3 * 50.
        assert search_space_size(3, 10, 5) == 6 * 2 * 3 * 10 * 5

    def test_joint_formula(self):
        # n! * (a*rp*rc)^n for n=2, rp=2, rc=2: 2 * 8^2.
        assert search_space_size(
            2, 2, 2, independent_operators=False
        ) == 2 * (2 * 2 * 2) ** 2

    def test_independence_shrinks_space(self):
        joint = search_space_size(5, 10, 10, independent_operators=False)
        independent = search_space_size(5, 10, 10)
        assert independent < joint

    def test_single_relation(self):
        assert search_space_size(1, 10, 10) == 2 * 1 * 10 * 10

    def test_invalid_relations_rejected(self):
        with pytest.raises(ValueError):
            search_space_size(0, 10, 10)

    def test_paper_magnitude(self):
        """Sec VI-B: the joint space explodes; independence tames it."""
        joint = search_space_size(8, 100, 10, independent_operators=False)
        independent = search_space_size(8, 100, 10)
        assert joint > 1e30
        assert independent < 1e9
