"""Tests for repro.planner.cost_interface."""

import math

import pytest

from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.planner.cost_interface import (
    Cost,
    INFEASIBLE_COST,
    PlanningContext,
    PlanningCounters,
    ZERO_COST,
    get_plan_cost,
)
from repro.planner.plan import left_deep_plan


class TestCost:
    def test_addition(self):
        total = Cost(1.0, 2.0) + Cost(3.0, 4.0)
        assert total == Cost(4.0, 6.0)

    def test_scalar_default_is_time(self):
        assert Cost(5.0, 100.0).scalar() == 5.0

    def test_scalar_weighted(self):
        assert Cost(5.0, 100.0).scalar(1.0, 0.1) == pytest.approx(15.0)

    def test_dominates(self):
        assert Cost(1.0, 1.0).dominates(Cost(2.0, 1.0))
        assert Cost(1.0, 1.0).dominates(Cost(1.0, 2.0))
        assert not Cost(1.0, 1.0).dominates(Cost(1.0, 1.0))
        assert not Cost(1.0, 3.0).dominates(Cost(2.0, 1.0))

    def test_is_finite(self):
        assert Cost(1.0, 1.0).is_finite
        assert not INFEASIBLE_COST.is_finite
        assert not Cost(1.0, math.inf).is_finite

    def test_zero_cost(self):
        assert ZERO_COST.time_s == 0.0
        assert (ZERO_COST + Cost(1.0, 2.0)) == Cost(1.0, 2.0)


class TestPlanningCounters:
    def test_merge(self):
        a = PlanningCounters(resource_iterations=5, join_costings=2)
        b = PlanningCounters(
            resource_iterations=3, cache_hits=1, cache_misses=4
        )
        a.merge(b)
        assert a.resource_iterations == 8
        assert a.join_costings == 2
        assert a.cache_hits == 1
        assert a.cache_misses == 4


class FixedCoster:
    """Returns a constant cost per join, counting invocations."""

    def __init__(self, time_s=10.0):
        self.time_s = time_s
        self.calls = 0

    def join_cost(self, left_tables, right_tables, algorithm, context):
        self.calls += 1
        return Cost(self.time_s, 1.0), None


class TestGetPlanCost:
    def _context(self, catalog):
        return PlanningContext(
            estimator=StatisticsEstimator(catalog),
            cluster=ClusterConditions(
                max_containers=10, max_container_gb=4.0
            ),
        )

    def test_sums_join_costs(self, tpch_catalog_sf100):
        plan = left_deep_plan(("customer", "orders", "lineitem"))
        coster = FixedCoster(time_s=10.0)
        context = self._context(tpch_catalog_sf100)
        _, cost = get_plan_cost(plan, coster, context)
        assert cost == Cost(20.0, 2.0)
        assert coster.calls == 2

    def test_scan_only_plan_costs_zero(self, tpch_catalog_sf100):
        from repro.planner.plan import ScanNode

        coster = FixedCoster()
        context = self._context(tpch_catalog_sf100)
        _, cost = get_plan_cost(ScanNode("orders"), coster, context)
        assert cost == ZERO_COST
        assert coster.calls == 0

    def test_join_io_gb_through_context(self, tpch_catalog_sf100):
        context = self._context(tpch_catalog_sf100)
        small, large = context.join_io_gb(["orders"], ["lineitem"])
        assert 0 < small < large
