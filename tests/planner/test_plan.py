"""Tests for repro.planner.plan."""

import pytest

from repro.cluster.containers import ResourceConfiguration
from repro.engine.joins import JoinAlgorithm
from repro.planner.plan import (
    JoinNode,
    PlanError,
    ScanNode,
    join_order,
    left_deep_plan,
    plan_signature,
)


class TestScanNode:
    def test_tables(self):
        assert ScanNode("a").tables == frozenset(("a",))

    def test_empty_name_rejected(self):
        with pytest.raises(PlanError):
            ScanNode("")

    def test_explain(self):
        assert ScanNode("a").explain() == "Scan(a)"

    def test_no_joins(self):
        assert list(ScanNode("a").joins_postorder()) == []
        assert ScanNode("a").num_joins == 0


class TestJoinNode:
    def test_tables_union(self):
        join = JoinNode(left=ScanNode("a"), right=ScanNode("b"))
        assert join.tables == frozenset(("a", "b"))

    def test_overlapping_children_rejected(self):
        inner = JoinNode(left=ScanNode("a"), right=ScanNode("b"))
        with pytest.raises(PlanError):
            JoinNode(left=inner, right=ScanNode("a"))

    def test_default_algorithm_smj(self):
        join = JoinNode(left=ScanNode("a"), right=ScanNode("b"))
        assert join.algorithm is JoinAlgorithm.SORT_MERGE

    def test_with_algorithm(self):
        join = JoinNode(left=ScanNode("a"), right=ScanNode("b"))
        flipped = join.with_algorithm(JoinAlgorithm.BROADCAST_HASH)
        assert flipped.algorithm is JoinAlgorithm.BROADCAST_HASH
        assert join.algorithm is JoinAlgorithm.SORT_MERGE

    def test_with_resources(self):
        join = JoinNode(left=ScanNode("a"), right=ScanNode("b"))
        config = ResourceConfiguration(num_containers=5, container_gb=2.0)
        assert join.with_resources(config).resources == config
        assert join.resources is None

    def test_explain_includes_resources(self):
        join = JoinNode(
            left=ScanNode("a"),
            right=ScanNode("b"),
            resources=ResourceConfiguration(num_containers=5, container_gb=2.0),
        )
        assert "<5 x 2GB>" in join.explain()

    def test_postorder_children_first(self):
        plan = left_deep_plan(("a", "b", "c"))
        joins = list(plan.joins_postorder())
        assert joins[0].tables == frozenset(("a", "b"))
        assert joins[1].tables == frozenset(("a", "b", "c"))

    def test_scans_left_to_right(self):
        plan = left_deep_plan(("a", "b", "c"))
        assert [s.table for s in plan.scans()] == ["a", "b", "c"]


class TestMapJoins:
    def test_map_joins_transform(self):
        plan = left_deep_plan(("a", "b", "c"))
        flipped = plan.map_joins(
            lambda j: j.with_algorithm(JoinAlgorithm.BROADCAST_HASH)
        )
        assert all(
            j.algorithm is JoinAlgorithm.BROADCAST_HASH
            for j in flipped.joins_postorder()
        )
        # Original untouched.
        assert all(
            j.algorithm is JoinAlgorithm.SORT_MERGE
            for j in plan.joins_postorder()
        )

    def test_map_joins_on_scan_is_identity(self):
        scan = ScanNode("a")
        assert scan.map_joins(lambda j: j) is scan

    def test_map_joins_rejects_table_set_change(self):
        plan = left_deep_plan(("a", "b"))
        other = JoinNode(left=ScanNode("x"), right=ScanNode("y"))
        with pytest.raises(PlanError):
            plan.map_joins(lambda j: other)


class TestLeftDeepPlan:
    def test_structure(self):
        plan = left_deep_plan(("a", "b", "c", "d"))
        assert plan.num_joins == 3
        assert join_order(plan) == ["a", "b", "c", "d"]

    def test_single_table(self):
        plan = left_deep_plan(("a",))
        assert isinstance(plan, ScanNode)

    def test_empty_rejected(self):
        with pytest.raises(PlanError):
            left_deep_plan(())

    def test_algorithms_assignment(self):
        plan = left_deep_plan(
            ("a", "b", "c"),
            algorithms=(
                JoinAlgorithm.BROADCAST_HASH,
                JoinAlgorithm.SORT_MERGE,
            ),
        )
        joins = list(plan.joins_postorder())
        assert joins[0].algorithm is JoinAlgorithm.BROADCAST_HASH
        assert joins[1].algorithm is JoinAlgorithm.SORT_MERGE

    def test_wrong_algorithm_count_rejected(self):
        with pytest.raises(PlanError):
            left_deep_plan(
                ("a", "b", "c"),
                algorithms=(JoinAlgorithm.SORT_MERGE,),
            )


class TestSignature:
    def test_identical_plans_same_signature(self):
        assert plan_signature(
            left_deep_plan(("a", "b", "c"))
        ) == plan_signature(left_deep_plan(("a", "b", "c")))

    def test_different_order_different_signature(self):
        assert plan_signature(
            left_deep_plan(("a", "b", "c"))
        ) != plan_signature(left_deep_plan(("b", "a", "c")))

    def test_algorithm_affects_signature(self):
        base = left_deep_plan(("a", "b"))
        flipped = base.map_joins(
            lambda j: j.with_algorithm(JoinAlgorithm.BROADCAST_HASH)
        )
        assert plan_signature(base) != plan_signature(flipped)

    def test_resources_do_not_affect_signature(self):
        base = left_deep_plan(("a", "b"))
        annotated = base.map_joins(
            lambda j: j.with_resources(ResourceConfiguration(num_containers=5, container_gb=2.0))
        )
        assert plan_signature(base) == plan_signature(annotated)
