"""Tests for repro.planner.randomized."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.queries import Query
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.planner.cost_interface import Cost, PlanningContext
from repro.planner.plan import plan_signature
from repro.planner.randomized import (
    FastRandomizedPlanner,
    ParetoFrontier,
    mutate,
    plan_is_valid,
    random_join_tree,
)
from repro.planner.selinger import SelingerPlanner


class SizeCoster:
    def join_cost(self, left_tables, right_tables, algorithm, context):
        stats = context.estimator.join_stats(left_tables, right_tables)
        return Cost(time_s=stats.size_gb, money=stats.size_gb * 0.1), None


def make_context(catalog):
    return PlanningContext(
        estimator=StatisticsEstimator(catalog),
        cluster=ClusterConditions(max_containers=10, max_container_gb=4.0),
    )


class TestParetoFrontier:
    def test_insert_and_dominance(self):
        frontier = ParetoFrontier(alpha=0.0)
        assert frontier.offer("p1", Cost(10.0, 10.0))
        assert frontier.offer("p2", Cost(5.0, 20.0))
        assert len(frontier) == 2
        # Dominates p1 -> p1 evicted.
        assert frontier.offer("p3", Cost(9.0, 9.0))
        entries = frontier.entries()
        assert len(entries) == 2
        assert all(c != Cost(10.0, 10.0) for _, c in entries)

    def test_alpha_approximation_rejects_near_duplicates(self):
        frontier = ParetoFrontier(alpha=0.10)
        frontier.offer("p1", Cost(10.0, 10.0))
        # Within 10% in both objectives: rejected.
        assert not frontier.offer("p2", Cost(9.5, 9.5))
        # Clearly better in one objective: accepted.
        assert frontier.offer("p3", Cost(5.0, 12.0))

    def test_infinite_cost_rejected(self):
        frontier = ParetoFrontier()
        assert not frontier.offer("p", Cost(float("inf"), 1.0))
        assert len(frontier) == 0

    def test_entries_sorted_by_time(self):
        frontier = ParetoFrontier(alpha=0.0)
        frontier.offer("a", Cost(10.0, 1.0))
        frontier.offer("b", Cost(1.0, 10.0))
        times = [c.time_s for _, c in frontier.entries()]
        assert times == sorted(times)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            ParetoFrontier(alpha=-0.1)


class TestRandomJoinTree:
    def test_covers_tables_and_valid(self, tpch_catalog_sf100, rng):
        tables = ("customer", "orders", "lineitem", "supplier")
        graph = tpch_catalog_sf100.join_graph
        tree = random_join_tree(tables, graph, rng)
        assert tree.tables == frozenset(tables)
        assert plan_is_valid(tree, graph)

    def test_single_table(self, tpch_catalog_sf100, rng):
        tree = random_join_tree(
            ("orders",), tpch_catalog_sf100.join_graph, rng
        )
        assert tree.tables == frozenset(("orders",))

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_trees_always_valid(self, seed):
        from repro.catalog import tpch

        catalog = tpch.tpch_catalog(1)
        rng = np.random.default_rng(seed)
        tree = random_join_tree(
            tpch.TABLE_NAMES, catalog.join_graph, rng
        )
        assert tree.tables == frozenset(tpch.TABLE_NAMES)
        assert plan_is_valid(tree, catalog.join_graph)


class TestMutations:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_property_mutations_preserve_tables_and_validity(self, seed):
        from repro.catalog import tpch

        catalog = tpch.tpch_catalog(1)
        rng = np.random.default_rng(seed)
        plan = random_join_tree(
            tpch.TABLE_NAMES, catalog.join_graph, rng
        )
        for _ in range(20):
            candidate = mutate(plan, catalog.join_graph, rng)
            if candidate is None:
                continue
            assert candidate.tables == plan.tables
            assert plan_is_valid(candidate, catalog.join_graph)
            plan = candidate

    def test_mutation_changes_something_eventually(
        self, tpch_catalog_sf100, rng
    ):
        tables = ("customer", "orders", "lineitem")
        plan = random_join_tree(
            tables, tpch_catalog_sf100.join_graph, rng
        )
        signatures = {plan_signature(plan)}
        for _ in range(50):
            candidate = mutate(
                plan, tpch_catalog_sf100.join_graph, rng
            )
            if candidate is not None:
                signatures.add(plan_signature(candidate))
        assert len(signatures) > 1


class TestFastRandomizedPlanner:
    def test_finds_plan(self, tpch_catalog_sf100):
        planner = FastRandomizedPlanner(SizeCoster(), iterations=3)
        context = make_context(tpch_catalog_sf100)
        result = planner.plan(
            Query("q", ("customer", "orders", "lineitem")), context
        )
        assert result.plan.tables == frozenset(
            ("customer", "orders", "lineitem")
        )
        assert result.cost.is_finite
        assert len(result.frontier) >= 1

    def test_deterministic_given_seed(self, tpch_catalog_sf100):
        query = Query("q", ("customer", "orders", "lineitem", "nation"))
        results = []
        for _ in range(2):
            planner = FastRandomizedPlanner(
                SizeCoster(), iterations=3, seed=11
            )
            context = make_context(tpch_catalog_sf100)
            results.append(planner.plan(query, context))
        assert plan_signature(results[0].plan) == plan_signature(
            results[1].plan
        )
        assert results[0].cost == results[1].cost

    def test_matches_selinger_on_small_query(self, tpch_catalog_sf100):
        """With enough iterations the randomized planner should find a
        plan at least as good as the left-deep DP optimum (bushy plans
        are a superset of left-deep ones for this cost metric)."""
        query = Query("q", ("customer", "orders", "lineitem"))
        selinger = SelingerPlanner(SizeCoster()).plan(
            query, make_context(tpch_catalog_sf100)
        )
        randomized = FastRandomizedPlanner(
            SizeCoster(), iterations=10, seed=0
        ).plan(query, make_context(tpch_catalog_sf100))
        assert randomized.cost.time_s <= selinger.cost.time_s * 1.001

    def test_plan_valid_no_cross_products(self, tpch_catalog_sf100):
        planner = FastRandomizedPlanner(SizeCoster(), iterations=2)
        context = make_context(tpch_catalog_sf100)
        result = planner.plan(
            Query(
                "q", ("region", "nation", "supplier", "partsupp", "part")
            ),
            context,
        )
        assert plan_is_valid(
            result.plan, tpch_catalog_sf100.join_graph
        )

    def test_iterations_validation(self):
        with pytest.raises(ValueError):
            FastRandomizedPlanner(SizeCoster(), iterations=0)

    def test_frontier_is_pareto(self, tpch_catalog_sf100):
        planner = FastRandomizedPlanner(
            SizeCoster(), iterations=5, alpha=0.0
        )
        context = make_context(tpch_catalog_sf100)
        result = planner.plan(
            Query("q", ("customer", "orders", "lineitem", "supplier")),
            context,
        )
        entries = result.frontier
        for i, (_, a) in enumerate(entries):
            for j, (_, b) in enumerate(entries):
                if i != j:
                    assert not a.dominates(b)
