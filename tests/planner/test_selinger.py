"""Tests for repro.planner.selinger."""

import itertools

import pytest

from repro.catalog.queries import Query
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.planner.cost_interface import (
    Cost,
    PlanningContext,
    get_plan_cost,
)
from repro.planner.plan import join_order, left_deep_plan
from repro.planner.selinger import PlanningError, SelingerPlanner


class SizeCoster:
    """Cost = output size of the join (classic Cout metric)."""

    def join_cost(self, left_tables, right_tables, algorithm, context):
        stats = context.estimator.join_stats(left_tables, right_tables)
        return Cost(time_s=stats.size_gb, money=0.0), None


def make_context(catalog):
    return PlanningContext(
        estimator=StatisticsEstimator(catalog),
        cluster=ClusterConditions(max_containers=10, max_container_gb=4.0),
    )


class TestSelinger:
    def test_single_join_query(self, tpch_catalog_sf100):
        planner = SelingerPlanner(SizeCoster())
        context = make_context(tpch_catalog_sf100)
        result = planner.plan(Query("q", ("orders", "lineitem")), context)
        assert result.plan.num_joins == 1
        assert result.cost.is_finite

    def test_left_deep_shape(self, tpch_catalog_sf100):
        planner = SelingerPlanner(SizeCoster())
        context = make_context(tpch_catalog_sf100)
        result = planner.plan(
            Query("q", ("customer", "orders", "lineitem")), context
        )
        # Left-deep: every right child is a scan.
        for join in result.plan.joins_postorder():
            assert not join.right.is_join

    def test_optimal_vs_exhaustive_left_deep(self, tpch_catalog_sf100):
        """DP must match brute-force enumeration of left-deep orders."""
        tables = ("customer", "orders", "lineitem", "supplier")
        coster = SizeCoster()
        planner = SelingerPlanner(coster)
        context = make_context(tpch_catalog_sf100)
        result = planner.plan(Query("q", tables), context)

        graph = tpch_catalog_sf100.join_graph
        best = None
        for perm in itertools.permutations(tables):
            # Skip orders that create cross joins.
            valid = all(
                graph.edges_between(perm[: i + 1], [perm[i + 1]])
                for i in range(len(perm) - 1)
            )
            if not valid:
                continue
            plan = left_deep_plan(perm)
            _, cost = get_plan_cost(plan, coster, context)
            if best is None or cost.time_s < best:
                best = cost.time_s
        assert result.cost.time_s == pytest.approx(best)

    def test_no_cross_products(self, tpch_catalog_sf100):
        planner = SelingerPlanner(SizeCoster())
        context = make_context(tpch_catalog_sf100)
        result = planner.plan(
            Query("q", ("region", "nation", "supplier", "partsupp")),
            context,
        )
        graph = tpch_catalog_sf100.join_graph
        for join in result.plan.joins_postorder():
            assert graph.edges_between(
                join.left.tables, join.right.tables
            )

    def test_counts_join_costings(self, tpch_catalog_sf100):
        planner = SelingerPlanner(SizeCoster())
        context = make_context(tpch_catalog_sf100)
        result = planner.plan(
            Query("q", ("customer", "orders", "lineitem")), context
        )
        assert result.counters.join_costings > 0
        assert context.counters.join_costings == (
            result.counters.join_costings
        )

    def test_counter_deltas_accumulate_in_context(
        self, tpch_catalog_sf100
    ):
        planner = SelingerPlanner(SizeCoster())
        context = make_context(tpch_catalog_sf100)
        first = planner.plan(Query("q", ("orders", "lineitem")), context)
        second = planner.plan(
            Query("q", ("orders", "lineitem")), context
        )
        assert context.counters.join_costings == (
            first.counters.join_costings + second.counters.join_costings
        )

    def test_invalid_query_rejected(self, tpch_catalog_sf100):
        planner = SelingerPlanner(SizeCoster())
        context = make_context(tpch_catalog_sf100)
        from repro.catalog.queries import QueryError

        with pytest.raises(QueryError):
            planner.plan(Query("q", ("customer", "part")), context)

    def test_plan_covers_all_tables(self, tpch_catalog_sf100):
        planner = SelingerPlanner(SizeCoster())
        context = make_context(tpch_catalog_sf100)
        tables = (
            "region",
            "nation",
            "supplier",
            "customer",
            "orders",
            "lineitem",
        )
        result = planner.plan(Query("q", tables), context)
        assert result.plan.tables == frozenset(tables)

    def test_result_metadata(self, tpch_catalog_sf100):
        planner = SelingerPlanner(SizeCoster())
        context = make_context(tpch_catalog_sf100)
        query = Query("named", ("orders", "lineitem"))
        result = planner.plan(query, context)
        assert result.planner_name == "selinger"
        assert result.query is query
        assert result.wall_time_s >= 0
