"""Tests for repro.core.plan_cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.core.plan_cache import (
    LookupMode,
    ResourcePlanCache,
    _SortedIndex,
)


def rc(nc, cs):
    return ResourceConfiguration(num_containers=nc, container_gb=cs)


class TestSortedIndex:
    def test_insert_keeps_lookup_order(self):
        index = _SortedIndex()
        for key in (3.0, 1.0, 2.0):
            index.insert(key, rc(int(key), 1.0))
        index._merge_pending()
        assert index._keys == [1.0, 2.0, 3.0]

    def test_exact(self):
        index = _SortedIndex()
        index.insert(2.0, rc(2, 1.0))
        assert index.exact(2.0) == rc(2, 1.0)
        assert index.exact(2.1) is None

    def test_exact_after_merge(self):
        index = _SortedIndex()
        index.insert(2.0, rc(2, 1.0))
        index._merge_pending()
        assert index.exact(2.0) == rc(2, 1.0)
        assert index.exact(2.1) is None

    def test_duplicate_key_overwrites(self):
        index = _SortedIndex()
        index.insert(2.0, rc(2, 1.0))
        index.insert(2.0, rc(9, 1.0))
        assert index.exact(2.0) == rc(9, 1.0)
        assert len(index) == 1

    def test_duplicate_key_overwrites_after_merge(self):
        index = _SortedIndex()
        index.insert(2.0, rc(2, 1.0))
        index._merge_pending()
        index.insert(2.0, rc(9, 1.0))
        assert index.exact(2.0) == rc(9, 1.0)
        assert len(index) == 1

    def test_insert_reports_new_keys(self):
        index = _SortedIndex()
        assert index.insert(2.0, rc(2, 1.0)) is True
        assert index.insert(2.0, rc(9, 1.0)) is False
        index._merge_pending()
        assert index.insert(2.0, rc(3, 1.0)) is False
        assert index.insert(4.0, rc(4, 1.0)) is True

    def test_neighbors_within(self):
        index = _SortedIndex()
        for key in (1.0, 2.0, 3.0, 10.0):
            index.insert(key, rc(int(key), 1.0))
        neighbors = index.neighbors_within(2.2, 1.5)
        keys = [k for k, _ in neighbors]
        assert set(keys) == {1.0, 2.0, 3.0}
        # Nearest first.
        assert keys[0] == 2.0

    def test_neighbors_span_buffer_and_array(self):
        index = _SortedIndex()
        index.insert(1.0, rc(1, 1.0))
        index.insert(3.0, rc(3, 1.0))
        index._merge_pending()
        index.insert(2.0, rc(2, 1.0))  # still in the pending buffer
        neighbors = index.neighbors_within(2.2, 1.5)
        assert [k for k, _ in neighbors] == [2.0, 3.0, 1.0]

    def test_automatic_merge_at_threshold(self):
        index = _SortedIndex()
        for offset in range(index.MERGE_THRESHOLD):
            index.insert(float(offset), rc(1, 1.0))
        # The buffer hit its threshold and was folded into the array.
        assert not index._pending
        assert index._keys == sorted(index._keys)
        assert len(index) == index.MERGE_THRESHOLD

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=40))
    @settings(max_examples=40)
    def test_property_sorted_invariant(self, keys):
        index = _SortedIndex()
        for key in keys:
            index.insert(key, rc(1, 1.0))
        index._merge_pending()
        assert index._keys == sorted(set(index._keys))
        assert len(index) == len(set(keys))

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=40)
    def test_property_lookups_unaffected_by_buffering(self, keys):
        """The pending buffer is invisible to exact/neighbour lookups."""
        buffered = _SortedIndex()
        eager = _SortedIndex()
        for key in keys:
            buffered.insert(key, rc(1, 1.0))
            eager.insert(key, rc(1, 1.0))
            eager._merge_pending()
        probe = keys[len(keys) // 2]
        assert buffered.exact(probe) == eager.exact(probe)
        assert buffered.neighbors_within(probe, 5.0) == (
            eager.neighbors_within(probe, 5.0)
        )
        assert len(buffered) == len(eager)


class TestExactMode:
    def test_miss_then_hit(self):
        cache = ResourcePlanCache(mode=LookupMode.EXACT)
        assert cache.lookup("smj", 2.0) is None
        cache.insert("smj", 2.0, rc(10, 4.0))
        assert cache.lookup("smj", 2.0) == rc(10, 4.0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_near_miss_is_miss(self):
        cache = ResourcePlanCache(mode=LookupMode.EXACT)
        cache.insert("smj", 2.0, rc(10, 4.0))
        assert cache.lookup("smj", 2.0001) is None

    def test_model_keys_isolated(self):
        cache = ResourcePlanCache(mode=LookupMode.EXACT)
        cache.insert("smj", 2.0, rc(10, 4.0))
        assert cache.lookup("bhj", 2.0) is None


class TestNearestMode:
    def test_within_threshold_hits(self):
        cache = ResourcePlanCache(
            mode=LookupMode.NEAREST, threshold_gb=0.5
        )
        cache.insert("smj", 2.0, rc(10, 4.0))
        assert cache.lookup("smj", 2.3) == rc(10, 4.0)

    def test_outside_threshold_misses(self):
        cache = ResourcePlanCache(
            mode=LookupMode.NEAREST, threshold_gb=0.1
        )
        cache.insert("smj", 2.0, rc(10, 4.0))
        assert cache.lookup("smj", 2.3) is None

    def test_picks_nearest_of_several(self):
        cache = ResourcePlanCache(
            mode=LookupMode.NEAREST, threshold_gb=1.0
        )
        cache.insert("smj", 1.0, rc(1, 1.0))
        cache.insert("smj", 3.0, rc(3, 3.0))
        assert cache.lookup("smj", 2.6) == rc(3, 3.0)

    def test_exact_match_tried_first(self):
        cache = ResourcePlanCache(
            mode=LookupMode.NEAREST, threshold_gb=5.0
        )
        cache.insert("smj", 2.0, rc(2, 2.0))
        cache.insert("smj", 2.5, rc(5, 5.0))
        assert cache.lookup("smj", 2.0) == rc(2, 2.0)


class TestWeightedAverageMode:
    def test_averages_neighbors(self, paper_cluster):
        cache = ResourcePlanCache(
            mode=LookupMode.WEIGHTED_AVERAGE, threshold_gb=1.0
        )
        cache.insert("smj", 2.0, rc(10, 4.0))
        cache.insert("smj", 3.0, rc(20, 6.0))
        result = cache.lookup("smj", 2.5, paper_cluster)
        assert result is not None
        assert 10 <= result.num_containers <= 20
        assert 4.0 <= result.container_gb <= 6.0

    def test_weights_favor_closer_neighbor(self, paper_cluster):
        cache = ResourcePlanCache(
            mode=LookupMode.WEIGHTED_AVERAGE, threshold_gb=2.0
        )
        cache.insert("smj", 2.0, rc(10, 4.0))
        cache.insert("smj", 4.0, rc(20, 8.0))
        result = cache.lookup("smj", 2.2, paper_cluster)
        assert result.num_containers < 15

    def test_snaps_to_cluster_grid(self, paper_cluster):
        cache = ResourcePlanCache(
            mode=LookupMode.WEIGHTED_AVERAGE, threshold_gb=2.0
        )
        cache.insert("smj", 2.0, rc(10, 4.0))
        cache.insert("smj", 3.0, rc(11, 5.0))
        result = cache.lookup("smj", 2.5, paper_cluster)
        # Grid steps are 1 on both axes.
        assert result.container_gb == int(result.container_gb)

    def test_without_cluster_returns_raw_average(self):
        cache = ResourcePlanCache(
            mode=LookupMode.WEIGHTED_AVERAGE, threshold_gb=2.0
        )
        cache.insert("smj", 2.0, rc(10, 4.0))
        cache.insert("smj", 3.0, rc(20, 6.0))
        assert cache.lookup("smj", 2.5) is not None


class TestClusterValidation:
    def test_stale_entry_rejected_by_new_cluster(self):
        cache = ResourcePlanCache(mode=LookupMode.EXACT)
        cache.insert("smj", 2.0, rc(50, 8.0))
        small = ClusterConditions(max_containers=10, max_container_gb=4.0)
        assert cache.lookup("smj", 2.0, small) is None

    def test_valid_entry_survives_cluster_change(self):
        cache = ResourcePlanCache(mode=LookupMode.EXACT)
        cache.insert("smj", 2.0, rc(5, 2.0))
        small = ClusterConditions(max_containers=10, max_container_gb=4.0)
        assert cache.lookup("smj", 2.0, small) == rc(5, 2.0)


class TestStatsAndMaintenance:
    def test_hit_rate(self):
        cache = ResourcePlanCache(mode=LookupMode.EXACT)
        cache.insert("smj", 1.0, rc(1, 1.0))
        cache.lookup("smj", 1.0)
        cache.lookup("smj", 2.0)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.lookups == 2

    def test_hit_rate_empty(self):
        assert ResourcePlanCache().stats.hit_rate == 0.0

    def test_size(self):
        cache = ResourcePlanCache()
        cache.insert("smj", 1.0, rc(1, 1.0))
        cache.insert("smj", 2.0, rc(2, 1.0))
        cache.insert("bhj", 1.0, rc(1, 1.0))
        assert cache.size("smj") == 2
        assert cache.size() == 3

    def test_entries_counts_distinct_keys(self):
        cache = ResourcePlanCache()
        cache.insert("smj", 1.0, rc(1, 1.0))
        cache.insert("smj", 1.0, rc(2, 1.0))  # update, not a new entry
        cache.insert("smj", 2.0, rc(2, 1.0))
        cache.insert("bhj", 1.0, rc(1, 1.0))
        assert cache.stats.entries == 3
        assert cache.stats.inserts == 4
        assert cache.stats.entries == cache.size()

    def test_clear(self):
        cache = ResourcePlanCache()
        cache.insert("smj", 1.0, rc(1, 1.0))
        cache.clear()
        assert cache.size() == 0
        assert cache.stats.entries == 0
        assert cache.lookup("smj", 1.0) is None

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ResourcePlanCache(threshold_gb=-0.1)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=50.0),
                st.integers(min_value=1, max_value=100),
                st.integers(min_value=1, max_value=10),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=30)
    def test_property_inserted_entries_always_exact_hit(self, entries):
        cache = ResourcePlanCache(mode=LookupMode.EXACT)
        expected = {}
        for key, nc, cs in entries:
            config = rc(nc, float(cs))
            cache.insert("smj", key, config)
            expected[key] = config
        for key, config in expected.items():
            assert cache.lookup("smj", key) == config
