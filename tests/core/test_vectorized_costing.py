"""Scalar vs vectorized costing equivalence (property-style tests).

The vectorized fast path (config grid -> batched predict -> argmin) must
return exactly what the scalar reference loop returns -- same values,
same winning configuration, same tie-breaks -- across clusters, data
sizes, join algorithms, and both engine profiles. The scalar path is the
oracle; these tests pin the fast path to it.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ClusterConditions
from repro.core.cost_model import (
    EXTENDED_FEATURES,
    JoinCostEstimator,
    PAPER_FEATURES,
    SimulatorCostModel,
)
from repro.core.raqo import default_cost_model
from repro.core.resource_planner import brute_force_resource_plan
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiles import HIVE_PROFILE, SPARK_PROFILE

PROFILES = {"hive": HIVE_PROFILE, "spark": SPARK_PROFILE}

#: Small clusters keep the hypothesis sweeps fast; shapes vary widely.
clusters = st.builds(
    ClusterConditions,
    max_containers=st.integers(min_value=1, max_value=24),
    max_container_gb=st.floats(min_value=1.0, max_value=16.0),
    container_step=st.integers(min_value=1, max_value=3),
    container_gb_step=st.sampled_from((0.5, 1.0, 2.0)),
)
data_sizes = st.floats(min_value=0.01, max_value=200.0)
algorithms = st.sampled_from(list(JoinAlgorithm))
profile_names = st.sampled_from(sorted(PROFILES))


def _scalar_times(model, algorithm, ss, ls, cluster):
    return np.array(
        [
            model.predict_time(algorithm, ss, ls, config)
            for config in cluster.iter_configurations()
        ]
    )


class TestConfigGrid:
    def test_grid_matches_iteration_order(self, paper_cluster):
        grid = paper_cluster.config_grid()
        configs = list(paper_cluster.iter_configurations())
        assert grid.num_configs == paper_cluster.grid_size == len(configs)
        assert list(grid.configurations()) == configs
        assert [grid.config_at(i) for i in range(3)] == configs[:3]

    def test_grid_is_cached(self, paper_cluster):
        assert paper_cluster.config_grid() is paper_cluster.config_grid()

    def test_grid_arrays_read_only(self, paper_cluster):
        grid = paper_cluster.config_grid()
        with pytest.raises(ValueError):
            grid.counts[0] = 99.0

    def test_total_memory(self, small_cluster):
        grid = small_cluster.config_grid()
        np.testing.assert_array_equal(
            grid.total_memory_gb, grid.counts * grid.sizes
        )

    def test_dimension_lookup_by_name(self, paper_cluster):
        assert paper_cluster.dimension("container_gb").maximum == 10.0
        assert paper_cluster.dimension("num_containers").maximum == 100.0

    def test_unknown_dimension_rejected(self, paper_cluster):
        from repro.cluster.cluster import ResourceError

        with pytest.raises(ResourceError, match="bogus"):
            paper_cluster.dimension("bogus")


class TestLearnedModelEquivalence:
    @given(
        cluster=clusters,
        ss=data_sizes,
        ls=data_sizes,
        algorithm=algorithms,
        profile_name=profile_names,
    )
    @settings(max_examples=60, deadline=None)
    def test_grid_predictions_bit_identical(
        self, cluster, ss, ls, algorithm, profile_name
    ):
        ss, ls = sorted((ss, ls))
        model = default_cost_model(PROFILES[profile_name])
        batched = model.predict_time_grid(
            algorithm, ss, ls, cluster.config_grid()
        )
        scalar = _scalar_times(model, algorithm, ss, ls, cluster)
        np.testing.assert_array_equal(batched, scalar)

    @given(
        cluster=clusters,
        ss=data_sizes,
        ls=data_sizes,
        profile_name=profile_names,
    )
    @settings(max_examples=40, deadline=None)
    def test_paper_feature_map_equivalence(
        self, cluster, ss, ls, profile_name
    ):
        ss, ls = sorted((ss, ls))
        model = default_cost_model(
            PROFILES[profile_name], feature_map=PAPER_FEATURES
        )
        for algorithm in JoinAlgorithm:
            batched = model.predict_time_grid(
                algorithm, ss, ls, cluster.config_grid()
            )
            scalar = _scalar_times(model, algorithm, ss, ls, cluster)
            np.testing.assert_array_equal(batched, scalar)


class TestSimulatorEquivalence:
    @given(
        cluster=clusters,
        ss=data_sizes,
        ls=data_sizes,
        algorithm=algorithms,
        profile_name=profile_names,
    )
    @settings(max_examples=60, deadline=None)
    def test_grid_predictions_bit_identical(
        self, cluster, ss, ls, algorithm, profile_name
    ):
        ss, ls = sorted((ss, ls))
        model = SimulatorCostModel(PROFILES[profile_name])
        batched = model.predict_time_grid(
            algorithm, ss, ls, cluster.config_grid()
        )
        scalar = _scalar_times(model, algorithm, ss, ls, cluster)
        np.testing.assert_array_equal(batched, scalar)

    def test_fixed_reducers_respected(self, paper_cluster):
        model = SimulatorCostModel(HIVE_PROFILE, num_reducers=4)
        batched = model.predict_time_grid(
            JoinAlgorithm.SORT_MERGE, 5.0, 50.0, paper_cluster.config_grid()
        )
        scalar = _scalar_times(
            model, JoinAlgorithm.SORT_MERGE, 5.0, 50.0, paper_cluster
        )
        np.testing.assert_array_equal(batched, scalar)


class TestGenericFallback:
    def test_base_class_loops_predict_time(self, small_cluster):
        class OddEstimator(JoinCostEstimator):
            hash_memory_fraction = 1.0

            def predict_time(self, algorithm, small_gb, large_gb, config):
                return config.num_containers * 10.0 + config.container_gb

        model = OddEstimator()
        batched = model.predict_time_grid(
            JoinAlgorithm.SORT_MERGE, 1.0, 2.0, small_cluster.config_grid()
        )
        scalar = _scalar_times(
            model, JoinAlgorithm.SORT_MERGE, 1.0, 2.0, small_cluster
        )
        np.testing.assert_array_equal(batched, scalar)


class TestFeatureMapBatch:
    @given(
        cluster=clusters,
        ss=data_sizes,
        ls=data_sizes,
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_per_row_transform(self, cluster, ss, ls):
        grid = cluster.config_grid()
        for feature_map in (PAPER_FEATURES, EXTENDED_FEATURES):
            batched = feature_map.batch(ss, ls, grid.sizes, grid.counts)
            rows = np.array(
                [
                    feature_map(ss, ls, config)
                    for config in grid.configurations()
                ]
            )
            assert batched.shape == (grid.num_configs, len(feature_map))
            np.testing.assert_array_equal(batched, rows)

    def test_non_vectorizable_transform_falls_back(self, small_cluster):
        from repro.core.cost_model import FeatureMap

        def awkward(ss, ls, cs, nc):
            # float() raises on arrays, forcing the per-row fallback.
            return (float(cs) + float(nc), ss)

        feature_map = FeatureMap(
            name="awkward", feature_names=("a", "b"), transform=awkward
        )
        grid = small_cluster.config_grid()
        batched = feature_map.batch(3.0, 7.0, grid.sizes, grid.counts)
        rows = np.array(
            [feature_map(3.0, 7.0, c) for c in grid.configurations()]
        )
        np.testing.assert_array_equal(batched, rows)


class TestBruteForceEquivalence:
    @given(
        cluster=clusters,
        ss=data_sizes,
        ls=data_sizes,
        algorithm=algorithms,
        profile_name=profile_names,
    )
    @settings(max_examples=60, deadline=None)
    def test_vectorized_winner_identical(
        self, cluster, ss, ls, algorithm, profile_name
    ):
        """Same config, same cost, same tie-break, same iteration count."""
        ss, ls = sorted((ss, ls))
        model = default_cost_model(PROFILES[profile_name])

        def cost_fn(config):
            return model.predict_time(algorithm, ss, ls, config)

        def grid_cost_fn(grid):
            return model.predict_time_grid(algorithm, ss, ls, grid)

        try:
            scalar = brute_force_resource_plan(cost_fn, cluster)
        except Exception as scalar_error:
            with pytest.raises(type(scalar_error)):
                brute_force_resource_plan(
                    cost_fn,
                    cluster,
                    vectorized=True,
                    grid_cost_fn=grid_cost_fn,
                )
            return
        fast = brute_force_resource_plan(
            cost_fn, cluster, vectorized=True, grid_cost_fn=grid_cost_fn
        )
        assert fast == scalar

    def test_tie_break_prefers_first_configuration(self, small_cluster):
        """Constant costs: both paths pick the very first grid point."""
        scalar = brute_force_resource_plan(lambda c: 1.0, small_cluster)
        fast = brute_force_resource_plan(
            lambda c: 1.0, small_cluster, vectorized=True
        )
        assert fast == scalar
        assert fast.config == small_cluster.minimum_configuration

    def test_all_infinite_costs_raise(self, small_cluster):
        from repro.core.resource_planner import ResourcePlanningError

        for kwargs in ({}, {"vectorized": True}):
            with pytest.raises(ResourcePlanningError):
                brute_force_resource_plan(
                    lambda c: math.inf, small_cluster, **kwargs
                )

    def test_nan_treated_as_infeasible(self, small_cluster):
        """NaN costs lose to any finite cost on both paths."""

        def cost_fn(config):
            if config.num_containers == 1:
                return math.nan
            return float(config.num_containers)

        scalar = brute_force_resource_plan(cost_fn, small_cluster)
        fast = brute_force_resource_plan(
            cost_fn, small_cluster, vectorized=True
        )
        assert fast == scalar
        assert fast.config.num_containers == 2
