"""Tests for repro.core.use_cases (the four Sec IV operating modes)."""

import pytest

from repro.catalog import tpch
from repro.cluster.containers import ResourceConfiguration
from repro.core.raqo import RaqoPlanner
from repro.core.use_cases import (
    UseCaseError,
    best_joint_plan,
    best_plan_for_budget,
    plan_for_price,
    plan_resources_for_plan,
)
from repro.planner.plan import left_deep_plan


@pytest.fixture(scope="module")
def planner():
    return RaqoPlanner.default(tpch.tpch_catalog(100))


class TestBudgetMode:
    def test_plan_within_budget(self, planner):
        budget = ResourceConfiguration(num_containers=20, container_gb=4.0)
        result = best_plan_for_budget(planner, tpch.QUERY_Q3, budget)
        assert result.cost.is_finite
        assert result.plan.tables == frozenset(tpch.QUERY_Q3.tables)

    def test_tighter_budget_never_faster(self, planner):
        roomy = best_plan_for_budget(
            planner, tpch.QUERY_Q3, ResourceConfiguration(num_containers=50, container_gb=8.0)
        )
        tight = best_plan_for_budget(
            planner, tpch.QUERY_Q3, ResourceConfiguration(num_containers=5, container_gb=2.0)
        )
        assert tight.cost.time_s >= roomy.cost.time_s * 0.99


class TestFixedPlanMode:
    def test_resources_annotated(self, planner):
        plan = left_deep_plan(("customer", "orders", "lineitem"))
        annotated, cost = plan_resources_for_plan(planner, plan)
        assert cost.is_finite
        for join in annotated.joins_postorder():
            assert join.resources is not None

    def test_join_order_unchanged(self, planner):
        from repro.planner.plan import join_order

        plan = left_deep_plan(("customer", "orders", "lineitem"))
        annotated, _ = plan_resources_for_plan(planner, plan)
        assert join_order(annotated) == join_order(plan)


class TestJointMode:
    def test_matches_planner_optimize(self, planner):
        direct = planner.optimize(tpch.QUERY_Q2)
        via_use_case = best_joint_plan(planner, tpch.QUERY_Q2)
        assert via_use_case.cost == direct.cost


class TestPriceMode:
    def test_generous_cap_within_budget(self, planner):
        priced = plan_for_price(planner, tpch.QUERY_Q3, max_dollars=100.0)
        assert priced.within_budget
        assert priced.cost.money <= 100.0

    def test_impossible_cap_flagged(self, planner):
        priced = plan_for_price(
            planner, tpch.QUERY_Q3, max_dollars=1e-9
        )
        assert not priced.within_budget

    def test_invalid_cap_rejected(self, planner):
        with pytest.raises(UseCaseError):
            plan_for_price(planner, tpch.QUERY_Q3, max_dollars=0.0)
