"""Tests for repro.core.monetary."""

import math

import pytest

from repro.cluster.containers import ResourceConfiguration
from repro.cluster.pricing import PriceModel
from repro.core.monetary import (
    compare_monetary,
    join_dollars,
    monetary_cost_curve,
    monetary_switch_point,
)
from repro.core.switch_points import find_switch_point
from repro.engine.joins import JoinAlgorithm, join_execution
from repro.engine.profiles import HIVE_PROFILE


def rc(nc, cs):
    return ResourceConfiguration(num_containers=nc, container_gb=cs)


class TestJoinDollars:
    def test_matches_time_times_memory(self):
        config = rc(10, 4.0)
        price = PriceModel(dollars_per_gb_hour=1.0)
        run = join_execution(
            JoinAlgorithm.SORT_MERGE, 3.0, 77.0, config, HIVE_PROFILE
        )
        expected = 40.0 * run.time_s / 3600.0
        assert join_dollars(
            JoinAlgorithm.SORT_MERGE, 3.0, 77.0, config, HIVE_PROFILE, price
        ) == pytest.approx(expected)

    def test_infeasible_is_infinite(self):
        assert (
            join_dollars(
                JoinAlgorithm.BROADCAST_HASH,
                9.0,
                77.0,
                rc(10, 3.0),
                HIVE_PROFILE,
            )
            == math.inf
        )

    def test_price_rate_scales_linearly(self):
        config = rc(10, 4.0)
        cheap = join_dollars(
            JoinAlgorithm.SORT_MERGE,
            3.0,
            77.0,
            config,
            HIVE_PROFILE,
            PriceModel(dollars_per_gb_hour=1.0),
        )
        pricey = join_dollars(
            JoinAlgorithm.SORT_MERGE,
            3.0,
            77.0,
            config,
            HIVE_PROFILE,
            PriceModel(dollars_per_gb_hour=2.0),
        )
        assert pricey == pytest.approx(2 * cheap)


class TestCompareMonetary:
    def test_cheaper_implementation(self):
        comparison = compare_monetary(0.2, 77.0, rc(10, 7.0), HIVE_PROFILE)
        assert comparison.cheaper is JoinAlgorithm.BROADCAST_HASH

    def test_oom_makes_smj_cheaper(self):
        comparison = compare_monetary(9.0, 77.0, rc(10, 3.0), HIVE_PROFILE)
        assert comparison.cheaper is JoinAlgorithm.SORT_MERGE
        assert comparison.bhj_dollars == math.inf

    def test_curve_length(self):
        configs = [rc(10, cs) for cs in (3.0, 5.0, 7.0)]
        curve = monetary_cost_curve(3.0, 77.0, configs, HIVE_PROFILE)
        assert len(curve) == 3
        assert [c.config for c in curve] == configs


class TestMonetarySwitchPoint:
    def test_matches_time_switch_at_fixed_config(self):
        """At a fixed configuration money = time x constant, so the
        monetary switch point equals the time switch point -- the
        paper's 'the switching points remain the same' (Sec III-C)."""
        config = rc(10, 9.0)
        money = monetary_switch_point(
            HIVE_PROFILE, 77.0, config, resolution_gb=0.1
        )
        time = find_switch_point(
            HIVE_PROFILE, 77.0, config, resolution_gb=0.1
        )
        assert money.switch_gb == pytest.approx(time.switch_gb)

    def test_switch_varies_with_resources(self):
        """Fig 7: monetary switch points move with the resources."""
        small = monetary_switch_point(
            HIVE_PROFILE, 77.0, rc(10, 3.0), resolution_gb=0.1
        )
        large = monetary_switch_point(
            HIVE_PROFILE, 77.0, rc(10, 9.0), resolution_gb=0.1
        )
        assert small.switch_gb != large.switch_gb

    def test_metric_recorded(self):
        point = monetary_switch_point(
            HIVE_PROFILE, 77.0, rc(10, 3.0), resolution_gb=0.2
        )
        from repro.core.switch_points import SwitchMetric

        assert point.metric is SwitchMetric.MONEY
