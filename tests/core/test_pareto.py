"""Unit tests for the Pareto frontier engine and the objective API.

The property suite (``tests/properties/test_pareto_properties.py``)
pins determinism and the weighted-migration safety net; this file
covers the pieces in isolation: strict dominance semantics, the shared
``frontier()`` reference helper, the vectorized skyline against an
O(n^2) brute force, :func:`repro.core.pareto.compute_frontier` against
exhaustive per-stage enumeration on a tiny grid, the
:class:`~repro.core.pareto.PlanObjective` value type, the deprecation
shims, and the serving-layer objective fingerprint.
"""

import math
import warnings

import numpy as np
import pytest

from repro.catalog import tpch
from repro.cluster.cluster import ClusterConditions
from repro.core.pareto import (
    ParetoPlanningResult,
    PlanObjective,
    _weak_skyline_candidates,
    compute_frontier,
)
from repro.core.raqo import (
    RaqoCoster,
    RaqoPlanner,
    ResourcePlanningMethod,
)
from repro.planner.cost_interface import (
    Cost,
    PlanningContext,
    frontier,
)

#: Tiny grid: 4 x 3 = 12 configurations, so exhaustive cross products
#: over two stages stay at 144 candidates.
TINY_CLUSTER = ClusterConditions(max_containers=4, max_container_gb=3.0)


class TestDominanceBoundary:
    """The strict/weak boundary of ``Cost.dominates``."""

    def test_equal_in_both_does_not_dominate(self):
        cost = Cost(time_s=3.0, money=0.5)
        assert not cost.dominates(Cost(time_s=3.0, money=0.5))

    def test_dominance_is_irreflexive(self):
        cost = Cost(time_s=3.0, money=0.5)
        assert not cost.dominates(cost)

    def test_equal_in_one_strictly_better_in_other_dominates(self):
        better_time = Cost(time_s=2.0, money=0.5)
        better_money = Cost(time_s=3.0, money=0.2)
        base = Cost(time_s=3.0, money=0.5)
        assert better_time.dominates(base)
        assert better_money.dominates(base)
        assert not base.dominates(better_time)
        assert not base.dominates(better_money)

    def test_tradeoff_points_do_not_dominate_each_other(self):
        fast = Cost(time_s=1.0, money=9.0)
        cheap = Cost(time_s=9.0, money=1.0)
        assert not fast.dominates(cheap)
        assert not cheap.dominates(fast)


def _brute_force_frontier(entries):
    """O(n^2) reference: keep non-dominated, first-occurrence dedup."""
    kept = []
    seen = set()
    for item, cost in entries:
        if not cost.is_finite:
            continue
        if (cost.time_s, cost.money) in seen:
            continue
        if any(
            other.dominates(cost) for _, other in entries
        ):
            continue
        seen.add((cost.time_s, cost.money))
        kept.append((item, cost))
    kept.sort(key=lambda entry: entry[1].time_s)
    return kept


class TestFrontierHelper:
    def test_matches_brute_force_on_random_entries(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            n = int(rng.integers(1, 40))
            times = rng.integers(1, 8, size=n).astype(float)
            money = rng.integers(1, 8, size=n).astype(float)
            entries = [
                (i, Cost(time_s=float(times[i]), money=float(money[i])))
                for i in range(n)
            ]
            assert frontier(entries) == _brute_force_frontier(entries)

    def test_drops_infeasible_and_dedups_exact_ties(self):
        entries = [
            ("inf", Cost(time_s=math.inf, money=1.0)),
            ("a", Cost(time_s=2.0, money=2.0)),
            ("b", Cost(time_s=2.0, money=2.0)),  # exact duplicate
            ("c", Cost(time_s=1.0, money=3.0)),
        ]
        kept = frontier(entries)
        assert [item for item, _ in kept] == ["c", "a"]

    def test_first_occurrence_wins_on_ties(self):
        entries = [
            ("second", Cost(time_s=5.0, money=1.0)),
            ("first", Cost(time_s=5.0, money=1.0)),
        ]
        assert [item for item, _ in frontier(entries)] == ["second"]

    def test_empty(self):
        assert frontier([]) == []


class TestVectorizedSkyline:
    def test_admits_a_superset_of_the_exact_frontier(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            n = int(rng.integers(1, 60))
            times = rng.integers(1, 10, size=n).astype(float)
            money = rng.integers(1, 10, size=n).astype(float)
            admitted = set(
                int(i)
                for i in _weak_skyline_candidates(times, money)
            )
            entries = [
                (i, Cost(time_s=float(times[i]), money=float(money[i])))
                for i in range(n)
            ]
            exact = {item for item, _ in frontier(entries)}
            assert exact <= admitted
            # And the scalar tail over the admitted set recovers the
            # exact frontier -- the two-pass composition is lossless.
            tail = frontier(
                [entries[i] for i in sorted(admitted)]
            )
            assert tail == _brute_force_frontier(entries)


class TestComputeFrontier:
    def _frontier(self, catalog, query):
        planner = RaqoPlanner(
            catalog,
            cluster=TINY_CLUSTER,
            resource_method=ResourcePlanningMethod.BRUTE_FORCE,
            objective=PlanObjective.pareto(),
        )
        result = planner.optimize(query)
        assert isinstance(result, ParetoPlanningResult)
        return planner, result

    def test_matches_exhaustive_stage_enumeration(
        self, tpch_catalog_sf100
    ):
        """The Minkowski fold equals brute force over all config tuples."""
        planner, result = self._frontier(tpch_catalog_sf100, tpch.QUERY_Q3)
        model = planner.cost_model
        rate = planner.price_model.dollars_per_gb_hour
        context = planner.make_context(
            TINY_CLUSTER, query=tpch.QUERY_Q3
        )
        grid = TINY_CLUSTER.config_grid()
        stage_costs = []
        for join in result.plan.joins_postorder():
            small, large = context.join_io_gb(
                join.left.tables, join.right.tables
            )
            costs = []
            for index in range(grid.num_configs):
                config = grid.config_at(index)
                time_s = model.predict_time(
                    join.algorithm, small, large, config
                )
                if not math.isfinite(time_s):
                    costs.append(None)
                    continue
                money = (
                    config.num_containers
                    * config.container_gb
                    * time_s
                    / 3600.0
                    * rate
                )
                costs.append(Cost(time_s=time_s, money=money))
            stage_costs.append(costs)

        combos = [((), Cost(time_s=0.0, money=0.0))]
        for costs in stage_costs:
            combos = [
                (indexes + (i,), total + cost)
                for indexes, total in combos
                for i, cost in enumerate(costs)
                if cost is not None
            ]
        expected = frontier(combos)
        got = [
            ((point.time_s, point.money), point.configs)
            for point in result.frontier.points
        ]
        assert [(cost.time_s, cost.money) for _, cost in expected] == [
            pair for pair, _ in got
        ]
        # The chosen per-stage allocations match the enumeration too.
        for (indexes, _), (_, configs) in zip(expected, got):
            assert tuple(
                grid.config_at(i) for i in indexes
            ) == configs

    def test_counters_account_for_grid_and_pruning(
        self, tpch_catalog_sf100
    ):
        planner, result = self._frontier(tpch_catalog_sf100, tpch.QUERY_Q3)
        context = planner.make_context(
            TINY_CLUSTER, query=tpch.QUERY_Q3
        )
        resource_frontier = compute_frontier(
            result.plan, context, planner.cost_model, planner.price_model
        )
        grid = TINY_CLUSTER.config_grid()
        distinct = {
            (
                planner.cost_model.model_key(stage.algorithm),
                stage.small_gb,
                stage.large_gb,
            )
            for stage in resource_frontier.stages
        }
        assert context.counters.resource_iterations == (
            grid.num_configs * len(distinct)
        )
        assert (
            context.counters.dominated_pruned
            == resource_frontier.dominated_pruned
        )
        assert context.counters.frontier_points == len(
            resource_frontier
        )
        # The planning result merged the frontier pass's counters.
        assert result.counters.dominated_pruned > 0
        assert result.counters.frontier_points == len(result.frontier)

    def test_search_cost_preserved_and_plan_annotated(
        self, tpch_catalog_sf100
    ):
        _, result = self._frontier(tpch_catalog_sf100, tpch.QUERY_Q3)
        assert result.search_cost is not None
        # pareto executes the fastest point, whose cost leads the
        # frontier and is what the plan is annotated for.
        assert result.cost == result.frontier.points[0].cost
        joins = list(result.plan.joins_postorder())
        assert [j.resources for j in joins] == list(
            result.selected.configs
        )


class TestPlanObjective:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("fastest", PlanObjective.fastest()),
            ("cheapest", PlanObjective.cheapest()),
            ("pareto", PlanObjective.pareto()),
            ("weighted:2.5", PlanObjective.weighted(2.5)),
            ("latency-bound:30", PlanObjective.latency_bounded(30.0)),
            ("latency_bound:30", PlanObjective.latency_bounded(30.0)),
            ("  FASTEST  ", PlanObjective.fastest()),
        ],
    )
    def test_parse_accepts(self, spec, expected):
        assert PlanObjective.parse(spec) == expected

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "bogus",
            "weighted",
            "weighted:",
            "weighted:nan",
            "weighted:-1",
            "weighted:inf",
            "latency-bound:0",
            "latency-bound:x",
            "pareto:1",
        ],
    )
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            PlanObjective.parse(spec)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PlanObjective(kind="nonsense")
        with pytest.raises(ValueError):
            PlanObjective.weighted(-2.0)
        with pytest.raises(ValueError):
            PlanObjective.latency_bounded(0.0)

    def test_fingerprints_distinguish_objectives(self):
        objectives = [
            PlanObjective.fastest(),
            PlanObjective.cheapest(),
            PlanObjective.pareto(),
            PlanObjective.weighted(1.0),
            PlanObjective.weighted(2.0),
            PlanObjective.latency_bounded(30.0),
            PlanObjective.latency_bounded(60.0),
        ]
        fingerprints = [o.fingerprint() for o in objectives]
        assert len(set(fingerprints)) == len(fingerprints)
        # parse() round-trips every CLI-expressible fingerprint.
        for objective in objectives:
            assert PlanObjective.parse(str(objective)) == objective

    def test_search_weights(self):
        assert PlanObjective.fastest().money_weight == 0.0
        assert PlanObjective.fastest().time_weight == 1.0
        assert PlanObjective.weighted(3.0).money_weight == 3.0
        assert PlanObjective.cheapest().time_weight == 0.0
        assert PlanObjective.cheapest().money_weight == 1.0
        assert not PlanObjective.fastest().needs_frontier
        assert not PlanObjective.weighted(3.0).needs_frontier
        assert PlanObjective.cheapest().needs_frontier
        assert PlanObjective.pareto().needs_frontier
        assert PlanObjective.latency_bounded(5.0).needs_frontier


class TestDeprecationShims:
    def test_planner_money_weight_warns(self, tpch_catalog_sf100):
        with pytest.deprecated_call():
            planner = RaqoPlanner(
                tpch_catalog_sf100, money_weight=4.0
            )
        assert planner.objective == PlanObjective.weighted(4.0)

    def test_planner_rejects_both_spellings(self, tpch_catalog_sf100):
        with pytest.raises(TypeError):
            RaqoPlanner(
                tpch_catalog_sf100,
                objective=PlanObjective.fastest(),
                money_weight=1.0,
            )

    def test_clone_does_not_rewarn(self, tpch_catalog_sf100):
        with pytest.deprecated_call():
            planner = RaqoPlanner(
                tpch_catalog_sf100, money_weight=4.0
            )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            clone = planner.clone()
        assert clone.objective == PlanObjective.weighted(4.0)

    def test_session_money_weight_warns(self, tpch_catalog_sf100):
        from repro.api import RaqoSession

        with pytest.deprecated_call():
            session = RaqoSession(
                tpch_catalog_sf100, money_weight=2.0
            )
        assert session.objective == PlanObjective.weighted(2.0)

    def test_coster_money_weight_is_not_deprecated(
        self, tpch_catalog_sf100
    ):
        from repro.core.raqo import default_cost_model

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            RaqoCoster(model=default_cost_model(), money_weight=2.0)


class TestSessionObjectives:
    def test_per_call_objective_override(self, tpch_catalog_sf100):
        from repro.api import RaqoSession

        session = RaqoSession(
            tpch_catalog_sf100,
            cluster=TINY_CLUSTER,
            resource_method=ResourcePlanningMethod.BRUTE_FORCE,
        )
        default = session.plan("Q3")
        cheapest = session.plan(
            "Q3", objective=PlanObjective.cheapest()
        )
        assert not isinstance(default, ParetoPlanningResult)
        assert isinstance(cheapest, ParetoPlanningResult)
        assert cheapest.cost.money <= default.cost.money
        # The override planner is cached and reused.
        again = session.plan("Q3", objective=PlanObjective.cheapest())
        assert again.cost == cheapest.cost

    def test_frontier_metrics_recorded(self, tpch_catalog_sf100):
        from repro.api import RaqoSession

        session = RaqoSession(
            tpch_catalog_sf100,
            cluster=TINY_CLUSTER,
            resource_method=ResourcePlanningMethod.BRUTE_FORCE,
            objective=PlanObjective.pareto(),
        )
        result = session.plan("Q3")
        snapshot = session.metrics_snapshot()
        counters = snapshot["counters"]
        histograms = snapshot["histograms"]
        assert counters["planner.dominated_pruned"] == (
            result.frontier.dominated_pruned
        )
        assert histograms["planner.frontier_size"]["count"] == 1


class TestServingObjectiveFingerprint:
    def test_objective_splits_cache_keys(self, tpch_catalog_sf100):
        from repro.api import RaqoSession

        session = RaqoSession(tpch_catalog_sf100)
        fast = session.serve()
        cheap = session.serve(objective=PlanObjective.cheapest())
        query = session.resolve_query("Q3")
        assert fast.cache_key(query) != cheap.cache_key(query)
        assert "cheapest" in cheap.cache_key(query)

    def test_service_plans_with_its_objective(self, tpch_catalog_sf100):
        from repro.api import RaqoSession

        session = RaqoSession(
            tpch_catalog_sf100,
            cluster=TINY_CLUSTER,
            resource_method=ResourcePlanningMethod.BRUTE_FORCE,
        )
        with session.serve(
            workers=1, objective=PlanObjective.cheapest()
        ) as service:
            response = service.plan("Q3")
        assert isinstance(response.result, ParetoPlanningResult)
        assert response.result.objective == PlanObjective.cheapest()
