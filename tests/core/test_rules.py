"""Tests for repro.core.rules."""

import pytest

from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.containers import ResourceConfiguration
from repro.core.rules import (
    DefaultThresholdRule,
    RaqoDecisionTreeRule,
    apply_rule_to_plan,
)
from repro.core.switch_points import compare_joins
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiles import HIVE_PROFILE
from repro.planner.plan import left_deep_plan


def rc(nc, cs):
    return ResourceConfiguration(num_containers=nc, container_gb=cs)


@pytest.fixture(scope="module")
def raqo_rule():
    return RaqoDecisionTreeRule.train(
        HIVE_PROFILE,
        large_gb=77.0,
        data_sizes_gb=[0.25, 0.5, 1, 2, 3, 4, 5, 6, 7, 8],
        container_sizes_gb=[2, 3, 5, 7, 9, 11],
        container_counts=[5, 10, 20, 40],
    )


class TestDefaultThresholdRule:
    def test_broadcast_below_threshold(self):
        rule = DefaultThresholdRule(threshold_gb=0.010)
        assert (
            rule.choose(0.005, 77.0, rc(10, 4.0))
            is JoinAlgorithm.BROADCAST_HASH
        )

    def test_smj_above_threshold(self):
        rule = DefaultThresholdRule(threshold_gb=0.010)
        assert (
            rule.choose(0.5, 77.0, rc(10, 4.0))
            is JoinAlgorithm.SORT_MERGE
        )

    def test_resource_oblivious(self):
        rule = DefaultThresholdRule()
        for config in (rc(1, 1.0), rc(100, 10.0)):
            assert rule.choose(
                5.0, 77.0, config
            ) is JoinAlgorithm.SORT_MERGE

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            DefaultThresholdRule(threshold_gb=0.0)

    def test_export_text_has_fig10_fields(self):
        text = DefaultThresholdRule().export_text()
        assert "Data Size (MB) <= 10.24" in text
        assert "class=BHJ" in text and "class=SMJ" in text


class TestRaqoDecisionTreeRule:
    def test_tracks_oracle_choices(self, raqo_rule):
        """The learned rule must agree with the simulator oracle on the
        bulk of a fresh evaluation grid."""
        matches = 0
        total = 0
        for ss in (0.4, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5):
            for cs in (3.0, 6.0, 10.0):
                for nc in (5, 15, 35):
                    config = rc(nc, cs)
                    oracle = compare_joins(
                        ss, 77.0, config, HIVE_PROFILE
                    )
                    chosen = raqo_rule.choose(ss, 77.0, config)
                    total += 1
                    matches += oracle is chosen
        assert matches / total >= 0.8

    def test_never_suggests_oom_broadcast(self, raqo_rule):
        # Even if the tree mislabels, the memory wall is enforced.
        for ss in (4.0, 6.0, 8.0):
            chosen = raqo_rule.choose(ss, 77.0, rc(10, 3.0))
            assert chosen is JoinAlgorithm.SORT_MERGE

    def test_resource_awareness(self, raqo_rule):
        """The same data must yield different choices under different
        resources -- the whole point of rule-based RAQO."""
        choices = {
            raqo_rule.choose(5.1, 77.0, rc(10, 5.0)),
            raqo_rule.choose(5.1, 77.0, rc(10, 10.0)),
        }
        assert choices == {
            JoinAlgorithm.SORT_MERGE,
            JoinAlgorithm.BROADCAST_HASH,
        }

    def test_max_path_length_bounded(self, raqo_rule):
        # Paper: 6 (Hive) / 7 (Spark); ours should be comparable.
        assert raqo_rule.max_path_length <= 10

    def test_export_text(self, raqo_rule):
        text = raqo_rule.export_text()
        assert "Data Size (GB)" in text
        assert "gini=" in text

    def test_train_with_max_depth(self):
        rule = RaqoDecisionTreeRule.train(
            HIVE_PROFILE,
            large_gb=77.0,
            data_sizes_gb=[1, 4, 7],
            container_sizes_gb=[3, 9],
            container_counts=[10],
            max_depth=2,
        )
        assert rule.max_path_length <= 2


class TestApplyRuleToPlan:
    def test_assigns_algorithms_per_join(
        self, tpch_catalog_sf100, raqo_rule
    ):
        estimator = StatisticsEstimator(tpch_catalog_sf100)
        plan = left_deep_plan(("nation", "supplier", "partsupp"))
        config = rc(10, 10.0)
        chosen = apply_rule_to_plan(plan, raqo_rule, estimator, config)
        algorithms = [
            j.algorithm for j in chosen.joins_postorder()
        ]
        assert len(algorithms) == 2
        # nation (3 KB) joined to supplier is a clear broadcast.
        assert algorithms[0] is JoinAlgorithm.BROADCAST_HASH

    def test_preserves_join_order(self, tpch_catalog_sf100, raqo_rule):
        estimator = StatisticsEstimator(tpch_catalog_sf100)
        plan = left_deep_plan(("customer", "orders", "lineitem"))
        chosen = apply_rule_to_plan(
            plan, raqo_rule, estimator, rc(10, 4.0)
        )
        from repro.planner.plan import join_order

        assert join_order(chosen) == join_order(plan)

    def test_default_rule_on_plan(self, tpch_catalog_sf100):
        estimator = StatisticsEstimator(tpch_catalog_sf100)
        plan = left_deep_plan(("customer", "orders", "lineitem"))
        chosen = apply_rule_to_plan(
            plan, DefaultThresholdRule(), estimator, rc(10, 4.0)
        )
        # Everything above 10 MB: all SMJ.
        assert all(
            j.algorithm is JoinAlgorithm.SORT_MERGE
            for j in chosen.joins_postorder()
        )
