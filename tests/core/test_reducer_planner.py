"""Tests for repro.core.reducer_planner."""

import pytest

from repro.cluster.containers import ResourceConfiguration
from repro.core.reducer_planner import (
    candidate_reducer_counts,
    plan_reducers,
    plan_reducers_for,
)
from repro.engine.joins import (
    JoinAlgorithm,
    default_num_reducers,
    smj_execution,
)
from repro.engine.profiles import HIVE_PROFILE


def rc(nc, cs):
    return ResourceConfiguration(num_containers=nc, container_gb=cs)


class TestCandidates:
    def test_includes_auto_and_landmarks(self):
        config = rc(10, 4.0)
        candidates = candidate_reducer_counts(80.0, config, HIVE_PROFILE)
        auto = default_num_reducers(80.0, HIVE_PROFILE)
        assert auto in candidates
        assert 10 in candidates  # nc
        assert 200 in candidates

    def test_bounded_by_max_reducers(self):
        candidates = candidate_reducer_counts(
            1e6, rc(10, 4.0), HIVE_PROFILE
        )
        assert max(candidates) <= HIVE_PROFILE.max_reducers
        assert min(candidates) >= 1

    def test_sorted_unique(self):
        candidates = candidate_reducer_counts(
            10.0, rc(10, 4.0), HIVE_PROFILE
        )
        assert list(candidates) == sorted(set(candidates))


class TestPlanReducers:
    def test_never_worse_than_auto(self):
        plan = plan_reducers(3.0, 77.0, rc(10, 4.0), HIVE_PROFILE)
        assert plan.time_s <= plan.auto_time_s
        assert plan.improvement_over_auto >= 1.0

    def test_chosen_count_actually_achieves_time(self):
        config = rc(10, 4.0)
        plan = plan_reducers(3.0, 77.0, config, HIVE_PROFILE)
        actual = smj_execution(
            3.0, 77.0, config, HIVE_PROFILE,
            num_reducers=plan.num_reducers,
        ).time_s
        assert actual == pytest.approx(plan.time_s)

    def test_beats_bad_explicit_candidates(self):
        config = rc(40, 4.0)
        # With 40 containers, 2 reducers waste parallelism badly.
        bad = smj_execution(
            3.0, 77.0, config, HIVE_PROFILE, num_reducers=2
        ).time_s
        plan = plan_reducers(3.0, 77.0, config, HIVE_PROFILE)
        assert plan.time_s < bad

    def test_explicit_candidates(self):
        plan = plan_reducers(
            3.0, 77.0, rc(10, 4.0), HIVE_PROFILE, candidates=(5, 50)
        )
        assert plan.candidates_evaluated == 2
        # But never worse than auto, even if candidates are poor.
        assert plan.time_s <= plan.auto_time_s

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            plan_reducers(
                3.0, 77.0, rc(10, 4.0), HIVE_PROFILE, candidates=()
            )


class TestDispatch:
    def test_bhj_has_no_reducers(self):
        assert (
            plan_reducers_for(
                JoinAlgorithm.BROADCAST_HASH,
                3.0,
                77.0,
                rc(10, 4.0),
                HIVE_PROFILE,
            )
            is None
        )

    def test_smj_gets_a_plan(self):
        plan = plan_reducers_for(
            JoinAlgorithm.SORT_MERGE, 3.0, 77.0, rc(10, 4.0), HIVE_PROFILE
        )
        assert plan is not None
        assert plan.num_reducers >= 1
