"""Tests for repro.core.raqo: the joint planner and its costers."""

import math

import pytest

from repro.catalog import tpch
from repro.catalog.queries import Query
from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.core.cost_model import SimulatorCostModel
from repro.core.plan_cache import LookupMode
from repro.core.raqo import (
    DEFAULT_CLUSTER,
    DEFAULT_QO_RESOURCES,
    PlannerKind,
    QueryOptimizerCoster,
    RaqoCoster,
    RaqoPlanner,
    ResourcePlanningMethod,
    default_cost_model,
)
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiles import HIVE_PROFILE
from repro.planner.cost_interface import PlanningContext


@pytest.fixture(scope="module")
def catalog():
    return tpch.tpch_catalog(100)


@pytest.fixture()
def context(catalog):
    from repro.catalog.statistics import StatisticsEstimator

    return PlanningContext(
        estimator=StatisticsEstimator(catalog), cluster=DEFAULT_CLUSTER
    )


class TestQueryOptimizerCoster:
    def test_costs_at_fixed_resources(self, context):
        coster = QueryOptimizerCoster(model=default_cost_model())
        cost, resources = coster.join_cost(
            frozenset(("orders",)),
            frozenset(("lineitem",)),
            JoinAlgorithm.SORT_MERGE,
            context,
        )
        assert cost.is_finite
        assert resources is None  # two-step: no per-operator resources

    def test_no_resource_iterations(self, context):
        coster = QueryOptimizerCoster(model=default_cost_model())
        coster.join_cost(
            frozenset(("orders",)),
            frozenset(("lineitem",)),
            JoinAlgorithm.SORT_MERGE,
            context,
        )
        assert context.counters.resource_iterations == 0

    def test_infeasible_bhj(self, context):
        coster = QueryOptimizerCoster(
            model=SimulatorCostModel(HIVE_PROFILE),
            default_resources=ResourceConfiguration(num_containers=10, container_gb=3.0),
        )
        cost, _ = coster.join_cost(
            frozenset(("orders",)),  # ~17 GB at SF-100: no broadcast
            frozenset(("lineitem",)),
            JoinAlgorithm.BROADCAST_HASH,
            context,
        )
        assert not cost.is_finite

    def test_default_resources_clamped_to_cluster(self, catalog):
        from repro.catalog.statistics import StatisticsEstimator

        tiny = ClusterConditions(max_containers=4, max_container_gb=2.0)
        context = PlanningContext(
            estimator=StatisticsEstimator(catalog), cluster=tiny
        )
        coster = QueryOptimizerCoster(
            model=SimulatorCostModel(HIVE_PROFILE),
            default_resources=ResourceConfiguration(num_containers=100, container_gb=10.0),
        )
        cost, _ = coster.join_cost(
            frozenset(("orders",)),
            frozenset(("lineitem",)),
            JoinAlgorithm.SORT_MERGE,
            context,
        )
        # Must match costing at the clamped (4 x 2 GB) configuration.
        oracle = SimulatorCostModel(HIVE_PROFILE)
        expected = oracle.predict_time(
            JoinAlgorithm.SORT_MERGE,
            *context.join_io_gb(["orders"], ["lineitem"]),
            ResourceConfiguration(num_containers=4, container_gb=2.0),
        )
        assert cost.time_s == pytest.approx(expected)


class TestRaqoCoster:
    def test_returns_planned_resources(self, context):
        coster = RaqoCoster(model=default_cost_model())
        cost, resources = coster.join_cost(
            frozenset(("orders",)),
            frozenset(("lineitem",)),
            JoinAlgorithm.SORT_MERGE,
            context,
        )
        assert cost.is_finite
        assert resources is not None
        assert context.cluster.contains(resources)

    def test_counts_resource_iterations(self, context):
        coster = RaqoCoster(model=default_cost_model())
        coster.join_cost(
            frozenset(("orders",)),
            frozenset(("lineitem",)),
            JoinAlgorithm.SORT_MERGE,
            context,
        )
        assert context.counters.resource_iterations > 0

    def test_brute_force_explores_whole_grid(self, context):
        coster = RaqoCoster(
            model=default_cost_model(),
            method=ResourcePlanningMethod.BRUTE_FORCE,
        )
        coster.join_cost(
            frozenset(("orders",)),
            frozenset(("lineitem",)),
            JoinAlgorithm.SORT_MERGE,
            context,
        )
        assert context.counters.resource_iterations == (
            context.cluster.grid_size
        )

    def test_hill_climb_beats_brute_force_iterations(self, catalog):
        from repro.catalog.statistics import StatisticsEstimator

        results = {}
        for method in ResourcePlanningMethod:
            context = PlanningContext(
                estimator=StatisticsEstimator(catalog),
                cluster=DEFAULT_CLUSTER,
            )
            coster = RaqoCoster(
                model=default_cost_model(), method=method
            )
            coster.join_cost(
                frozenset(("orders",)),
                frozenset(("lineitem",)),
                JoinAlgorithm.SORT_MERGE,
                context,
            )
            results[method] = context.counters.resource_iterations
        assert (
            results[ResourcePlanningMethod.HILL_CLIMB]
            < results[ResourcePlanningMethod.BRUTE_FORCE]
        )

    def test_bhj_gets_feasible_start(self, context):
        coster = RaqoCoster(model=SimulatorCostModel(HIVE_PROFILE))
        cost, resources = coster.join_cost(
            frozenset(("orders",)),  # ~17 GB: needs large containers
            frozenset(("lineitem",)),
            JoinAlgorithm.BROADCAST_HASH,
            context,
        )
        if cost.is_finite:
            assert resources.container_gb * 1.15 >= 16.0
        else:
            # orders exceeds even the biggest container: OK too.
            assert (
                17.0
                > context.cluster.max_container_gb
                * HIVE_PROFILE.hash_memory_fraction
            )

    def test_impossible_bhj_is_infeasible(self, context):
        coster = RaqoCoster(model=SimulatorCostModel(HIVE_PROFILE))
        cost, resources = coster.join_cost(
            frozenset(("lineitem",)),  # 72 GB broadcast: impossible
            frozenset(("orders", "customer")),
            JoinAlgorithm.BROADCAST_HASH,
            context,
        )
        assert not cost.is_finite
        assert resources is None

    def test_cache_hits_counted(self, context):
        from repro.core.plan_cache import ResourcePlanCache

        cache = ResourcePlanCache(mode=LookupMode.EXACT)
        # memoize=False so the repeat actually reaches the cache layer
        # (the within-run memo would otherwise absorb it first).
        coster = RaqoCoster(
            model=default_cost_model(), cache=cache, memoize=False
        )
        args = (
            frozenset(("orders",)),
            frozenset(("lineitem",)),
            JoinAlgorithm.SORT_MERGE,
            context,
        )
        coster.join_cost(*args)
        iterations_after_first = context.counters.resource_iterations
        coster.join_cost(*args)
        assert context.counters.cache_hits == 1
        assert context.counters.cache_misses == 1
        # No extra hill climbing on the hit.
        assert context.counters.resource_iterations == (
            iterations_after_first
        )

    def test_memo_short_circuits_repeat_costings(self, context):
        coster = RaqoCoster(model=default_cost_model())
        args = (
            frozenset(("orders",)),
            frozenset(("lineitem",)),
            JoinAlgorithm.SORT_MERGE,
            context,
        )
        first = coster.join_cost(*args)
        iterations_after_first = context.counters.resource_iterations
        second = coster.join_cost(*args)
        assert second == first
        assert context.counters.memo_hits == 1
        # The repeat never reaches the planner or the cache layer.
        assert context.counters.resource_iterations == (
            iterations_after_first
        )
        assert context.counters.cache_hits == 0

    def test_memo_distinguishes_algorithms(self, context):
        coster = RaqoCoster(model=default_cost_model())
        for algorithm in (
            JoinAlgorithm.SORT_MERGE,
            JoinAlgorithm.BROADCAST_HASH,
        ):
            coster.join_cost(
                frozenset(("customer",)),
                frozenset(("orders",)),
                algorithm,
                context,
            )
        assert context.counters.memo_hits == 0

    def test_memo_caches_infeasible_results(self, context):
        coster = RaqoCoster(model=SimulatorCostModel(HIVE_PROFILE))
        args = (
            frozenset(("lineitem",)),  # 72 GB broadcast: impossible
            frozenset(("orders", "customer")),
            JoinAlgorithm.BROADCAST_HASH,
            context,
        )
        first, _ = coster.join_cost(*args)
        second, _ = coster.join_cost(*args)
        assert not first.is_finite and not second.is_finite
        assert context.counters.memo_hits == 1

    def test_memo_scoped_to_context(self, catalog):
        from repro.catalog.statistics import StatisticsEstimator

        coster = RaqoCoster(model=default_cost_model())
        for _ in range(2):
            fresh = PlanningContext(
                estimator=StatisticsEstimator(catalog),
                cluster=DEFAULT_CLUSTER,
            )
            coster.join_cost(
                frozenset(("orders",)),
                frozenset(("lineitem",)),
                JoinAlgorithm.SORT_MERGE,
                fresh,
            )
            # A fresh context starts with an empty memo every time.
            assert fresh.counters.memo_hits == 0

    def test_vectorized_brute_force_matches_scalar(self, catalog):
        from repro.catalog.statistics import StatisticsEstimator

        results = {}
        for vectorized in (False, True):
            context = PlanningContext(
                estimator=StatisticsEstimator(catalog),
                cluster=DEFAULT_CLUSTER,
            )
            coster = RaqoCoster(
                model=default_cost_model(),
                method=ResourcePlanningMethod.BRUTE_FORCE,
                vectorized=vectorized,
            )
            results[vectorized] = (
                coster.join_cost(
                    frozenset(("orders",)),
                    frozenset(("lineitem",)),
                    JoinAlgorithm.SORT_MERGE,
                    context,
                ),
                context.counters.resource_iterations,
            )
        assert results[True] == results[False]

    def test_money_weight_changes_objective(self, catalog):
        from repro.catalog.statistics import StatisticsEstimator

        configs = {}
        for weight in (0.0, 50.0):
            context = PlanningContext(
                estimator=StatisticsEstimator(catalog),
                cluster=DEFAULT_CLUSTER,
            )
            coster = RaqoCoster(
                model=default_cost_model(), money_weight=weight
            )
            _, resources = coster.join_cost(
                frozenset(("orders",)),
                frozenset(("lineitem",)),
                JoinAlgorithm.SORT_MERGE,
                context,
            )
            configs[weight] = resources
        # A strong money weight must not pick more total memory.
        assert (
            configs[50.0].total_memory_gb
            <= configs[0.0].total_memory_gb
        )


class TestRaqoPlanner:
    def test_selinger_plans_all_queries(self, catalog):
        planner = RaqoPlanner.default(catalog)
        for query in tpch.EVALUATION_QUERIES:
            result = planner.optimize(query)
            assert result.cost.is_finite
            assert result.plan.tables == frozenset(query.tables)

    def test_raqo_plans_carry_resources(self, catalog):
        planner = RaqoPlanner.default(catalog)
        result = planner.optimize(tpch.QUERY_Q3)
        for join in result.plan.joins_postorder():
            assert join.resources is not None

    def test_baseline_plans_have_no_resources(self, catalog):
        planner = RaqoPlanner.two_step_baseline(catalog)
        result = planner.optimize(tpch.QUERY_Q3)
        for join in result.plan.joins_postorder():
            assert join.resources is None
        assert result.resource_iterations == 0

    def test_fast_randomized_planner_kind(self, catalog):
        planner = RaqoPlanner(
            catalog, planner_kind=PlannerKind.FAST_RANDOMIZED
        )
        result = planner.optimize(tpch.QUERY_Q2)
        assert result.planner_name == "fast_randomized"
        assert result.cost.is_finite

    def test_cache_cleared_between_queries_by_default(self, catalog):
        planner = RaqoPlanner.default(catalog)
        planner.optimize(tpch.QUERY_Q12)
        size_after_first = planner.cache.size()
        planner.optimize(tpch.QUERY_Q12)
        assert planner.cache.size() == size_after_first

    def test_across_query_cache_accumulates(self, catalog):
        planner = RaqoPlanner(
            catalog, clear_cache_between_queries=False
        )
        planner.optimize(tpch.QUERY_Q12)
        first = planner.optimize(tpch.QUERY_Q3)
        assert first.counters.cache_hits > 0

    def test_replan_under_new_cluster(self, catalog):
        planner = RaqoPlanner.default(catalog)
        wide = planner.optimize(tpch.QUERY_Q2)
        narrow = planner.replan(
            tpch.QUERY_Q2,
            ClusterConditions(max_containers=8, max_container_gb=2.0),
        )
        assert narrow.cost.is_finite
        for join in narrow.plan.joins_postorder():
            assert join.resources.num_containers <= 8
            assert join.resources.container_gb <= 2.0
        # Less resources cannot make the predicted plan faster.
        assert narrow.cost.time_s >= wide.cost.time_s * 0.99

    def test_simulator_model_option(self, catalog):
        planner = RaqoPlanner(
            catalog, cost_model=SimulatorCostModel(HIVE_PROFILE)
        )
        result = planner.optimize(tpch.QUERY_Q3)
        assert result.cost.is_finite

    def test_default_cost_model_memoised(self):
        assert default_cost_model() is default_cost_model()

    def test_default_qo_resources_shape(self):
        assert DEFAULT_QO_RESOURCES.num_containers == 10
        assert DEFAULT_QO_RESOURCES.container_gb == 4.0
