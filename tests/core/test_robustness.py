"""Tests for repro.core.robustness."""

import pytest

from repro.catalog import tpch
from repro.cluster.cluster import ClusterConditions
from repro.core.raqo import RaqoPlanner
from repro.core.robustness import (
    RobustChoice,
    RobustnessCriterion,
    RobustnessError,
    robust_plan,
)

SCENARIOS = (
    ClusterConditions(max_containers=100, max_container_gb=10.0),
    ClusterConditions(max_containers=25, max_container_gb=5.0),
    ClusterConditions(max_containers=8, max_container_gb=2.0),
)


@pytest.fixture(scope="module")
def planner():
    return RaqoPlanner.default(tpch.tpch_catalog(100))


class TestRobustPlan:
    def test_covers_all_scenarios(self, planner):
        choice = robust_plan(planner, tpch.QUERY_Q3, SCENARIOS)
        assert len(choice.per_scenario) == len(SCENARIOS)
        assert choice.plan.tables == frozenset(tpch.QUERY_Q3.tables)

    def test_regret_non_negative(self, planner):
        choice = robust_plan(planner, tpch.QUERY_Q3, SCENARIOS)
        for entry in choice.per_scenario:
            assert entry.regret_s >= -1e-6

    def test_minmax_regret_bounded_by_worst_case_choice(self, planner):
        regret_choice = robust_plan(
            planner,
            tpch.QUERY_Q2,
            SCENARIOS,
            RobustnessCriterion.MINMAX_REGRET,
        )
        worst_choice = robust_plan(
            planner,
            tpch.QUERY_Q2,
            SCENARIOS,
            RobustnessCriterion.WORST_CASE,
        )
        # Each criterion is optimal for its own metric.
        assert (
            regret_choice.max_regret_s
            <= worst_choice.max_regret_s + 1e-6
        )
        assert (
            worst_choice.worst_case_s
            <= regret_choice.worst_case_s + 1e-6
        )

    def test_single_scenario_is_just_optimal(self, planner):
        scenario = SCENARIOS[0]
        choice = robust_plan(planner, tpch.QUERY_Q3, (scenario,))
        assert choice.max_regret_s == pytest.approx(0.0, abs=1e-6)

    def test_empty_scenarios_rejected(self, planner):
        with pytest.raises(RobustnessError):
            robust_plan(planner, tpch.QUERY_Q3, ())

    def test_worst_case_metric_consistent(self, planner):
        choice = robust_plan(
            planner,
            tpch.QUERY_Q3,
            SCENARIOS,
            RobustnessCriterion.WORST_CASE,
        )
        assert choice.worst_case_s == max(
            entry.time_s for entry in choice.per_scenario
        )
