"""Tests for repro.core.resource_planner (Algorithm 1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.core.resource_planner import (
    ResourcePlanningError,
    brute_force_resource_plan,
    feasible_bhj_start,
    hill_climb_resource_plan,
)


def quadratic_bowl(optimum_nc, optimum_cs):
    """A convex cost with a unique interior optimum."""

    def cost(config):
        return (config.num_containers - optimum_nc) ** 2 + (
            config.container_gb - optimum_cs
        ) ** 2

    return cost


class TestBruteForce:
    def test_finds_global_optimum(self, small_cluster):
        outcome = brute_force_resource_plan(
            quadratic_bowl(5, 3.0), small_cluster
        )
        assert outcome.config == ResourceConfiguration(num_containers=5, container_gb=3.0)
        assert outcome.cost == 0.0

    def test_explores_entire_grid(self, small_cluster):
        outcome = brute_force_resource_plan(
            quadratic_bowl(5, 3.0), small_cluster
        )
        assert outcome.iterations == small_cluster.grid_size

    def test_tie_breaks_toward_smaller(self, small_cluster):
        outcome = brute_force_resource_plan(
            lambda config: 1.0, small_cluster
        )
        assert outcome.config == small_cluster.minimum_configuration


class TestVectorizedBruteForce:
    def test_matches_scalar_on_bowl(self, small_cluster):
        scalar = brute_force_resource_plan(
            quadratic_bowl(5, 3.0), small_cluster
        )
        fast = brute_force_resource_plan(
            quadratic_bowl(5, 3.0), small_cluster, vectorized=True
        )
        assert fast == scalar

    def test_grid_cost_fn_used(self, small_cluster):
        import numpy as np

        calls = []

        def grid_cost_fn(grid):
            calls.append(grid.num_configs)
            return np.asarray(grid.counts, dtype=float)

        outcome = brute_force_resource_plan(
            lambda c: float(c.num_containers),
            small_cluster,
            vectorized=True,
            grid_cost_fn=grid_cost_fn,
        )
        assert calls == [small_cluster.grid_size]
        assert outcome.config.num_containers == 1
        assert outcome.iterations == small_cluster.grid_size

    def test_bad_grid_shape_rejected(self, small_cluster):
        import numpy as np

        with pytest.raises(ResourcePlanningError, match="shape"):
            brute_force_resource_plan(
                lambda c: 1.0,
                small_cluster,
                vectorized=True,
                grid_cost_fn=lambda grid: np.zeros(3),
            )


class TestHillClimb:
    def test_finds_interior_optimum(self, small_cluster):
        outcome = hill_climb_resource_plan(
            quadratic_bowl(5, 3.0), small_cluster
        )
        assert outcome.config == ResourceConfiguration(num_containers=5, container_gb=3.0)

    def test_memo_skips_repeat_evaluations(self, paper_cluster):
        cost = quadratic_bowl(60, 7.0)
        evaluations = []

        def counting_cost(config):
            evaluations.append(config)
            return cost(config)

        outcome = hill_climb_resource_plan(counting_cost, paper_cluster)
        # Every invocation was for a distinct configuration...
        assert len(evaluations) == len(set(evaluations))
        # ...and the reported iterations count exactly those.
        assert outcome.iterations == len(evaluations)

    def test_memo_off_matches_path(self, paper_cluster):
        cost = quadratic_bowl(60, 7.0)
        memoized = hill_climb_resource_plan(cost, paper_cluster)
        plain = hill_climb_resource_plan(
            cost, paper_cluster, memoize=False
        )
        # Same climb, same answer; the memo only removes re-evaluations.
        assert memoized.config == plain.config
        assert memoized.cost == plain.cost
        assert memoized.iterations <= plain.iterations

    def test_explores_fewer_than_brute_force(self, paper_cluster):
        cost = quadratic_bowl(60, 7.0)
        brute = brute_force_resource_plan(cost, paper_cluster)
        climb = hill_climb_resource_plan(cost, paper_cluster)
        assert climb.config == brute.config
        assert climb.iterations < brute.iterations

    def test_starts_from_minimum_by_default(self, small_cluster):
        # With a monotone increasing cost, the climb stays at the start.
        outcome = hill_climb_resource_plan(
            lambda c: c.total_memory_gb, small_cluster
        )
        assert outcome.config == small_cluster.minimum_configuration

    def test_climbs_to_maximum_on_decreasing_cost(self, small_cluster):
        outcome = hill_climb_resource_plan(
            lambda c: -c.total_memory_gb, small_cluster
        )
        assert outcome.config == small_cluster.maximum_configuration

    def test_custom_start(self, paper_cluster):
        start = ResourceConfiguration(num_containers=50, container_gb=5.0)
        outcome = hill_climb_resource_plan(
            quadratic_bowl(52, 6.0), paper_cluster, start=start
        )
        assert outcome.config == ResourceConfiguration(num_containers=52, container_gb=6.0)

    def test_start_outside_cluster_rejected(self, small_cluster):
        with pytest.raises(ResourcePlanningError):
            hill_climb_resource_plan(
                quadratic_bowl(2, 2.0),
                small_cluster,
                start=ResourceConfiguration(num_containers=1000, container_gb=1.0),
            )

    def test_respects_bounds(self, small_cluster):
        seen = []

        def cost(config):
            seen.append(config)
            return -config.total_memory_gb

        hill_climb_resource_plan(cost, small_cluster)
        for config in seen:
            assert small_cluster.contains(config)

    def test_stuck_on_infinite_plateau_returns_start(
        self, small_cluster
    ):
        outcome = hill_climb_resource_plan(
            lambda c: math.inf, small_cluster
        )
        assert outcome.config == small_cluster.minimum_configuration
        assert outcome.cost == math.inf

    def test_respects_discrete_steps(self):
        cluster = ClusterConditions(
            max_containers=20,
            max_container_gb=8.0,
            container_step=5,
            container_gb_step=2.0,
        )
        outcome = hill_climb_resource_plan(
            quadratic_bowl(11, 5.0), cluster
        )
        # Reachable grid: nc in {1,6,11,16}, cs in {1,3,5,7}.
        assert outcome.config.num_containers in {1, 6, 11, 16}
        assert outcome.config.container_gb in {1.0, 3.0, 5.0, 7.0}
        assert outcome.config == ResourceConfiguration(num_containers=11, container_gb=5.0)

    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_hill_climb_matches_brute_force_on_convex(
        self, opt_nc, opt_cs
    ):
        """On separable convex costs, greedy coordinate descent finds
        the global optimum."""
        cluster = ClusterConditions(
            max_containers=30, max_container_gb=10.0
        )
        cost = quadratic_bowl(opt_nc, float(opt_cs))
        brute = brute_force_resource_plan(cost, cluster)
        climb = hill_climb_resource_plan(cost, cluster)
        assert climb.cost == pytest.approx(brute.cost)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_never_worse_than_start(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        cluster = ClusterConditions(
            max_containers=20, max_container_gb=5.0
        )
        weights = rng.uniform(-2, 2, size=4)

        def cost(config):
            return float(
                weights[0] * config.num_containers
                + weights[1] * config.container_gb
                + weights[2] * config.num_containers**2 / 20
                + weights[3] * config.container_gb**2
            )

        start = cluster.minimum_configuration
        outcome = hill_climb_resource_plan(cost, cluster, start=start)
        assert outcome.cost <= cost(start) + 1e-9


class TestFeasibleBhjStart:
    def test_small_table_starts_at_minimum(self, paper_cluster):
        start = feasible_bhj_start(0.5, 1.15, paper_cluster)
        assert start == paper_cluster.minimum_configuration

    def test_large_table_needs_bigger_container(self, paper_cluster):
        start = feasible_bhj_start(5.1, 1.15, paper_cluster)
        assert start is not None
        assert start.container_gb * 1.15 >= 5.1
        # And it is the smallest such discrete size.
        assert (start.container_gb - 1.0) * 1.15 < 5.1

    def test_impossible_table_returns_none(self, paper_cluster):
        assert feasible_bhj_start(100.0, 1.15, paper_cluster) is None

    def test_exact_wall_boundary(self, paper_cluster):
        start = feasible_bhj_start(11.5, 1.15, paper_cluster)
        assert start is not None
        assert start.container_gb == 10.0

    def test_negative_size_rejected(self, paper_cluster):
        with pytest.raises(ResourcePlanningError):
            feasible_bhj_start(-1.0, 1.15, paper_cluster)
