"""Edge-case tests for the RAQO planner facade and executor."""

import pytest

from repro.catalog import tpch
from repro.catalog.queries import Query
from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.core.cost_model import SimulatorCostModel
from repro.core.pareto import PlanObjective
from repro.core.raqo import RaqoPlanner
from repro.engine.executor import execute_plan
from repro.engine.profiles import HIVE_PROFILE
from repro.planner.plan import ScanNode


@pytest.fixture(scope="module")
def catalog():
    return tpch.tpch_catalog(100)


class TestSingleTableQueries:
    def test_single_table_plan_is_scan(self, catalog):
        planner = RaqoPlanner.default(catalog)
        result = planner.optimize(Query("scan", ("orders",)))
        assert isinstance(result.plan, ScanNode)
        assert result.cost.time_s == 0.0
        assert result.resource_iterations == 0

    def test_single_table_execution(self, catalog):
        planner = RaqoPlanner.default(catalog)
        result = planner.optimize(Query("scan", ("orders",)))
        run = execute_plan(
            result.plan,
            planner.estimator,
            HIVE_PROFILE,
            default_resources=ResourceConfiguration(num_containers=10, container_gb=4.0),
        )
        # Scan-only plans are free in the join-level model.
        assert run.time_s == 0.0
        assert run.feasible


class TestTinyClusters:
    def test_one_container_cluster(self, catalog):
        planner = RaqoPlanner(
            catalog,
            cluster=ClusterConditions(
                max_containers=1, max_container_gb=1.0
            ),
        )
        result = planner.optimize(tpch.QUERY_Q12)
        assert result.cost.is_finite
        for join in result.plan.joins_postorder():
            assert join.resources == ResourceConfiguration(num_containers=1, container_gb=1.0)

    def test_one_point_grid_brute_force(self, catalog):
        from repro.core.raqo import ResourcePlanningMethod

        planner = RaqoPlanner(
            catalog,
            cluster=ClusterConditions(
                max_containers=1, max_container_gb=1.0
            ),
            resource_method=ResourcePlanningMethod.BRUTE_FORCE,
            cache_mode=None,
        )
        result = planner.optimize(tpch.QUERY_Q12)
        # One candidate config per costing call; two implementations,
        # but BHJ is infeasible at 1 GB for 17 GB orders, so SMJ only.
        assert result.cost.is_finite


class TestSmallScaleFactors:
    def test_sf_0_01_still_plans(self):
        catalog = tpch.tpch_catalog(0.01)
        planner = RaqoPlanner(
            catalog, cost_model=SimulatorCostModel(HIVE_PROFILE)
        )
        result = planner.optimize(tpch.QUERY_ALL)
        assert result.cost.is_finite
        # Everything is tiny: broadcasts dominate.
        from repro.engine.joins import JoinAlgorithm

        algorithms = {
            j.algorithm for j in result.plan.joins_postorder()
        }
        assert JoinAlgorithm.BROADCAST_HASH in algorithms

    def test_costs_scale_with_sf(self):
        small = RaqoPlanner(
            tpch.tpch_catalog(1),
            cost_model=SimulatorCostModel(HIVE_PROFILE),
        ).optimize(tpch.QUERY_Q12)
        large = RaqoPlanner(
            tpch.tpch_catalog(100),
            cost_model=SimulatorCostModel(HIVE_PROFILE),
        ).optimize(tpch.QUERY_Q12)
        assert large.cost.time_s > small.cost.time_s


class TestMoneyObjective:
    def test_money_weight_reduces_dollars(self, catalog):
        time_first = RaqoPlanner(catalog).optimize(tpch.QUERY_Q3)
        money_first = RaqoPlanner(
            catalog, objective=PlanObjective.weighted(100.0)
        ).optimize(tpch.QUERY_Q3)
        assert money_first.cost.money <= time_first.cost.money * 1.001
        assert money_first.cost.time_s >= time_first.cost.time_s * 0.999
