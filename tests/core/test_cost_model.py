"""Tests for repro.core.cost_model."""

import math

import pytest

from repro.cluster.containers import ResourceConfiguration
from repro.core.cost_model import (
    CostModelSuite,
    EXTENDED_FEATURES,
    MIN_PREDICTED_TIME_S,
    OperatorCostModel,
    PAPER_FEATURES,
    SimulatorCostModel,
)
from repro.engine.joins import JoinAlgorithm, join_execution
from repro.engine.profiler import default_training_grid
from repro.engine.profiles import HIVE_PROFILE


def rc(nc, cs):
    return ResourceConfiguration(num_containers=nc, container_gb=cs)


@pytest.fixture(scope="module")
def training_samples():
    return default_training_grid(HIVE_PROFILE)


@pytest.fixture(scope="module")
def trained_suite(training_samples):
    return CostModelSuite.train(
        training_samples, HIVE_PROFILE.hash_memory_fraction
    )


class TestFeatureMaps:
    def test_paper_features_exact(self):
        features = PAPER_FEATURES(2.0, 77.0, rc(10, 4.0))
        assert list(features) == [
            2.0,
            4.0,
            4.0,
            16.0,
            10.0,
            100.0,
            40.0,
        ]

    def test_paper_features_ignore_large_side(self):
        a = PAPER_FEATURES(2.0, 77.0, rc(10, 4.0))
        b = PAPER_FEATURES(2.0, 10.0, rc(10, 4.0))
        assert list(a) == list(b)

    def test_extended_features_use_large_side(self):
        a = EXTENDED_FEATURES(2.0, 77.0, rc(10, 4.0))
        b = EXTENDED_FEATURES(2.0, 10.0, rc(10, 4.0))
        assert list(a) != list(b)

    def test_feature_name_lengths(self):
        assert len(PAPER_FEATURES) == 7
        assert len(EXTENDED_FEATURES) == len(
            EXTENDED_FEATURES.feature_names
        )


class TestOperatorCostModel:
    def test_coefficient_count_enforced(self):
        with pytest.raises(ValueError):
            OperatorCostModel(
                algorithm=JoinAlgorithm.SORT_MERGE,
                feature_map=PAPER_FEATURES,
                coefficients=(1.0, 2.0),
                intercept=0.0,
            )

    def test_fit_requires_enough_samples(self):
        with pytest.raises(ValueError):
            OperatorCostModel.fit(JoinAlgorithm.SORT_MERGE, [])

    def test_fit_quality_on_training_data(self, training_samples):
        model = OperatorCostModel.fit(
            JoinAlgorithm.SORT_MERGE, training_samples
        )
        assert model.r_squared(training_samples) > 0.8

    def test_bhj_fit_quality(self, training_samples):
        model = OperatorCostModel.fit(
            JoinAlgorithm.BROADCAST_HASH, training_samples
        )
        assert model.r_squared(training_samples) > 0.7

    def test_prediction_positive(self, trained_suite):
        model = trained_suite.models[JoinAlgorithm.SORT_MERGE]
        # Even absurd extrapolations never go non-positive.
        assert (
            model.predict(0.001, 0.001, rc(1000, 128.0))
            >= MIN_PREDICTED_TIME_S
        )

    def test_r_squared_requires_samples(self, trained_suite):
        model = trained_suite.models[JoinAlgorithm.SORT_MERGE]
        with pytest.raises(ValueError):
            model.r_squared([])


class TestCostModelSuite:
    def test_train_covers_both_algorithms(self, trained_suite):
        assert set(trained_suite.models) == set(JoinAlgorithm)

    def test_bhj_wall_enforced(self, trained_suite):
        time = trained_suite.predict_time(
            JoinAlgorithm.BROADCAST_HASH, 9.0, 77.0, rc(10, 3.0)
        )
        assert time == math.inf

    def test_predictions_track_simulator_direction(self, trained_suite):
        """The learned SMJ model must prefer more containers, like the
        simulator (the Sec VI-A sign observation)."""
        few = trained_suite.predict_time(
            JoinAlgorithm.SORT_MERGE, 3.0, 77.0, rc(5, 3.0)
        )
        many = trained_suite.predict_time(
            JoinAlgorithm.SORT_MERGE, 3.0, 77.0, rc(50, 3.0)
        )
        assert many < few

    def test_prediction_accuracy_interior_point(self, trained_suite):
        config = rc(25, 6.0)  # interior of the training grid
        predicted = trained_suite.predict_time(
            JoinAlgorithm.SORT_MERGE, 3.0, 77.0, config
        )
        actual = join_execution(
            JoinAlgorithm.SORT_MERGE, 3.0, 77.0, config, HIVE_PROFILE
        ).time_s
        assert predicted == pytest.approx(actual, rel=0.5)

    def test_missing_model_rejected(self, trained_suite):
        with pytest.raises(ValueError):
            CostModelSuite(
                {
                    JoinAlgorithm.SORT_MERGE: trained_suite.models[
                        JoinAlgorithm.SORT_MERGE
                    ]
                },
                1.0,
            )

    def test_bad_fraction_rejected(self, trained_suite):
        with pytest.raises(ValueError):
            CostModelSuite(dict(trained_suite.models), 0.0)

    def test_train_from_profile(self):
        suite = CostModelSuite.train_from_profile(HIVE_PROFILE)
        assert suite.hash_memory_fraction == (
            HIVE_PROFILE.hash_memory_fraction
        )

    def test_model_key_distinct_per_algorithm(self, trained_suite):
        assert trained_suite.model_key(
            JoinAlgorithm.SORT_MERGE
        ) != trained_suite.model_key(JoinAlgorithm.BROADCAST_HASH)


class TestSimulatorCostModel:
    def test_oracle_matches_simulator(self):
        oracle = SimulatorCostModel(HIVE_PROFILE)
        config = rc(10, 7.0)
        assert oracle.predict_time(
            JoinAlgorithm.SORT_MERGE, 5.1, 77.0, config
        ) == pytest.approx(
            join_execution(
                JoinAlgorithm.SORT_MERGE, 5.1, 77.0, config, HIVE_PROFILE
            ).time_s
        )

    def test_oracle_infeasible_bhj(self):
        oracle = SimulatorCostModel(HIVE_PROFILE)
        assert (
            oracle.predict_time(
                JoinAlgorithm.BROADCAST_HASH, 9.0, 77.0, rc(10, 3.0)
            )
            == math.inf
        )

    def test_oracle_model_key_includes_profile(self):
        oracle = SimulatorCostModel(HIVE_PROFILE)
        assert "hive" in oracle.model_key(JoinAlgorithm.SORT_MERGE)

    def test_bhj_feasible_helper(self):
        oracle = SimulatorCostModel(HIVE_PROFILE)
        assert oracle.bhj_feasible(3.0, rc(10, 3.0))
        assert not oracle.bhj_feasible(4.0, rc(10, 3.0))


class TestNumericalHardening:
    def test_nan_coefficients_surface_as_infeasible(self):
        """Corrupted models must never leak NaN into planner
        comparisons -- NaN breaks min() silently."""
        model = OperatorCostModel(
            algorithm=JoinAlgorithm.SORT_MERGE,
            feature_map=PAPER_FEATURES,
            coefficients=(float("nan"),) * 7,
            intercept=0.0,
        )
        prediction = model.predict(1.0, 77.0, rc(10, 4.0))
        assert prediction == math.inf

    def test_huge_inputs_do_not_go_negative(self, trained_suite):
        model = trained_suite.models[JoinAlgorithm.SORT_MERGE]
        prediction = model.predict(1e6, 1e9, rc(10_000, 1000.0))
        assert prediction >= MIN_PREDICTED_TIME_S
