"""Tests for repro.core.explain."""

import math

import pytest

from repro.catalog import tpch
from repro.core.explain import explain, explain_plan
from repro.core.raqo import RaqoPlanner


@pytest.fixture(scope="module")
def planner():
    return RaqoPlanner.default(tpch.tpch_catalog(100))


class TestExplainPlan:
    def test_one_explanation_per_join(self, planner):
        result = planner.optimize(tpch.QUERY_Q3)
        explanations = explain_plan(
            result, planner.cost_model, planner
        )
        assert len(explanations) == 2

    def test_predicted_times_sum_to_plan_cost(self, planner):
        result = planner.optimize(tpch.QUERY_Q3)
        explanations = explain_plan(
            result, planner.cost_model, planner
        )
        total = sum(e.predicted_time_s for e in explanations)
        assert total == pytest.approx(result.cost.time_s, rel=1e-6)

    def test_alternative_margin(self, planner):
        result = planner.optimize(tpch.QUERY_Q12)
        [op] = explain_plan(result, planner.cost_model, planner)
        # The chosen implementation must not be worse than the
        # alternative at the planned resources.
        assert op.alternative_margin >= 1.0 or math.isinf(
            op.alternative_margin
        )

    def test_minmax_bracket(self, planner):
        result = planner.optimize(tpch.QUERY_Q12)
        [op] = explain_plan(result, planner.cost_model, planner)
        # The planned configuration cannot beat the best of the whole
        # envelope by definition, nor be worse than the minimum config.
        assert op.predicted_time_s <= op.at_minimum_s
        assert op.at_maximum_s <= op.at_minimum_s


class TestExplainText:
    def test_contains_all_sections(self, planner):
        text = explain(planner, tpch.QUERY_Q3)
        assert "EXPLAIN Q3" in text
        assert "operator 0" in text and "operator 1" in text
        assert "resource configurations" in text
        assert "alternative implementation" in text
        assert "at cluster min/max" in text

    def test_mentions_tables(self, planner):
        text = explain(planner, tpch.QUERY_Q12)
        assert "orders" in text and "lineitem" in text
