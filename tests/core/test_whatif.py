"""Tests for repro.core.whatif."""

import pytest

from repro.catalog import tpch
from repro.cluster.cluster import ClusterConditions
from repro.core.raqo import RaqoPlanner
from repro.core.whatif import default_sweep, what_if
from repro.engine.joins import JoinAlgorithm


@pytest.fixture(scope="module")
def planner():
    return RaqoPlanner.default(tpch.tpch_catalog(100))


class TestDefaultSweep:
    def test_shrinking(self):
        sweep = default_sweep()
        containers = [c.max_containers for c in sweep]
        assert containers == sorted(containers, reverse=True)
        assert containers[0] == 100

    def test_never_degenerate(self):
        sweep = default_sweep(max_containers=10, max_container_gb=2.0)
        for cluster in sweep:
            assert cluster.max_containers >= 1
            assert cluster.max_container_gb >= 1.0


class TestWhatIf:
    def test_report_shape(self, planner):
        sweep = default_sweep()
        report = what_if(planner, tpch.QUERY_Q2, sweep)
        assert len(report.points) == len(sweep)
        assert report.query_name == "Q2"

    def test_times_grow_as_cluster_shrinks(self, planner):
        report = what_if(planner, tpch.QUERY_Q2, default_sweep())
        times = [p.predicted_time_s for p in report.points]
        assert times == sorted(times)

    def test_plan_changes_detected(self, planner):
        report = what_if(planner, tpch.QUERY_Q2, default_sweep())
        assert report.distinct_plans >= 1
        assert len(report.plan_changes) == report.distinct_plans - 1 or (
            len(report.plan_changes) >= report.distinct_plans - 1
        )

    def test_algorithm_usage_totals(self, planner):
        report = what_if(planner, tpch.QUERY_Q2, default_sweep())
        usage = report.algorithm_usage()
        total = sum(usage.values())
        assert total == len(report.points) * tpch.QUERY_Q2.num_joins

    def test_planner_cluster_restored(self, planner):
        before = planner.cluster
        what_if(planner, tpch.QUERY_Q3, default_sweep())
        assert planner.cluster is before

    def test_empty_sweep_rejected(self, planner):
        with pytest.raises(ValueError):
            what_if(planner, tpch.QUERY_Q3, ())

    def test_time_range(self, planner):
        report = what_if(planner, tpch.QUERY_Q3, default_sweep())
        best, worst = report.time_range
        assert best <= worst
        assert best == min(p.predicted_time_s for p in report.points)
