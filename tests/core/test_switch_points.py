"""Tests for repro.core.switch_points."""

import pytest

from repro.cluster.containers import ResourceConfiguration
from repro.core.switch_points import (
    SwitchMetric,
    TREE_FEATURE_NAMES,
    compare_joins,
    find_switch_point,
    labeled_samples,
    switch_point_surface,
)
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiles import HIVE_PROFILE, SPARK_PROFILE


def rc(nc, cs):
    return ResourceConfiguration(num_containers=nc, container_gb=cs)


class TestCompareJoins:
    def test_tiny_table_prefers_bhj(self, hive_profile):
        winner = compare_joins(0.1, 77.0, rc(10, 7.0), hive_profile)
        assert winner is JoinAlgorithm.BROADCAST_HASH

    def test_oom_forces_smj(self, hive_profile):
        winner = compare_joins(9.0, 77.0, rc(10, 3.0), hive_profile)
        assert winner is JoinAlgorithm.SORT_MERGE

    def test_money_metric_same_winner_at_fixed_config(
        self, hive_profile
    ):
        """With a fixed configuration dollars = time x constant, so the
        winner matches -- the paper's 'switching points remain the same'
        observation for Fig 6."""
        for ss in (0.5, 2.0, 4.0, 6.0):
            config = rc(10, 7.0)
            assert compare_joins(
                ss, 77.0, config, hive_profile, metric=SwitchMetric.TIME
            ) is compare_joins(
                ss, 77.0, config, hive_profile, metric=SwitchMetric.MONEY
            )


class TestFindSwitchPoint:
    def test_fig3a_switch_location(self, hive_profile):
        point = find_switch_point(
            hive_profile, 77.0, rc(10, 9.0), resolution_gb=0.1
        )
        # Paper Fig 4(a): ~6.4 GB with 9 GB containers.
        assert 5.0 <= point.switch_gb <= 7.0

    def test_wall_equals_fraction_times_container(self, hive_profile):
        point = find_switch_point(hive_profile, 77.0, rc(10, 3.0))
        assert point.wall_gb == pytest.approx(
            hive_profile.hash_memory_fraction * 3.0
        )

    def test_bhj_wins_up_to_wall_for_small_containers(
        self, hive_profile
    ):
        point = find_switch_point(
            hive_profile, 77.0, rc(10, 3.0), resolution_gb=0.1
        )
        assert point.switch_gb == pytest.approx(point.wall_gb)

    def test_switch_below_wall_for_big_containers(self, hive_profile):
        point = find_switch_point(
            hive_profile, 77.0, rc(10, 11.0), resolution_gb=0.1
        )
        assert point.switch_gb < point.wall_gb

    def test_resolution_validated(self, hive_profile):
        with pytest.raises(ValueError):
            find_switch_point(
                hive_profile, 77.0, rc(10, 3.0), resolution_gb=0.0
            )

    def test_bhj_region_is_below_switch(self, hive_profile):
        point = find_switch_point(
            hive_profile, 77.0, rc(10, 9.0), resolution_gb=0.1
        )
        below = compare_joins(
            point.switch_gb * 0.5, 77.0, rc(10, 9.0), hive_profile
        )
        assert below is JoinAlgorithm.BROADCAST_HASH


class TestSurface:
    def test_surface_shape(self, hive_profile):
        points = switch_point_surface(
            hive_profile,
            77.0,
            container_sizes_gb=(3.0, 9.0),
            container_counts=(5, 10),
            resolution_gb=0.2,
        )
        assert len(points) == 4

    def test_switch_rises_with_container_size(self, hive_profile):
        """Paper Fig 9: bigger containers extend the BHJ region."""
        points = switch_point_surface(
            hive_profile,
            77.0,
            container_sizes_gb=(3.0, 7.0, 11.0),
            container_counts=(10,),
            resolution_gb=0.2,
        )
        switches = [p.switch_gb for p in points]
        assert switches == sorted(switches)

    def test_spark_switch_points_in_mb_range(self, spark_profile):
        """Paper Fig 9(b): Spark switches at hundreds of MB."""
        points = switch_point_surface(
            spark_profile,
            10.0,
            container_sizes_gb=(5.0, 9.0),
            container_counts=(10,),
            resolution_gb=0.02,
        )
        for point in points:
            assert 0.1 <= point.switch_gb <= 1.5

    def test_container_size_helps_bhj_only_up_to_a_point(
        self, spark_profile
    ):
        """Paper Sec V-A observation (ii): switch-point growth
        saturates with container size."""
        sizes = (3.0, 5.0, 7.0, 9.0, 11.0)
        points = switch_point_surface(
            spark_profile,
            10.0,
            container_sizes_gb=sizes,
            container_counts=(10,),
            resolution_gb=0.02,
        )
        switches = [p.switch_gb for p in points]
        first_gain = switches[1] - switches[0]
        last_gain = switches[-1] - switches[-2]
        assert last_gain <= first_gain + 1e-9


class TestLabeledSamples:
    def test_grid_size_and_labels(self, hive_profile):
        samples = labeled_samples(
            hive_profile,
            77.0,
            data_sizes_gb=(1.0, 5.0),
            container_sizes_gb=(3.0, 9.0),
            container_counts=(10,),
        )
        assert len(samples) == 4
        assert {s.label for s in samples} <= {"BHJ", "SMJ"}

    def test_features_in_tree_order(self, hive_profile):
        samples = labeled_samples(
            hive_profile,
            77.0,
            data_sizes_gb=(1.0,),
            container_sizes_gb=(3.0,),
            container_counts=(10,),
            reducer_settings=(200,),
        )
        [sample] = samples
        assert sample.features == (1.0, 3.0, 10.0, 200.0)
        assert len(TREE_FEATURE_NAMES) == len(sample.features)

    def test_auto_reducers_recorded(self, hive_profile):
        samples = labeled_samples(
            hive_profile,
            77.0,
            data_sizes_gb=(1.0,),
            container_sizes_gb=(3.0,),
            container_counts=(10,),
            reducer_settings=(None,),
        )
        [sample] = samples
        assert sample.total_containers == 312  # ceil(78/0.25)

    def test_labels_match_compare_joins(self, hive_profile):
        samples = labeled_samples(
            hive_profile,
            77.0,
            data_sizes_gb=(0.5, 6.0),
            container_sizes_gb=(9.0,),
            container_counts=(10,),
        )
        for sample in samples:
            winner = compare_joins(
                sample.data_gb,
                77.0,
                rc(sample.concurrent_containers, sample.container_gb),
                hive_profile,
            )
            expected = (
                "BHJ"
                if winner is JoinAlgorithm.BROADCAST_HASH
                else "SMJ"
            )
            assert sample.label == expected
