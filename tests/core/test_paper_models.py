"""Tests for repro.core.paper_models."""

import pytest

from repro.cluster.containers import ResourceConfiguration
from repro.core.cost_model import OperatorCostModel, PAPER_FEATURES
from repro.core.paper_models import (
    PAPER_BHJ_COEFFICIENTS,
    PAPER_BHJ_MODEL,
    PAPER_SMJ_COEFFICIENTS,
    PAPER_SMJ_MODEL,
    coefficient_signs_consistent,
)
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiler import default_training_grid
from repro.engine.profiles import HIVE_PROFILE


class TestPublishedCoefficients:
    def test_seven_coefficients_each(self):
        assert len(PAPER_SMJ_COEFFICIENTS) == 7
        assert len(PAPER_BHJ_COEFFICIENTS) == 7

    def test_published_values_verbatim(self):
        assert PAPER_SMJ_COEFFICIENTS[0] == pytest.approx(16.2643613)
        assert PAPER_BHJ_COEFFICIENTS[0] == pytest.approx(10073.9509)

    def test_paper_sign_observation(self):
        """Sec VI-A: SMJ improves with parallelism, BHJ with memory."""
        assert coefficient_signs_consistent(
            PAPER_SMJ_COEFFICIENTS, PAPER_BHJ_COEFFICIENTS
        )

    def test_sign_check_rejects_swapped_models(self):
        assert not coefficient_signs_consistent(
            PAPER_BHJ_COEFFICIENTS, PAPER_SMJ_COEFFICIENTS
        )

    def test_models_are_usable(self):
        config = ResourceConfiguration(num_containers=10, container_gb=4.0)
        smj = PAPER_SMJ_MODEL.predict(3.0, 77.0, config)
        bhj = PAPER_BHJ_MODEL.predict(3.0, 77.0, config)
        assert smj > 0
        assert bhj > 0

    def test_models_use_paper_features(self):
        assert PAPER_SMJ_MODEL.feature_map is PAPER_FEATURES
        assert PAPER_BHJ_MODEL.feature_map is PAPER_FEATURES


class TestRetrainedSigns:
    def test_our_retrained_models_reproduce_sign_observation(self):
        """Training the paper's feature set on our simulator must
        reproduce Sec VI-A's *behavioural* observation: the learned SMJ
        model improves with parallelism while the learned BHJ model
        improves with container size. (The raw quadratic coefficient
        signs are fit-specific; the behaviour is the invariant.)"""
        samples = default_training_grid(HIVE_PROFILE)
        smj = OperatorCostModel.fit(
            JoinAlgorithm.SORT_MERGE, samples, PAPER_FEATURES
        )
        bhj = OperatorCostModel.fit(
            JoinAlgorithm.BROADCAST_HASH, samples, PAPER_FEATURES
        )
        # SMJ: more containers -> cheaper (at fixed 3 GB containers).
        assert smj.predict(
            3.0, 77.0, ResourceConfiguration(num_containers=40, container_gb=3.0)
        ) < smj.predict(3.0, 77.0, ResourceConfiguration(num_containers=5, container_gb=3.0))
        # BHJ: bigger containers -> cheaper (at fixed 10 containers).
        assert bhj.predict(
            5.0, 77.0, ResourceConfiguration(num_containers=10, container_gb=10.0)
        ) < bhj.predict(5.0, 77.0, ResourceConfiguration(num_containers=10, container_gb=5.0))
