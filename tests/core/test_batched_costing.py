"""The stacked (batch x grid) costing kernel vs per-candidate rows.

``predict_grid_stacked`` / ``predict_time_grid_batch`` power the
lattice-level batched planner: one broadcasted numpy evaluation over
(candidates x resource configurations). Because the stacked kernel
accumulates features in the same order as the per-candidate
``predict_time_grid`` loop, every row must be *bit-identical* (every
float equal, including non-finite structure) to its scalar counterpart.
"""

import numpy as np
import pytest

from repro.catalog import tpch
from repro.cluster.cluster import ClusterConditions
from repro.core.raqo import (
    RaqoPlanner,
    ResourcePlanningMethod,
    default_cost_model,
)
from repro.engine.joins import JoinAlgorithm
from repro.planner.plan import ALGORITHM_CODES, CandidateBatch


@pytest.fixture(scope="module")
def model():
    return default_cost_model()


@pytest.fixture(scope="module")
def grid():
    return ClusterConditions(
        max_containers=20, max_container_gb=8.0
    ).config_grid()


class TestStackedKernel:
    @pytest.mark.parametrize("algorithm", list(JoinAlgorithm))
    def test_rows_bitwise_equal_scalar_grid(self, model, grid, algorithm):
        rng = np.random.default_rng(17)
        small = rng.uniform(0.01, 40.0, size=32)
        large = small + rng.uniform(0.0, 60.0, size=32)
        batch = model.predict_time_grid_batch(
            algorithm, small, large, grid
        )
        assert batch.shape == (32, grid.num_configs)
        for row, (ss, ls) in enumerate(zip(small, large)):
            scalar = model.predict_time_grid(
                algorithm, float(ss), float(ls), grid
            )
            np.testing.assert_array_equal(batch[row], scalar)

    @pytest.mark.parametrize("algorithm", list(JoinAlgorithm))
    def test_empty_batch(self, model, grid, algorithm):
        batch = model.predict_time_grid_batch(
            algorithm, np.empty(0), np.empty(0), grid
        )
        assert batch.shape == (0, grid.num_configs)

    def test_bhj_infeasibility_mask_matches_scalar(self, model, grid):
        """Rows where the build side exceeds hash memory go to inf in
        exactly the configurations the scalar path marks."""
        small = np.array([0.01, 5.0, 200.0])
        large = np.array([10.0, 50.0, 400.0])
        batch = model.predict_time_grid_batch(
            JoinAlgorithm.BROADCAST_HASH, small, large, grid
        )
        for row in range(3):
            scalar = model.predict_time_grid(
                JoinAlgorithm.BROADCAST_HASH,
                float(small[row]),
                float(large[row]),
                grid,
            )
            np.testing.assert_array_equal(
                np.isinf(batch[row]), np.isinf(scalar)
            )


class TestCandidateBatch:
    def test_build_derives_sizes_and_codes(self):
        catalog = tpch.tpch_catalog(100)
        planner = RaqoPlanner(
            catalog, resource_method=ResourcePlanningMethod.BRUTE_FORCE
        )
        context = planner.make_context()
        left = frozenset({"orders"})
        right = frozenset({"lineitem"})
        candidates = [
            (left, right, algorithm) for algorithm in JoinAlgorithm
        ]
        batch = CandidateBatch.build(candidates, context.join_io_gb)
        assert len(batch) == len(list(JoinAlgorithm))
        small, large = context.join_io_gb(left, right)
        np.testing.assert_array_equal(
            batch.small_gb, np.full(len(batch), small)
        )
        np.testing.assert_array_equal(
            batch.large_gb, np.full(len(batch), large)
        )
        assert list(batch.algorithm_codes) == [
            ALGORITHM_CODES[a] for a in JoinAlgorithm
        ]
        assert batch.algorithms == tuple(JoinAlgorithm)

    def test_algorithm_codes_are_read_only(self):
        with pytest.raises(TypeError):
            ALGORITHM_CODES[JoinAlgorithm.SORT_MERGE] = 99
