"""Tests for the rule-based RAQO optimizer facade."""

import pytest

from repro.catalog import tpch
from repro.catalog.queries import make_query
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.containers import ResourceConfiguration
from repro.core.raqo import DEFAULT_QO_RESOURCES
from repro.core.rules import (
    DefaultThresholdRule,
    RaqoDecisionTreeRule,
    RuleBasedOptimizer,
)
from repro.engine.executor import execute_plan
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiles import HIVE_PROFILE


@pytest.fixture(scope="module")
def estimator():
    return StatisticsEstimator(tpch.tpch_catalog(100))


@pytest.fixture(scope="module")
def raqo_rule():
    return RaqoDecisionTreeRule.train(
        HIVE_PROFILE,
        large_gb=77.0,
        data_sizes_gb=[0.25, 0.5, 1, 2, 3, 4, 5, 6, 7, 8],
        container_sizes_gb=[2, 3, 5, 7, 9, 11],
        container_counts=[5, 10, 20, 40],
    )


class TestRuleBasedOptimizer:
    def test_produces_complete_plan(self, estimator, raqo_rule):
        optimizer = RuleBasedOptimizer(estimator, raqo_rule)
        plan = optimizer.optimize(
            tpch.QUERY_Q3, ResourceConfiguration(num_containers=10, container_gb=9.0)
        )
        assert plan.tables == frozenset(tpch.QUERY_Q3.tables)
        assert plan.num_joins == 2

    def test_implementations_follow_resources(
        self, estimator, raqo_rule
    ):
        """The same query gets different implementations under
        different resources -- the Sec V deployment story."""
        optimizer = RuleBasedOptimizer(estimator, raqo_rule)
        query = make_query(
            "q12s",
            ("orders", "lineitem"),
            filters={"orders": 0.3},  # a ~5.1 GB broadcast side
        )
        small = optimizer.optimize(
            query, ResourceConfiguration(num_containers=10, container_gb=5.0)
        )
        large = optimizer.optimize(
            query, ResourceConfiguration(num_containers=10, container_gb=10.0)
        )
        small_algorithms = [
            j.algorithm for j in small.joins_postorder()
        ]
        large_algorithms = [
            j.algorithm for j in large.joins_postorder()
        ]
        assert small_algorithms != large_algorithms
        assert JoinAlgorithm.BROADCAST_HASH in large_algorithms

    def test_beats_default_rule_end_to_end(self, estimator, raqo_rule):
        """Executed on the simulator, the learned rule's plan is at
        least as fast as the stock rule's at BHJ-friendly resources."""
        config = ResourceConfiguration(num_containers=10, container_gb=10.0)
        query = make_query(
            "q12s", ("orders", "lineitem"), filters={"orders": 0.3}
        )
        filtered = estimator.with_filters(query.filter_factors)
        runs = {}
        for name, rule in (
            ("default", DefaultThresholdRule()),
            ("raqo", raqo_rule),
        ):
            plan = RuleBasedOptimizer(estimator, rule).optimize(
                query, config
            )
            runs[name] = execute_plan(
                plan, filtered, HIVE_PROFILE, default_resources=config
            )
        assert runs["raqo"].time_s <= runs["default"].time_s * 1.001

    def test_respects_query_filters(self, estimator, raqo_rule):
        optimizer = RuleBasedOptimizer(estimator, raqo_rule)
        config = ResourceConfiguration(num_containers=10, container_gb=10.0)
        full = optimizer.optimize(tpch.QUERY_Q12, config)
        sampled = optimizer.optimize(
            make_query(
                "q12s", ("orders", "lineitem"), filters={"orders": 0.02}
            ),
            config,
        )
        full_algorithms = {j.algorithm for j in full.joins_postorder()}
        sampled_algorithms = {
            j.algorithm for j in sampled.joins_postorder()
        }
        # ~350 MB of orders broadcasts; 17 GB of orders cannot.
        assert sampled_algorithms == {JoinAlgorithm.BROADCAST_HASH}
        assert full_algorithms == {JoinAlgorithm.SORT_MERGE}
