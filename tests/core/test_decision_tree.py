"""Tests for repro.core.decision_tree (from-scratch CART)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decision_tree import (
    DecisionTreeClassifier,
    DecisionTreeError,
    gini_impurity,
)


class TestGini:
    def test_pure_node(self):
        assert gini_impurity(np.array([10, 0])) == 0.0

    def test_even_split(self):
        assert gini_impurity(np.array([5, 5])) == pytest.approx(0.5)

    def test_three_classes(self):
        assert gini_impurity(np.array([1, 1, 1])) == pytest.approx(
            1 - 3 * (1 / 3) ** 2
        )

    def test_empty(self):
        assert gini_impurity(np.array([0, 0])) == 0.0


class TestFitValidation:
    def test_empty_features_rejected(self):
        with pytest.raises(DecisionTreeError):
            DecisionTreeClassifier().fit([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(DecisionTreeError):
            DecisionTreeClassifier().fit([[1.0], [2.0]], ["a"])

    def test_bad_hyperparameters_rejected(self):
        with pytest.raises(DecisionTreeError):
            DecisionTreeClassifier(max_depth=-1)
        with pytest.raises(DecisionTreeError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(DecisionTreeError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_unfitted_predict_rejected(self):
        with pytest.raises(DecisionTreeError):
            DecisionTreeClassifier().predict_one([1.0])

    def test_wrong_feature_count_rejected(self):
        tree = DecisionTreeClassifier().fit([[1.0], [2.0]], ["a", "b"])
        with pytest.raises(DecisionTreeError):
            tree.predict_one([1.0, 2.0])


class TestLearning:
    def test_threshold_split(self):
        """Recovers a 1-D threshold exactly (the Fig 10 shape)."""
        X = [[1.0], [2.0], [3.0], [10.0], [11.0], [12.0]]
        y = ["BHJ", "BHJ", "BHJ", "SMJ", "SMJ", "SMJ"]
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth == 1
        assert tree.num_leaves == 2
        assert tree.root.threshold == pytest.approx(6.5)
        assert tree.predict_one([2.5]) == "BHJ"
        assert tree.predict_one([8.0]) == "SMJ"

    def test_pure_labels_single_leaf(self):
        tree = DecisionTreeClassifier().fit([[1.0], [2.0]], ["a", "a"])
        assert tree.depth == 0
        assert tree.predict_one([99.0]) == "a"

    def test_xor_needs_depth_two(self):
        X = [[0, 0], [0, 1], [1, 0], [1, 1]]
        y = ["a", "b", "b", "a"]
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.accuracy(X, y) == 1.0
        assert tree.depth == 2

    def test_max_depth_limits_tree(self):
        X = [[float(i)] for i in range(16)]
        y = ["a" if i % 2 else "b" for i in range(16)]
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth <= 2

    def test_min_samples_leaf(self):
        X = [[1.0], [2.0], [3.0], [4.0]]
        y = ["a", "a", "a", "b"]
        tree = DecisionTreeClassifier(min_samples_leaf=2).fit(X, y)
        for leaf_count in _leaf_sample_counts(tree.root):
            assert leaf_count >= 2

    def test_multiclass(self):
        X = [[1.0], [2.0], [10.0], [11.0], [20.0], [21.0]]
        y = ["a", "a", "b", "b", "c", "c"]
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.accuracy(X, y) == 1.0
        assert tree.predict_one([15.0]) in ("b", "c")

    def test_accuracy_method(self):
        X = [[1.0], [10.0]]
        y = ["a", "b"]
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.accuracy(X, y) == 1.0
        assert tree.accuracy(X, ["b", "a"]) == 0.0

    def test_predict_batch(self):
        tree = DecisionTreeClassifier().fit(
            [[1.0], [10.0]], ["a", "b"]
        )
        assert tree.predict([[0.0], [20.0]]) == ["a", "b"]

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 10, size=(50, 3)).tolist()
        y = ["a" if row[0] > 5 else "b" for row in X]
        t1 = DecisionTreeClassifier().fit(X, y)
        t2 = DecisionTreeClassifier().fit(X, y)
        assert t1.export_text() == t2.export_text()


class TestExportText:
    def test_renders_paper_style_fields(self):
        X = [[1.0], [2.0], [10.0], [11.0]]
        y = ["BHJ", "BHJ", "SMJ", "SMJ"]
        tree = DecisionTreeClassifier().fit(X, y)
        text = tree.export_text(
            feature_names=["Data Size (GB)"],
            class_names=["BHJ", "SMJ"],
        )
        assert "Data Size (GB) <=" in text
        assert "gini=" in text
        assert "samples=" in text
        assert "value=" in text
        assert "class=BHJ" in text and "class=SMJ" in text

    def test_default_names(self):
        tree = DecisionTreeClassifier().fit(
            [[1.0], [10.0]], ["a", "b"]
        )
        assert "feature[0]" in tree.export_text()


class TestProperties:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_perfect_fit_on_separable_data(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 100, size=(40, 2))
        threshold = float(rng.uniform(20, 80))
        y = ["pos" if row[0] <= threshold else "neg" for row in X]
        tree = DecisionTreeClassifier().fit(X.tolist(), y)
        assert tree.accuracy(X.tolist(), y) == 1.0

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_predictions_are_known_classes(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 10, size=(30, 2))
        y = [str(int(label)) for label in rng.integers(0, 3, size=30)]
        tree = DecisionTreeClassifier(max_depth=4).fit(X.tolist(), y)
        queries = rng.uniform(-5, 15, size=(20, 2))
        for row in queries:
            assert tree.predict_one(row.tolist()) in set(y)


def _leaf_sample_counts(node):
    if node.is_leaf:
        yield node.samples
    else:
        yield from _leaf_sample_counts(node.left)
        yield from _leaf_sample_counts(node.right)
