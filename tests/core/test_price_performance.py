"""Tests for repro.core.price_performance."""

import pytest

from repro.catalog import tpch
from repro.core.price_performance import (
    OperatingPoint,
    PricePerformanceCurve,
    _pareto_subset,
    price_performance_curve,
)
from repro.core.raqo import RaqoPlanner
from repro.planner.plan import ScanNode


def point(time_s, dollars):
    return OperatingPoint(
        time_s=time_s, dollars=dollars, plan=ScanNode("t")
    )


class TestParetoSubset:
    def test_removes_dominated(self):
        pareto = _pareto_subset(
            [point(10, 1.0), point(5, 2.0), point(7, 3.0)]
        )
        assert [(p.time_s, p.dollars) for p in pareto] == [
            (5, 2.0),
            (10, 1.0),
        ]

    def test_duplicates_collapse(self):
        pareto = _pareto_subset([point(5, 2.0), point(5, 2.0)])
        assert len(pareto) == 1

    def test_sorted_fastest_first(self):
        pareto = _pareto_subset(
            [point(10, 1.0), point(1, 10.0), point(5, 5.0)]
        )
        times = [p.time_s for p in pareto]
        assert times == sorted(times)

    def test_empty(self):
        assert _pareto_subset([]) == []


class TestCurveQueries:
    def _curve(self):
        return PricePerformanceCurve(
            query_name="q",
            points=(point(5, 10.0), point(8, 4.0), point(20, 1.0)),
        )

    def test_fastest_and_cheapest(self):
        curve = self._curve()
        assert curve.fastest.time_s == 5
        assert curve.cheapest.dollars == 1.0

    def test_cheapest_within_sla(self):
        curve = self._curve()
        assert curve.cheapest_within(10.0).dollars == 4.0
        assert curve.cheapest_within(3.0) is None

    def test_fastest_within_budget(self):
        curve = self._curve()
        assert curve.fastest_within(5.0).time_s == 8
        assert curve.fastest_within(0.5) is None

    def test_marginal_prices(self):
        steps = self._curve().marginal_prices()
        assert steps == [(12.0, 3.0), (3.0, 6.0)]

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            PricePerformanceCurve(query_name="q", points=())


class TestEndToEnd:
    def test_curve_for_tpch_query(self):
        planner = RaqoPlanner.default(tpch.tpch_catalog(100))
        curve = price_performance_curve(
            planner,
            tpch.QUERY_Q3,
            money_weights=(0.0, 10.0),
            iterations=3,
        )
        assert curve.query_name == "Q3"
        assert len(curve.points) >= 1
        assert curve.fastest.time_s <= curve.cheapest.time_s
        assert curve.cheapest.dollars <= curve.fastest.dollars
