"""Tests for query scan filters (the paper's sampling filters)."""

import pytest

from repro.catalog import tpch
from repro.catalog.queries import Query, QueryError, make_query
from repro.catalog.statistics import StatisticsEstimator
from repro.core.raqo import RaqoPlanner


class TestQueryFilters:
    def test_filters_normalised_and_sorted(self):
        query = Query(
            "q",
            ("orders", "lineitem"),
            filters=(("orders", 0.5), ("lineitem", 0.2)),
        )
        assert query.filters == (("lineitem", 0.2), ("orders", 0.5))
        assert query.filter_factors == {
            "orders": 0.5,
            "lineitem": 0.2,
        }

    def test_filter_on_unknown_table_rejected(self):
        with pytest.raises(QueryError):
            Query("q", ("orders",), filters=(("ghost", 0.5),))

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_bad_factor_rejected(self, factor):
        with pytest.raises(QueryError):
            Query("q", ("orders",), filters=(("orders", factor),))

    def test_factor_one_allowed(self):
        Query("q", ("orders",), filters=(("orders", 1.0),))

    def test_with_filter(self):
        query = Query("q", ("orders", "lineitem"))
        filtered = query.with_filter("orders", 0.3)
        assert filtered.filter_factors == {"orders": 0.3}
        assert query.filters == ()  # original untouched

    def test_make_query_with_filters(self):
        query = make_query(
            "q", ["orders", "lineitem"], filters={"orders": 0.3}
        )
        assert query.filter_factors == {"orders": 0.3}


class TestFilteredEstimator:
    def test_base_stats_scaled(self, tpch_catalog_sf100):
        plain = StatisticsEstimator(tpch_catalog_sf100)
        filtered = plain.with_filters({"orders": 0.25})
        assert filtered.base_stats("orders").row_count == (
            pytest.approx(plain.base_stats("orders").row_count * 0.25)
        )
        # Unfiltered tables unchanged.
        assert filtered.base_stats("lineitem").row_count == (
            plain.base_stats("lineitem").row_count
        )

    def test_join_output_scales_with_fk_filter(self, tpch_catalog_sf100):
        """Sampling orders removes matching lineitems proportionally."""
        plain = StatisticsEstimator(tpch_catalog_sf100)
        filtered = plain.with_filters({"orders": 0.5})
        full = plain.stats_for(["orders", "lineitem"]).row_count
        half = filtered.stats_for(["orders", "lineitem"]).row_count
        assert half == pytest.approx(full * 0.5)

    def test_with_filters_empty_is_identity(self, tpch_catalog_sf100):
        estimator = StatisticsEstimator(tpch_catalog_sf100)
        assert estimator.with_filters({}) is estimator

    def test_invalid_filters_rejected(self, tpch_catalog_sf100):
        with pytest.raises(Exception):
            StatisticsEstimator(
                tpch_catalog_sf100, filter_factors={"ghost": 0.5}
            )
        with pytest.raises(ValueError):
            StatisticsEstimator(
                tpch_catalog_sf100, filter_factors={"orders": 2.0}
            )


class TestFilteredPlanning:
    def test_sampling_changes_join_choice(self):
        """Shrinking the broadcast side far enough flips SMJ -> BHJ,
        the mechanism behind the paper's Fig 4 sweeps."""
        planner = RaqoPlanner.default(tpch.tpch_catalog(100))
        full = planner.optimize(tpch.QUERY_Q12)
        tiny = planner.optimize(
            make_query(
                "Q12tiny",
                ("orders", "lineitem"),
                filters={"orders": 0.001},  # ~17 MB of orders
            )
        )
        full_algorithms = {
            j.algorithm for j in full.plan.joins_postorder()
        }
        tiny_algorithms = {
            j.algorithm for j in tiny.plan.joins_postorder()
        }
        assert tiny.cost.time_s < full.cost.time_s
        from repro.engine.joins import JoinAlgorithm

        assert JoinAlgorithm.BROADCAST_HASH in tiny_algorithms
        assert tiny_algorithms != full_algorithms

    def test_filters_do_not_leak_between_queries(self):
        planner = RaqoPlanner.default(tpch.tpch_catalog(100))
        sampled = planner.optimize(
            make_query(
                "Q12s",
                ("orders", "lineitem"),
                filters={"orders": 0.1},
            )
        )
        full = planner.optimize(tpch.QUERY_Q12)
        assert full.cost.time_s > sampled.cost.time_s
