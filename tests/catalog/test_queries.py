"""Tests for repro.catalog.queries."""

import pytest

from repro.catalog.queries import Query, QueryError, make_query


class TestQuery:
    def test_num_joins(self):
        assert Query("q", ("a", "b", "c")).num_joins == 2
        assert Query("q", ("a",)).num_joins == 0

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Query("q", ())

    def test_duplicates_rejected(self):
        with pytest.raises(QueryError):
            Query("q", ("a", "b", "a"))

    def test_make_query_from_iterable(self):
        query = make_query("q", ["x", "y"])
        assert query.tables == ("x", "y")

    def test_hashable(self):
        assert hash(Query("q", ("a",))) == hash(Query("q", ("a",)))


class TestValidation:
    def test_unknown_table_rejected(self, tpch_catalog_sf1):
        query = Query("q", ("orders", "ghost"))
        with pytest.raises(QueryError):
            query.validate(tpch_catalog_sf1)

    def test_disconnected_query_rejected(self, tpch_catalog_sf1):
        # customer and part have no join path inside {customer, part}.
        query = Query("q", ("customer", "part"))
        with pytest.raises(QueryError):
            query.validate(tpch_catalog_sf1)

    def test_single_table_always_valid(self, tpch_catalog_sf1):
        Query("q", ("orders",)).validate(tpch_catalog_sf1)

    def test_connected_query_valid(self, tpch_catalog_sf1):
        Query("q", ("customer", "orders", "lineitem")).validate(
            tpch_catalog_sf1
        )
