"""Tests for repro.catalog.join_graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.join_graph import JoinEdge, JoinGraph, JoinGraphError


def chain_graph(n=4):
    """t0 - t1 - t2 - ... chain."""
    return JoinGraph(
        [
            JoinEdge(f"t{i}", f"t{i+1}", selectivity=0.5)
            for i in range(n - 1)
        ]
    )


class TestJoinEdge:
    def test_key_is_unordered(self):
        edge = JoinEdge("a", "b", 0.1)
        assert edge.key == frozenset(("a", "b"))

    def test_touches(self):
        edge = JoinEdge("a", "b", 0.1)
        assert edge.touches("a") and edge.touches("b")
        assert not edge.touches("c")

    def test_self_join_rejected(self):
        with pytest.raises(JoinGraphError):
            JoinEdge("a", "a", 0.1)

    @pytest.mark.parametrize("sel", [0.0, -0.5, 1.5])
    def test_bad_selectivity_rejected(self, sel):
        with pytest.raises(JoinGraphError):
            JoinEdge("a", "b", sel)

    def test_selectivity_one_allowed(self):
        assert JoinEdge("a", "b", 1.0).selectivity == 1.0


class TestJoinGraph:
    def test_edge_between(self):
        graph = chain_graph()
        assert graph.edge_between("t0", "t1") is not None
        assert graph.edge_between("t1", "t0") is not None
        assert graph.edge_between("t0", "t2") is None

    def test_duplicate_edge_rejected(self):
        graph = chain_graph()
        with pytest.raises(JoinGraphError):
            graph.add_edge(JoinEdge("t1", "t0", 0.2))

    def test_edges_within(self):
        graph = chain_graph()
        edges = graph.edges_within(["t0", "t1", "t2"])
        assert len(edges) == 2

    def test_edges_between(self):
        graph = chain_graph()
        edges = graph.edges_between(["t0", "t1"], ["t2", "t3"])
        assert len(edges) == 1
        assert edges[0].key == frozenset(("t1", "t2"))

    def test_edges_between_overlap_rejected(self):
        graph = chain_graph()
        with pytest.raises(JoinGraphError):
            graph.edges_between(["t0", "t1"], ["t1", "t2"])

    def test_neighbors(self):
        graph = chain_graph()
        assert graph.neighbors("t1") == {"t0", "t2"}
        assert graph.neighbors("unknown") == set()

    def test_tables(self):
        assert chain_graph(3).tables() == {"t0", "t1", "t2"}

    def test_is_connected_singleton(self):
        assert chain_graph().is_connected(["t0"])

    def test_is_connected_chain(self):
        graph = chain_graph()
        assert graph.is_connected(["t0", "t1", "t2"])
        assert not graph.is_connected(["t0", "t2"])

    def test_is_connected_unknown_table(self):
        assert not chain_graph().is_connected(["t0", "ghost"])

    def test_is_connected_empty_rejected(self):
        with pytest.raises(JoinGraphError):
            chain_graph().is_connected([])

    def test_selectivity_between(self):
        graph = chain_graph()
        assert graph.selectivity_between(["t0"], ["t1"]) == 0.5
        # Cross join: no edge -> selectivity 1.
        assert graph.selectivity_between(["t0"], ["t2"]) == 1.0

    def test_len_and_iter(self):
        graph = chain_graph(4)
        assert len(graph) == 3
        assert len(list(graph)) == 3


class TestConnectedSubset:
    def test_full_chain(self):
        graph = chain_graph(5)
        rng = np.random.default_rng(0)
        subset = graph.connected_subset("t0", 5, rng)
        assert sorted(subset) == ["t0", "t1", "t2", "t3", "t4"]

    def test_subset_always_connected(self):
        graph = chain_graph(6)
        rng = np.random.default_rng(1)
        for size in range(1, 7):
            subset = graph.connected_subset("t2", size, rng)
            assert len(subset) == size
            assert graph.is_connected(subset)

    def test_unknown_seed_rejected(self):
        with pytest.raises(JoinGraphError):
            chain_graph().connected_subset(
                "ghost", 2, np.random.default_rng(0)
            )

    def test_zero_size_rejected(self):
        with pytest.raises(JoinGraphError):
            chain_graph().connected_subset(
                "t0", 0, np.random.default_rng(0)
            )

    def test_oversized_request_fails(self):
        with pytest.raises(JoinGraphError):
            chain_graph(3).connected_subset(
                "t0", 10, np.random.default_rng(0)
            )

    @given(st.integers(min_value=2, max_value=10), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_property_connected_for_any_seed(self, n, seed):
        graph = chain_graph(n)
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, n + 1))
        subset = graph.connected_subset("t0", size, rng)
        assert graph.is_connected(subset)
        assert len(set(subset)) == size
