"""Tests for repro.catalog.schema."""

import pytest

from repro.catalog.join_graph import JoinEdge, JoinGraph
from repro.catalog.schema import (
    Catalog,
    CatalogError,
    Column,
    GB,
    Schema,
    Table,
)


class TestColumn:
    def test_basic_column(self):
        col = Column("o_orderkey", "int", 4)
        assert col.name == "o_orderkey"
        assert col.width_bytes == 4

    def test_default_width(self):
        assert Column("x").width_bytes == 8

    def test_empty_name_rejected(self):
        with pytest.raises(CatalogError):
            Column("")

    def test_non_positive_width_rejected(self):
        with pytest.raises(CatalogError):
            Column("x", width_bytes=0)
        with pytest.raises(CatalogError):
            Column("x", width_bytes=-3)


class TestTable:
    def test_row_width_from_columns(self):
        table = Table(
            "t",
            row_count=10,
            columns=(Column("a", width_bytes=4), Column("b", width_bytes=6)),
        )
        assert table.row_width_bytes == 10

    def test_explicit_row_width_wins(self):
        table = Table(
            "t",
            row_count=10,
            columns=(Column("a", width_bytes=4),),
            row_width_bytes=100,
        )
        assert table.row_width_bytes == 100

    def test_size_bytes(self):
        table = Table("t", row_count=1000, row_width_bytes=100)
        assert table.size_bytes == 100_000

    def test_size_gb(self):
        table = Table("t", row_count=2**20, row_width_bytes=1024)
        assert table.size_gb == pytest.approx(1.0)

    def test_requires_columns_or_width(self):
        with pytest.raises(CatalogError):
            Table("t", row_count=10)

    def test_negative_rows_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", row_count=-1, row_width_bytes=10)

    def test_zero_rows_allowed(self):
        assert Table("t", row_count=0, row_width_bytes=10).size_bytes == 0

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table(
                "t",
                row_count=1,
                columns=(Column("a"), Column("a")),
            )

    def test_column_lookup(self):
        table = Table("t", row_count=1, columns=(Column("a"),))
        assert table.column("a").name == "a"
        with pytest.raises(CatalogError):
            table.column("missing")

    def test_empty_name_rejected(self):
        with pytest.raises(CatalogError):
            Table("", row_count=1, row_width_bytes=10)


class TestSchema:
    def _schema(self):
        return Schema(
            "s",
            tables=[
                Table("a", row_count=1, row_width_bytes=10),
                Table("b", row_count=2, row_width_bytes=20),
            ],
        )

    def test_lookup(self):
        schema = self._schema()
        assert schema.table("a").row_count == 1

    def test_contains(self):
        schema = self._schema()
        assert "a" in schema
        assert "zz" not in schema

    def test_len_and_iter(self):
        schema = self._schema()
        assert len(schema) == 2
        assert [t.name for t in schema] == ["a", "b"]

    def test_table_names_order(self):
        assert self._schema().table_names == ["a", "b"]

    def test_duplicate_table_rejected(self):
        schema = self._schema()
        with pytest.raises(CatalogError):
            schema.add_table(Table("a", row_count=5, row_width_bytes=1))

    def test_missing_table_raises(self):
        with pytest.raises(CatalogError):
            self._schema().table("nope")

    def test_total_size_gb(self):
        schema = self._schema()
        expected = (1 * 10 + 2 * 20) / GB
        assert schema.total_size_gb == pytest.approx(expected)


class TestCatalog:
    def test_valid_catalog(self):
        schema = Schema(
            "s",
            tables=[
                Table("a", row_count=10, row_width_bytes=10),
                Table("b", row_count=10, row_width_bytes=10),
            ],
        )
        graph = JoinGraph([JoinEdge("a", "b", selectivity=0.1)])
        catalog = Catalog(schema=schema, join_graph=graph)
        assert catalog.table("a").row_count == 10
        assert catalog.table_names == ["a", "b"]

    def test_edge_to_unknown_table_rejected(self):
        schema = Schema(
            "s", tables=[Table("a", row_count=10, row_width_bytes=10)]
        )
        graph = JoinGraph([JoinEdge("a", "ghost", selectivity=0.1)])
        with pytest.raises(CatalogError):
            Catalog(schema=schema, join_graph=graph)
