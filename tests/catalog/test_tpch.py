"""Tests for repro.catalog.tpch."""

import pytest

from repro.catalog import tpch
from repro.catalog.queries import QueryError


class TestCardinalities:
    @pytest.mark.parametrize(
        "table,rows",
        [
            ("region", 5),
            ("nation", 25),
            ("supplier", 10_000),
            ("customer", 150_000),
            ("part", 200_000),
            ("partsupp", 800_000),
            ("orders", 1_500_000),
            ("lineitem", 6_000_000),
        ],
    )
    def test_sf1_row_counts(self, table, rows):
        assert tpch.row_count(table, 1.0) == rows

    def test_fixed_tables_do_not_scale(self):
        assert tpch.row_count("region", 100) == 5
        assert tpch.row_count("nation", 1000) == 25

    def test_scaling_tables(self):
        assert tpch.row_count("lineitem", 100) == 600_000_000
        assert tpch.row_count("orders", 10) == 15_000_000

    def test_fractional_scale_factor(self):
        assert tpch.row_count("supplier", 0.1) == 1_000


class TestSchema:
    def test_eight_tables(self, tpch_catalog_sf1):
        assert len(tpch_catalog_sf1.schema) == 8

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            tpch.tpch_schema(0)
        with pytest.raises(ValueError):
            tpch.tpch_schema(-1)

    def test_lineitem_size_sf100_near_paper(self, tpch_catalog_sf100):
        # The paper's lineitem is ~77 GB at SF 100.
        size = tpch_catalog_sf100.table("lineitem").size_gb
        assert 65 <= size <= 85

    def test_row_widths_match_columns_scale(self, tpch_catalog_sf1):
        for table in tpch_catalog_sf1.schema:
            column_width = sum(c.width_bytes for c in table.columns)
            # Declared widths are close to the column sums.
            assert abs(column_width - table.row_width_bytes) <= 10

    def test_schema_name_embeds_sf(self):
        assert tpch.tpch_schema(100).name == "tpch-sf100"


class TestJoinGraph:
    def test_nine_edges(self, tpch_catalog_sf1):
        assert len(tpch_catalog_sf1.join_graph) == 9

    def test_pk_fk_selectivity(self, tpch_catalog_sf1):
        edge = tpch_catalog_sf1.join_graph.edge_between(
            "lineitem", "orders"
        )
        assert edge is not None
        assert edge.selectivity == pytest.approx(1.0 / 1_500_000)

    def test_selectivity_scales_with_sf(self, tpch_catalog_sf100):
        edge = tpch_catalog_sf100.join_graph.edge_between(
            "lineitem", "orders"
        )
        assert edge.selectivity == pytest.approx(1.0 / 150_000_000)

    def test_whole_schema_connected(self, tpch_catalog_sf1):
        graph = tpch_catalog_sf1.join_graph
        assert graph.is_connected(tpch.TABLE_NAMES)

    def test_no_customer_part_edge(self, tpch_catalog_sf1):
        assert (
            tpch_catalog_sf1.join_graph.edge_between("customer", "part")
            is None
        )


class TestQueries:
    def test_q12_single_join(self):
        assert tpch.QUERY_Q12.num_joins == 1
        assert set(tpch.QUERY_Q12.tables) == {"orders", "lineitem"}

    def test_q3_two_joins(self):
        assert tpch.QUERY_Q3.num_joins == 2

    def test_q2_three_joins(self):
        assert tpch.QUERY_Q2.num_joins == 3

    def test_all_query_covers_schema(self):
        assert set(tpch.QUERY_ALL.tables) == set(tpch.TABLE_NAMES)

    def test_all_evaluation_queries_validate(self, tpch_catalog_sf100):
        for query in tpch.EVALUATION_QUERIES:
            query.validate(tpch_catalog_sf100)

    def test_evaluation_order_matches_paper(self):
        names = [q.name for q in tpch.EVALUATION_QUERIES]
        assert names == ["Q12", "Q3", "Q2", "All"]
