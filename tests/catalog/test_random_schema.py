"""Tests for repro.catalog.random_schema."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.random_schema import (
    MAX_ROW_COUNT,
    MAX_ROW_WIDTH_BYTES,
    MIN_ROW_COUNT,
    MIN_ROW_WIDTH_BYTES,
    RandomSchemaConfig,
    query_size_sweep,
    random_catalog,
    random_query,
)


class TestConfigValidation:
    def test_zero_tables_rejected(self):
        with pytest.raises(ValueError):
            RandomSchemaConfig(num_tables=0)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            RandomSchemaConfig(num_tables=3, extra_edge_probability=1.5)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            RandomSchemaConfig(
                num_tables=3,
                min_row_width_bytes=300,
                max_row_width_bytes=200,
            )
        with pytest.raises(ValueError):
            RandomSchemaConfig(
                num_tables=3, min_row_count=100, max_row_count=10
            )


class TestRandomCatalog:
    def test_table_count(self, rng):
        catalog = random_catalog(RandomSchemaConfig(num_tables=20), rng)
        assert len(catalog.schema) == 20

    def test_paper_bounds_respected(self, rng):
        catalog = random_catalog(RandomSchemaConfig(num_tables=50), rng)
        for table in catalog.schema:
            assert (
                MIN_ROW_WIDTH_BYTES
                <= table.row_width_bytes
                <= MAX_ROW_WIDTH_BYTES
            )
            assert MIN_ROW_COUNT <= table.row_count <= MAX_ROW_COUNT

    def test_join_graph_connected(self, rng):
        catalog = random_catalog(RandomSchemaConfig(num_tables=30), rng)
        assert catalog.join_graph.is_connected(catalog.table_names)

    def test_spanning_tree_edge_count_without_extras(self, rng):
        config = RandomSchemaConfig(
            num_tables=25, extra_edge_probability=0.0
        )
        catalog = random_catalog(config, rng)
        assert len(catalog.join_graph) == 24

    def test_extra_edges_add_density(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        sparse = random_catalog(
            RandomSchemaConfig(num_tables=25, extra_edge_probability=0.0),
            rng1,
        )
        dense = random_catalog(
            RandomSchemaConfig(num_tables=25, extra_edge_probability=0.5),
            rng2,
        )
        assert len(dense.join_graph) > len(sparse.join_graph)

    def test_pkfk_selectivities(self, rng):
        catalog = random_catalog(RandomSchemaConfig(num_tables=10), rng)
        for edge in catalog.join_graph.edges():
            pk_rows = max(
                catalog.table(edge.left).row_count,
                catalog.table(edge.right).row_count,
            )
            assert edge.selectivity == pytest.approx(1.0 / pk_rows)

    def test_deterministic_given_seed(self):
        config = RandomSchemaConfig(num_tables=15)
        cat1 = random_catalog(config, np.random.default_rng(9))
        cat2 = random_catalog(config, np.random.default_rng(9))
        assert cat1.table_names == cat2.table_names
        assert [t.row_count for t in cat1.schema] == [
            t.row_count for t in cat2.schema
        ]

    def test_single_table_schema(self, rng):
        catalog = random_catalog(RandomSchemaConfig(num_tables=1), rng)
        assert len(catalog.schema) == 1
        assert len(catalog.join_graph) == 0


class TestRandomQuery:
    def test_query_is_connected_and_validates(self, rng):
        catalog = random_catalog(RandomSchemaConfig(num_tables=20), rng)
        query = random_query(catalog, 8, rng)
        query.validate(catalog)
        assert len(query.tables) == 8

    def test_oversized_query_rejected(self, rng):
        catalog = random_catalog(RandomSchemaConfig(num_tables=5), rng)
        with pytest.raises(ValueError):
            random_query(catalog, 10, rng)

    def test_query_size_sweep(self, rng):
        catalog = random_catalog(RandomSchemaConfig(num_tables=30), rng)
        queries = query_size_sweep(catalog, [2, 5, 10], rng)
        assert [len(q.tables) for q in queries] == [2, 5, 10]
        for query in queries:
            query.validate(catalog)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_property_queries_always_connected(self, seed):
        rng = np.random.default_rng(seed)
        catalog = random_catalog(RandomSchemaConfig(num_tables=12), rng)
        size = int(rng.integers(1, 13))
        query = random_query(catalog, size, rng)
        assert catalog.join_graph.is_connected(query.tables) or (
            len(query.tables) == 1
        )
