"""Tests for repro.catalog.statistics."""

import pytest

from repro.catalog.join_graph import JoinEdge, JoinGraph, JoinGraphError
from repro.catalog.schema import Catalog, Schema, Table
from repro.catalog.statistics import StatisticsEstimator, TableStats


def make_catalog():
    """a (1000 rows x 100B) - b (100 x 50B) - c (10 x 10B) chain."""
    schema = Schema(
        "s",
        tables=[
            Table("a", row_count=1000, row_width_bytes=100),
            Table("b", row_count=100, row_width_bytes=50),
            Table("c", row_count=10, row_width_bytes=10),
        ],
    )
    graph = JoinGraph(
        [
            JoinEdge("a", "b", selectivity=1.0 / 100),
            JoinEdge("b", "c", selectivity=1.0 / 10),
        ]
    )
    return Catalog(schema=schema, join_graph=graph)


class TestTableStats:
    def test_size_bytes(self):
        stats = TableStats(row_count=10, row_width_bytes=100)
        assert stats.size_bytes == 1000

    def test_size_gb(self):
        stats = TableStats(row_count=2**30, row_width_bytes=1)
        assert stats.size_gb == pytest.approx(1.0)

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            TableStats(row_count=-1, row_width_bytes=10)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            TableStats(row_count=1, row_width_bytes=0)


class TestEstimator:
    def test_base_stats(self):
        est = StatisticsEstimator(make_catalog())
        stats = est.base_stats("a")
        assert stats.row_count == 1000
        assert stats.row_width_bytes == 100

    def test_single_table_set(self):
        est = StatisticsEstimator(make_catalog())
        assert est.stats_for(["b"]).row_count == 100

    def test_pk_fk_join_cardinality(self):
        # |a >< b| = 1000 * 100 * (1/100) = 1000 (FK side preserved).
        est = StatisticsEstimator(make_catalog())
        stats = est.stats_for(["a", "b"])
        assert stats.row_count == pytest.approx(1000)
        assert stats.row_width_bytes == 150

    def test_three_way_join(self):
        # 1000 * 100 * 10 * (1/100) * (1/10) = 1000 rows, width 160.
        est = StatisticsEstimator(make_catalog())
        stats = est.stats_for(["a", "b", "c"])
        assert stats.row_count == pytest.approx(1000)
        assert stats.row_width_bytes == 160

    def test_disconnected_set_rejected(self):
        est = StatisticsEstimator(make_catalog())
        with pytest.raises(JoinGraphError):
            est.stats_for(["a", "c"])

    def test_empty_set_rejected(self):
        est = StatisticsEstimator(make_catalog())
        with pytest.raises(JoinGraphError):
            est.stats_for([])

    def test_join_stats_equals_union(self):
        est = StatisticsEstimator(make_catalog())
        union = est.stats_for(["a", "b", "c"])
        joined = est.join_stats(["a", "b"], ["c"])
        assert joined.row_count == union.row_count
        assert joined.row_width_bytes == union.row_width_bytes

    def test_join_io_gb_sorted(self):
        est = StatisticsEstimator(make_catalog())
        small, large = est.join_io_gb(["a"], ["b"])
        assert small <= large
        assert small == est.stats_for(["b"]).size_gb
        assert large == est.stats_for(["a"]).size_gb

    def test_memoisation_and_clear(self):
        est = StatisticsEstimator(make_catalog())
        first = est.stats_for(["a", "b"])
        assert est.stats_for(["a", "b"]) is first
        est.clear_cache()
        assert est.stats_for(["a", "b"]) is not first

    def test_order_insensitive(self):
        est = StatisticsEstimator(make_catalog())
        assert (
            est.stats_for(["b", "a"]).row_count
            == est.stats_for(["a", "b"]).row_count
        )


class TestTpchEstimates:
    def test_lineitem_orders_join_keeps_lineitem_cardinality(
        self, tpch_catalog_sf100
    ):
        est = StatisticsEstimator(tpch_catalog_sf100)
        lineitem = est.base_stats("lineitem")
        joined = est.stats_for(["lineitem", "orders"])
        assert joined.row_count == pytest.approx(lineitem.row_count)

    def test_join_io_identifies_orders_as_smaller(
        self, tpch_catalog_sf100
    ):
        est = StatisticsEstimator(tpch_catalog_sf100)
        small, large = est.join_io_gb(["orders"], ["lineitem"])
        assert small == est.base_stats("orders").size_gb
        assert large == est.base_stats("lineitem").size_gb
