"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.catalog import tpch
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.core.raqo import default_cost_model
from repro.engine.profiles import HIVE_PROFILE, SPARK_PROFILE


@pytest.fixture(scope="session")
def tpch_catalog_sf100():
    """The TPC-H catalog at the paper's evaluation scale factor."""
    return tpch.tpch_catalog(scale_factor=100)


@pytest.fixture(scope="session")
def tpch_catalog_sf1():
    """The TPC-H catalog at scale factor 1."""
    return tpch.tpch_catalog(scale_factor=1)


@pytest.fixture()
def estimator(tpch_catalog_sf100):
    """A fresh statistics estimator over SF-100 TPC-H."""
    return StatisticsEstimator(tpch_catalog_sf100)


@pytest.fixture(scope="session")
def hive_profile():
    """The calibrated Hive engine profile."""
    return HIVE_PROFILE


@pytest.fixture(scope="session")
def spark_profile():
    """The SparkSQL engine profile."""
    return SPARK_PROFILE


@pytest.fixture(scope="session")
def paper_cluster():
    """The paper's Sec VII cluster: 100 containers x up to 10 GB."""
    return ClusterConditions(max_containers=100, max_container_gb=10.0)


@pytest.fixture(scope="session")
def small_cluster():
    """A tiny cluster for fast brute-force comparisons."""
    return ClusterConditions(max_containers=8, max_container_gb=4.0)


@pytest.fixture(scope="session")
def hive_cost_model():
    """The default learned Hive cost model (memoised by the library)."""
    return default_cost_model(HIVE_PROFILE)


@pytest.fixture()
def rc10x4():
    """A typical mid-size configuration."""
    return ResourceConfiguration(num_containers=10, container_gb=4.0)


@pytest.fixture()
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(42)
