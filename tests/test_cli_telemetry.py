"""CLI telemetry flags: --stats-file/--events/--slo-*, serve
--metrics-addr, and the ``repro top`` dashboard verb."""

import json

from repro.cli import main
from repro.obs.prometheus import parse_exposition


class TestReplayTelemetryFlags:
    def test_replay_writes_stats_and_events(self, tmp_path, capsys):
        stats = tmp_path / "stats.prom"
        events = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "replay",
                    "--num-requests",
                    "20",
                    "--tenants",
                    "2",
                    "--workers",
                    "2",
                    "--slo-target-ms",
                    "0",
                    "--stats-file",
                    str(stats),
                    "--events",
                    str(events),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # Per-tenant report lines.
        assert "tenant   tenant-0:" in out
        assert "tenant   tenant-1:" in out
        assert f"stats file written: {stats}" in out
        # The stats file is valid Prometheus exposition.
        parsed = parse_exposition(stats.read_text(encoding="utf-8"))
        assert parsed.value("raqo_serving_completed_total") == 20.0
        # Target 0 ms burns every tenant's budget: events landed.
        names = [
            json.loads(line)["name"]
            for line in events.read_text().splitlines()
        ]
        assert "slo_burn" in names
        assert "admission" in names

    def test_replay_slo_objective_flag_parses(self, tmp_path):
        assert (
            main(
                [
                    "replay",
                    "--num-requests",
                    "5",
                    "--slo-target-ms",
                    "1000",
                    "--slo-objective",
                    "0.99",
                ]
            )
            == 0
        )


class TestServeTelemetryFlags:
    def test_serve_metrics_addr_scrapes(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "serve",
                    "--requests",
                    "4",
                    "--workers",
                    "1",
                    "--metrics-addr",
                    "127.0.0.1:0",
                    "--events",
                    str(events),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "metrics endpoint: http://127.0.0.1:" in out
        assert events.exists()

    def test_serve_rejects_bad_metrics_addr(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--requests",
                    "1",
                    "--metrics-addr",
                    "9100",
                ]
            )
            == 2
        )
        assert "HOST:PORT" in capsys.readouterr().err


class TestTopCommand:
    @staticmethod
    def _artifacts(tmp_path):
        from repro.obs.events import EventLog
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.prometheus import write_stats_file

        log = EventLog()
        log.emit("slo_burn", 1.0, tenant="acme")
        events = tmp_path / "events.jsonl"
        log.write_jsonl(events)
        metrics = MetricsRegistry()
        metrics.counter("planning.queries").inc(3)
        stats = tmp_path / "stats.prom"
        write_stats_file(stats, metrics)
        return events, stats

    def test_top_renders_once(self, tmp_path, capsys):
        events, stats = self._artifacts(tmp_path)
        assert (
            main(
                [
                    "top",
                    "--events",
                    str(events),
                    "--stats",
                    str(stats),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "slo_burn" in out
        assert "raqo_planning_queries_total = 3" in out

    def test_top_follow_iterations(self, tmp_path, capsys):
        events, stats = self._artifacts(tmp_path)
        assert (
            main(
                [
                    "top",
                    "--events",
                    str(events),
                    "--stats",
                    str(stats),
                    "--follow",
                    "--interval",
                    "0.01",
                    "--iterations",
                    "3",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out.count("repro top") == 3

    def test_top_requires_an_input(self, capsys):
        assert main(["top"]) == 2
        assert "--events" in capsys.readouterr().err

    def test_top_rejects_bad_interval(self, tmp_path, capsys):
        events, _ = self._artifacts(tmp_path)
        assert (
            main(
                [
                    "top",
                    "--events",
                    str(events),
                    "--interval",
                    "0",
                ]
            )
            == 2
        )
        assert "interval" in capsys.readouterr().err
