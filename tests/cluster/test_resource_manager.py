"""Tests for repro.cluster.resource_manager."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.containers import (
    ContainerRequest,
    ResourceConfiguration,
    ResourceError,
)
from repro.cluster.resource_manager import (
    JobSubmission,
    ResourceManager,
)


def job(job_id, arrival, containers, size_gb, duration):
    return JobSubmission(
        job_id=job_id,
        arrival_time_s=arrival,
        request=ContainerRequest(
            config=ResourceConfiguration(
                num_containers=containers, container_gb=size_gb
            ),
            duration_s=duration,
        ),
    )


class TestBasics:
    def test_single_job_starts_immediately(self):
        manager = ResourceManager(capacity_gb=100.0)
        [record] = manager.run([job(0, 5.0, 10, 2.0, 60.0)])
        assert record.start_time_s == 5.0
        assert record.queue_time_s == 0.0
        assert record.finish_time_s == 65.0
        assert record.queue_runtime_ratio == 0.0

    def test_capacity_validation(self):
        with pytest.raises(ResourceError):
            ResourceManager(capacity_gb=0.0)

    def test_oversized_job_rejected(self):
        manager = ResourceManager(capacity_gb=10.0)
        with pytest.raises(ResourceError):
            manager.run([job(0, 0.0, 10, 2.0, 60.0)])

    def test_negative_arrival_rejected(self):
        with pytest.raises(ResourceError):
            job(0, -1.0, 1, 1.0, 1.0)

    def test_empty_submission_list(self):
        assert ResourceManager(10.0).run([]) == []


class TestQueueing:
    def test_second_job_queues_when_full(self):
        manager = ResourceManager(capacity_gb=20.0)
        records = manager.run(
            [
                job(0, 0.0, 10, 2.0, 100.0),  # fills the cluster
                job(1, 10.0, 10, 2.0, 50.0),
            ]
        )
        assert records[0].queue_time_s == 0.0
        assert records[1].start_time_s == 100.0
        assert records[1].queue_time_s == 90.0

    def test_parallel_when_capacity_allows(self):
        manager = ResourceManager(capacity_gb=40.0)
        records = manager.run(
            [
                job(0, 0.0, 10, 2.0, 100.0),
                job(1, 10.0, 10, 2.0, 50.0),
            ]
        )
        assert records[1].queue_time_s == 0.0

    def test_strict_fifo_head_of_line_blocking(self):
        # Job 1 (large) blocks job 2 (small) even though 2 would fit.
        manager = ResourceManager(capacity_gb=20.0)
        records = manager.run(
            [
                job(0, 0.0, 8, 2.0, 100.0),  # 16 GB in use
                job(1, 1.0, 10, 2.0, 10.0),  # needs 20, blocks
                job(2, 2.0, 1, 2.0, 10.0),  # would fit, but FIFO
            ]
        )
        assert records[1].start_time_s == 100.0
        assert records[2].start_time_s >= records[1].start_time_s

    def test_queue_drains_in_order(self):
        manager = ResourceManager(capacity_gb=10.0)
        records = manager.run(
            [job(i, 0.0, 5, 2.0, 10.0) for i in range(4)]
        )
        starts = [r.start_time_s for r in records]
        assert starts == sorted(starts)
        assert starts == [0.0, 10.0, 20.0, 30.0]

    def test_ratio_metric(self):
        manager = ResourceManager(capacity_gb=10.0)
        records = manager.run(
            [
                job(0, 0.0, 5, 2.0, 10.0),
                job(1, 0.0, 5, 2.0, 5.0),
            ]
        )
        assert records[1].queue_runtime_ratio == pytest.approx(2.0)


class TestUtilization:
    def test_utilization_empty(self):
        assert ResourceManager(10.0).utilization([]) == 0.0

    def test_utilization_single_job(self):
        manager = ResourceManager(capacity_gb=20.0)
        records = manager.run([job(0, 0.0, 10, 2.0, 100.0)])
        # 20 GB busy out of 20 GB for the whole horizon.
        assert manager.utilization(records) == pytest.approx(1.0)

    def test_utilization_half(self):
        manager = ResourceManager(capacity_gb=40.0)
        records = manager.run([job(0, 0.0, 10, 2.0, 100.0)])
        assert manager.utilization(records) == pytest.approx(0.5)


class TestInvariants:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_capacity_never_exceeded(self, seed):
        rng = np.random.default_rng(seed)
        capacity = 50.0
        manager = ResourceManager(capacity_gb=capacity)
        jobs = []
        now = 0.0
        for i in range(30):
            now += float(rng.exponential(5.0))
            jobs.append(
                job(
                    i,
                    now,
                    int(rng.integers(1, 10)),
                    float(rng.choice([1.0, 2.0, 4.0])),
                    float(rng.exponential(20.0)) + 1.0,
                )
            )
        records = manager.run(jobs)
        # Sweep events to check instantaneous memory usage.
        events = []
        for record in records:
            events.append((record.start_time_s, record.memory_gb))
            events.append((record.finish_time_s, -record.memory_gb))
        events.sort(key=lambda e: (e[0], -e[1] < 0))
        in_use = 0.0
        for _, delta in sorted(events, key=lambda e: e[0]):
            in_use += delta
            assert in_use <= capacity + 1e-6

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_every_job_runs_exactly_once(self, seed):
        rng = np.random.default_rng(seed)
        manager = ResourceManager(capacity_gb=30.0)
        jobs = [
            job(
                i,
                float(rng.uniform(0, 100)),
                int(rng.integers(1, 5)),
                2.0,
                float(rng.uniform(1, 50)),
            )
            for i in range(20)
        ]
        records = manager.run(jobs)
        assert sorted(r.job_id for r in records) == list(range(20))
        for record in records:
            assert record.start_time_s >= record.arrival_time_s
            assert record.finish_time_s == pytest.approx(
                record.start_time_s + record.runtime_s
            )


class ScriptedFaults:
    """Duck-typed fault plan returning scripted decisions per attempt."""

    def __init__(self, script):
        # script: {(stage_key, attempt): FaultDecision}
        self.script = script

    def decide(self, stage_key, attempt, oom_pressure=0.0):
        from repro.faults.model import NO_FAULT

        return self.script.get((stage_key, attempt), NO_FAULT)


class TestPreemption:
    def test_preempted_job_requeues_and_completes(self):
        from repro.faults.model import FaultDecision, FaultKind

        manager = ResourceManager(capacity_gb=100.0)
        faults = ScriptedFaults(
            {
                ("rm-job:0", 0): FaultDecision(
                    kind=FaultKind.PREEMPTION, fraction=0.5
                )
            }
        )
        [record] = manager.run(
            [job(0, 0.0, 10, 2.0, 100.0)], faults=faults
        )
        # Preempted at 50 s, restarted immediately, done at 150 s.
        assert record.start_time_s == 0.0
        assert record.finish_time_s == 150.0
        assert record.preemptions == 1
        assert record.wasted_s == 50.0
        assert record.runtime_s == 100.0

    def test_max_restarts_zero_disables_preemption(self):
        from repro.faults.model import FaultDecision, FaultKind

        manager = ResourceManager(capacity_gb=100.0)
        faults = ScriptedFaults(
            {
                ("rm-job:0", 0): FaultDecision(
                    kind=FaultKind.PREEMPTION, fraction=0.5
                )
            }
        )
        [record] = manager.run(
            [job(0, 0.0, 10, 2.0, 100.0)], faults=faults, max_restarts=0
        )
        assert record.preemptions == 0
        assert record.finish_time_s == 100.0

    def test_restart_cap_guarantees_termination(self):
        from repro.faults.model import FaultPlan, FaultSpec

        manager = ResourceManager(capacity_gb=100.0)
        faults = FaultPlan(FaultSpec(seed=3, preemption_rate=0.95))
        records = manager.run(
            [job(i, 0.0, 5, 2.0, 50.0) for i in range(6)],
            faults=faults,
            max_restarts=2,
        )
        assert len(records) == 6
        assert all(r.preemptions <= 2 for r in records)

    def test_preempted_capacity_frees_for_waiting_jobs(self):
        from repro.faults.model import FaultDecision, FaultKind

        manager = ResourceManager(capacity_gb=20.0)
        faults = ScriptedFaults(
            {
                ("rm-job:0", 0): FaultDecision(
                    kind=FaultKind.PREEMPTION, fraction=0.25
                )
            }
        )
        records = manager.run(
            [
                job(0, 0.0, 10, 2.0, 100.0),
                job(1, 0.0, 10, 2.0, 10.0),
            ],
            faults=faults,
        )
        by_id = {r.job_id: r for r in records}
        # Job 0 is preempted at 25 s; job 1 then starts and runs 10 s;
        # job 0 restarts behind it and finishes at 135 s.
        assert by_id[1].start_time_s == 25.0
        assert by_id[1].finish_time_s == 35.0
        assert by_id[0].finish_time_s == 135.0
        assert by_id[0].preemptions == 1

    def test_zero_fault_plan_matches_fault_free_run(self):
        from repro.faults.model import ZERO_FAULTS

        submissions = [
            job(i, float(i) * 3.0, 8, 2.0, 40.0) for i in range(8)
        ]
        manager = ResourceManager(capacity_gb=48.0)
        plain = manager.run(list(submissions))
        zeroed = manager.run(list(submissions), faults=ZERO_FAULTS)
        assert plain == zeroed

    def test_seeded_runs_are_deterministic(self):
        from repro.faults.model import FaultPlan, FaultSpec

        submissions = [
            job(i, float(i), 8, 2.0, 40.0) for i in range(10)
        ]
        manager = ResourceManager(capacity_gb=32.0)
        faults = FaultPlan(FaultSpec(seed=5, preemption_rate=0.5))
        first = manager.run(list(submissions), faults=faults)
        again = manager.run(list(submissions), faults=faults)
        assert first == again
        assert sum(r.preemptions for r in first) > 0

    def test_utilization_counts_wasted_time(self):
        from repro.faults.model import FaultDecision, FaultKind

        manager = ResourceManager(capacity_gb=20.0)
        faults = ScriptedFaults(
            {
                ("rm-job:0", 0): FaultDecision(
                    kind=FaultKind.PREEMPTION, fraction=0.5
                )
            }
        )
        [record] = manager.run(
            [job(0, 0.0, 10, 2.0, 100.0)], faults=faults
        )
        # 150 busy seconds x 20 GB over a 150 s horizon of 20 GB.
        assert manager.utilization([record]) == pytest.approx(1.0)

    def test_preemption_summary(self):
        from repro.faults.model import FaultPlan, FaultSpec

        manager = ResourceManager(capacity_gb=32.0)
        faults = FaultPlan(FaultSpec(seed=5, preemption_rate=0.5))
        records = manager.run(
            [job(i, float(i), 8, 2.0, 40.0) for i in range(10)],
            faults=faults,
        )
        summary = manager.preemption_summary(records)
        assert summary["jobs"] == 10.0
        assert summary["preemptions"] == sum(
            r.preemptions for r in records
        )
        assert summary["wasted_s"] == pytest.approx(
            sum(r.wasted_s for r in records)
        )

    def test_negative_max_restarts_rejected(self):
        from repro.faults.model import ZERO_FAULTS

        with pytest.raises(ResourceError):
            ResourceManager(10.0).run(
                [job(0, 0.0, 1, 1.0, 1.0)],
                faults=ZERO_FAULTS,
                max_restarts=-1,
            )
