"""Tests for repro.cluster.resource_manager."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.containers import (
    ContainerRequest,
    ResourceConfiguration,
    ResourceError,
)
from repro.cluster.resource_manager import (
    JobSubmission,
    ResourceManager,
)


def job(job_id, arrival, containers, size_gb, duration):
    return JobSubmission(
        job_id=job_id,
        arrival_time_s=arrival,
        request=ContainerRequest(
            config=ResourceConfiguration(containers, size_gb),
            duration_s=duration,
        ),
    )


class TestBasics:
    def test_single_job_starts_immediately(self):
        manager = ResourceManager(capacity_gb=100.0)
        [record] = manager.run([job(0, 5.0, 10, 2.0, 60.0)])
        assert record.start_time_s == 5.0
        assert record.queue_time_s == 0.0
        assert record.finish_time_s == 65.0
        assert record.queue_runtime_ratio == 0.0

    def test_capacity_validation(self):
        with pytest.raises(ResourceError):
            ResourceManager(capacity_gb=0.0)

    def test_oversized_job_rejected(self):
        manager = ResourceManager(capacity_gb=10.0)
        with pytest.raises(ResourceError):
            manager.run([job(0, 0.0, 10, 2.0, 60.0)])

    def test_negative_arrival_rejected(self):
        with pytest.raises(ResourceError):
            job(0, -1.0, 1, 1.0, 1.0)

    def test_empty_submission_list(self):
        assert ResourceManager(10.0).run([]) == []


class TestQueueing:
    def test_second_job_queues_when_full(self):
        manager = ResourceManager(capacity_gb=20.0)
        records = manager.run(
            [
                job(0, 0.0, 10, 2.0, 100.0),  # fills the cluster
                job(1, 10.0, 10, 2.0, 50.0),
            ]
        )
        assert records[0].queue_time_s == 0.0
        assert records[1].start_time_s == 100.0
        assert records[1].queue_time_s == 90.0

    def test_parallel_when_capacity_allows(self):
        manager = ResourceManager(capacity_gb=40.0)
        records = manager.run(
            [
                job(0, 0.0, 10, 2.0, 100.0),
                job(1, 10.0, 10, 2.0, 50.0),
            ]
        )
        assert records[1].queue_time_s == 0.0

    def test_strict_fifo_head_of_line_blocking(self):
        # Job 1 (large) blocks job 2 (small) even though 2 would fit.
        manager = ResourceManager(capacity_gb=20.0)
        records = manager.run(
            [
                job(0, 0.0, 8, 2.0, 100.0),  # 16 GB in use
                job(1, 1.0, 10, 2.0, 10.0),  # needs 20, blocks
                job(2, 2.0, 1, 2.0, 10.0),  # would fit, but FIFO
            ]
        )
        assert records[1].start_time_s == 100.0
        assert records[2].start_time_s >= records[1].start_time_s

    def test_queue_drains_in_order(self):
        manager = ResourceManager(capacity_gb=10.0)
        records = manager.run(
            [job(i, 0.0, 5, 2.0, 10.0) for i in range(4)]
        )
        starts = [r.start_time_s for r in records]
        assert starts == sorted(starts)
        assert starts == [0.0, 10.0, 20.0, 30.0]

    def test_ratio_metric(self):
        manager = ResourceManager(capacity_gb=10.0)
        records = manager.run(
            [
                job(0, 0.0, 5, 2.0, 10.0),
                job(1, 0.0, 5, 2.0, 5.0),
            ]
        )
        assert records[1].queue_runtime_ratio == pytest.approx(2.0)


class TestUtilization:
    def test_utilization_empty(self):
        assert ResourceManager(10.0).utilization([]) == 0.0

    def test_utilization_single_job(self):
        manager = ResourceManager(capacity_gb=20.0)
        records = manager.run([job(0, 0.0, 10, 2.0, 100.0)])
        # 20 GB busy out of 20 GB for the whole horizon.
        assert manager.utilization(records) == pytest.approx(1.0)

    def test_utilization_half(self):
        manager = ResourceManager(capacity_gb=40.0)
        records = manager.run([job(0, 0.0, 10, 2.0, 100.0)])
        assert manager.utilization(records) == pytest.approx(0.5)


class TestInvariants:
    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_capacity_never_exceeded(self, seed):
        rng = np.random.default_rng(seed)
        capacity = 50.0
        manager = ResourceManager(capacity_gb=capacity)
        jobs = []
        now = 0.0
        for i in range(30):
            now += float(rng.exponential(5.0))
            jobs.append(
                job(
                    i,
                    now,
                    int(rng.integers(1, 10)),
                    float(rng.choice([1.0, 2.0, 4.0])),
                    float(rng.exponential(20.0)) + 1.0,
                )
            )
        records = manager.run(jobs)
        # Sweep events to check instantaneous memory usage.
        events = []
        for record in records:
            events.append((record.start_time_s, record.memory_gb))
            events.append((record.finish_time_s, -record.memory_gb))
        events.sort(key=lambda e: (e[0], -e[1] < 0))
        in_use = 0.0
        for _, delta in sorted(events, key=lambda e: e[0]):
            in_use += delta
            assert in_use <= capacity + 1e-6

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_property_every_job_runs_exactly_once(self, seed):
        rng = np.random.default_rng(seed)
        manager = ResourceManager(capacity_gb=30.0)
        jobs = [
            job(
                i,
                float(rng.uniform(0, 100)),
                int(rng.integers(1, 5)),
                2.0,
                float(rng.uniform(1, 50)),
            )
            for i in range(20)
        ]
        records = manager.run(jobs)
        assert sorted(r.job_id for r in records) == list(range(20))
        for record in records:
            assert record.start_time_s >= record.arrival_time_s
            assert record.finish_time_s == pytest.approx(
                record.start_time_s + record.runtime_s
            )
