"""Tests for repro.cluster.cluster."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ClusterConditions, ResourceDimension
from repro.cluster.containers import ResourceConfiguration, ResourceError


class TestResourceDimension:
    def test_num_values(self):
        dim = ResourceDimension("x", 1.0, 10.0, 1.0)
        assert dim.num_values == 10

    def test_values(self):
        dim = ResourceDimension("x", 1.0, 3.0, 1.0)
        assert dim.values() == [1.0, 2.0, 3.0]

    def test_clamp(self):
        dim = ResourceDimension("x", 2.0, 5.0, 1.0)
        assert dim.clamp(0.0) == 2.0
        assert dim.clamp(9.0) == 5.0
        assert dim.clamp(3.0) == 3.0

    def test_contains(self):
        dim = ResourceDimension("x", 2.0, 5.0, 1.0)
        assert dim.contains(2.0) and dim.contains(5.0)
        assert not dim.contains(1.9)

    def test_bad_step_rejected(self):
        with pytest.raises(ResourceError):
            ResourceDimension("x", 1.0, 2.0, 0.0)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ResourceError):
            ResourceDimension("x", 5.0, 1.0, 1.0)


class TestClusterConditions:
    def test_paper_cluster_grid_size(self, paper_cluster):
        # 100 container counts x 10 container sizes.
        assert paper_cluster.grid_size == 1000

    def test_dimensions_order(self, paper_cluster):
        dims = paper_cluster.dimensions
        assert dims[0].name == "num_containers"
        assert dims[1].name == "container_gb"

    def test_step_sizes(self, paper_cluster):
        assert paper_cluster.step_sizes == (1.0, 1.0)

    def test_minimum_configuration(self, paper_cluster):
        assert paper_cluster.minimum_configuration == (
            ResourceConfiguration(num_containers=1, container_gb=1.0)
        )

    def test_maximum_configuration(self, paper_cluster):
        assert paper_cluster.maximum_configuration == (
            ResourceConfiguration(num_containers=100, container_gb=10.0)
        )

    def test_contains(self, paper_cluster):
        assert paper_cluster.contains(ResourceConfiguration(num_containers=50, container_gb=5.0))
        assert not paper_cluster.contains(
            ResourceConfiguration(num_containers=101, container_gb=5.0)
        )
        assert not paper_cluster.contains(
            ResourceConfiguration(num_containers=50, container_gb=10.5)
        )

    def test_clamp(self, paper_cluster):
        clamped = paper_cluster.clamp(ResourceConfiguration(num_containers=500, container_gb=50.0))
        assert clamped == ResourceConfiguration(num_containers=100, container_gb=10.0)

    def test_iter_configurations_count(self, small_cluster):
        configs = list(small_cluster.iter_configurations())
        assert len(configs) == small_cluster.grid_size
        assert len(set(configs)) == len(configs)

    def test_iter_configurations_all_contained(self, small_cluster):
        for config in small_cluster.iter_configurations():
            assert small_cluster.contains(config)

    def test_scaled(self, paper_cluster):
        bigger = paper_cluster.scaled(1000, 100.0)
        assert bigger.max_containers == 1000
        assert bigger.max_container_gb == 100.0
        assert bigger.min_containers == paper_cluster.min_containers

    def test_validation_errors(self):
        with pytest.raises(ResourceError):
            ClusterConditions(max_containers=0, max_container_gb=10.0)
        with pytest.raises(ResourceError):
            ClusterConditions(
                max_containers=10,
                max_container_gb=1.0,
                min_container_gb=2.0,
            )
        with pytest.raises(ResourceError):
            ClusterConditions(
                max_containers=10,
                max_container_gb=10.0,
                container_step=0,
            )
        with pytest.raises(ResourceError):
            ClusterConditions(
                max_containers=10,
                max_container_gb=10.0,
                container_gb_step=0.0,
            )

    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.5, max_value=64.0),
    )
    @settings(max_examples=50)
    def test_property_clamp_idempotent_and_contained(self, count, size):
        cluster = ClusterConditions(
            max_containers=100, max_container_gb=10.0
        )
        clamped = cluster.clamp(ResourceConfiguration(
            num_containers=count, container_gb=size
        ))
        assert cluster.contains(clamped)
        assert cluster.clamp(clamped) == clamped


class TestPositionalAxisShim:
    """One-release positional shim mirrors the keyword constructor."""

    def test_positional_axes_warn(self):
        with pytest.warns(DeprecationWarning, match="positional resource"):
            ClusterConditions(100, 10.0)  # lint: disable=RAQO009

    def test_keyword_axes_do_not_warn(self, recwarn):
        ClusterConditions(max_containers=100, max_container_gb=10.0)
        deprecations = [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations == []

    def test_positional_equals_keyword(self):
        with pytest.warns(DeprecationWarning):
            positional = ClusterConditions(  # lint: disable=RAQO009
                100, 10.0, 2, 0.5, 2, 0.5
            )
        keyword = ClusterConditions(
            max_containers=100,
            max_container_gb=10.0,
            min_containers=2,
            min_container_gb=0.5,
            container_step=2,
            container_gb_step=0.5,
        )
        assert positional == keyword

    def test_duplicate_axis_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                ClusterConditions(100, max_containers=50)  # lint: disable=RAQO009

    def test_missing_maxima_rejected(self):
        with pytest.raises(TypeError, match="requires max_containers"):
            ClusterConditions(min_containers=1)

    def test_defaults_applied(self):
        cluster = ClusterConditions(max_containers=20, max_container_gb=8.0)
        assert cluster.min_containers == 1
        assert cluster.min_container_gb == 1.0
        assert cluster.container_step == 1
        assert cluster.container_gb_step == 1.0
