"""Tests for repro.cluster.scheduler."""

import math

import pytest

from repro.cluster.containers import ResourceConfiguration
from repro.cluster.scheduler import (
    DagScheduler,
    JointPlanRequest,
    SchedulingError,
    SchedulingPolicy,
    frontier_to_alternatives,
)
from repro.engine.joins import JoinAlgorithm
from repro.planner.cost_interface import Cost
from repro.planner.plan import JoinNode, ScanNode


def joint_plan(nc, cs, time_s=100.0):
    """A one-join joint plan with the given per-operator resources."""
    plan = JoinNode(
        left=ScanNode("a"),
        right=ScanNode("b"),
        algorithm=JoinAlgorithm.SORT_MERGE,
        resources=ResourceConfiguration(num_containers=nc, container_gb=cs),
    )
    return JointPlanRequest(plan=plan, cost=Cost(time_s, 1.0))


class TestJointPlanRequest:
    def test_peak_demand_single_join(self):
        request = joint_plan(10, 4.0)
        assert request.peak_demand() == ResourceConfiguration(num_containers=10, container_gb=4.0)

    def test_peak_demand_takes_maximum(self):
        inner = JoinNode(
            left=ScanNode("a"),
            right=ScanNode("b"),
            resources=ResourceConfiguration(num_containers=50, container_gb=8.0),
        )
        outer = JoinNode(
            left=inner,
            right=ScanNode("c"),
            resources=ResourceConfiguration(num_containers=10, container_gb=2.0),
        )
        request = JointPlanRequest(plan=outer, cost=Cost(1.0, 1.0))
        assert request.peak_demand() == ResourceConfiguration(num_containers=50, container_gb=8.0)

    def test_two_step_plan_rejected(self):
        plan = JoinNode(left=ScanNode("a"), right=ScanNode("b"))
        request = JointPlanRequest(plan=plan, cost=Cost(1.0, 1.0))
        with pytest.raises(SchedulingError):
            request.peak_demand()

    def test_scan_only_plan_rejected(self):
        request = JointPlanRequest(
            plan=ScanNode("a"), cost=Cost(1.0, 1.0)
        )
        with pytest.raises(SchedulingError):
            request.peak_demand()


class TestSchedulerValidation:
    def test_bad_capacity(self):
        with pytest.raises(SchedulingError):
            DagScheduler(capacity_gb=0.0)

    def test_bad_free(self):
        with pytest.raises(SchedulingError):
            DagScheduler(capacity_gb=10.0, free_gb=20.0)

    def test_bad_drain_rate(self):
        with pytest.raises(SchedulingError):
            DagScheduler(capacity_gb=10.0, drain_rate_gb_s=0.0)

    def test_empty_alternatives(self):
        with pytest.raises(SchedulingError):
            DagScheduler(capacity_gb=10.0).schedule([])


class TestPolicies:
    def test_fail_rejects_when_full(self):
        scheduler = DagScheduler(capacity_gb=100.0, free_gb=10.0)
        decision = scheduler.schedule(
            [joint_plan(10, 4.0)], SchedulingPolicy.FAIL
        )
        assert not decision.admitted
        assert decision.chosen is None

    def test_fail_admits_when_fits(self):
        scheduler = DagScheduler(capacity_gb=100.0, free_gb=50.0)
        decision = scheduler.schedule(
            [joint_plan(10, 4.0)], SchedulingPolicy.FAIL
        )
        assert decision.admitted
        assert decision.expected_wait_s == 0.0

    def test_delay_estimates_wait(self):
        scheduler = DagScheduler(
            capacity_gb=100.0, free_gb=10.0, drain_rate_gb_s=2.0
        )
        decision = scheduler.schedule(
            [joint_plan(10, 4.0)], SchedulingPolicy.DELAY
        )
        assert decision.admitted
        # Deficit (40 - 10) / 2 GB/s.
        assert decision.expected_wait_s == pytest.approx(15.0)

    def test_delay_rejects_impossible_demand(self):
        scheduler = DagScheduler(capacity_gb=30.0, free_gb=10.0)
        decision = scheduler.schedule(
            [joint_plan(10, 4.0)], SchedulingPolicy.DELAY
        )
        assert not decision.admitted
        assert decision.expected_wait_s == math.inf

    def test_fallback_prefers_first_fitting(self):
        scheduler = DagScheduler(capacity_gb=100.0, free_gb=25.0)
        fast_but_big = joint_plan(20, 4.0, time_s=50.0)  # 80 GB
        slower_small = joint_plan(10, 2.0, time_s=80.0)  # 20 GB
        decision = scheduler.schedule(
            [fast_but_big, slower_small], SchedulingPolicy.FALLBACK
        )
        assert decision.admitted
        assert decision.alternative_index == 1
        assert decision.ran_fallback
        assert decision.chosen is slower_small

    def test_fallback_takes_preferred_when_it_fits(self):
        scheduler = DagScheduler(capacity_gb=100.0, free_gb=90.0)
        preferred = joint_plan(20, 4.0)
        decision = scheduler.schedule(
            [preferred, joint_plan(5, 1.0)], SchedulingPolicy.FALLBACK
        )
        assert decision.alternative_index == 0
        assert not decision.ran_fallback

    def test_fallback_delays_on_best_wait_when_nothing_fits(self):
        scheduler = DagScheduler(
            capacity_gb=100.0, free_gb=5.0, drain_rate_gb_s=1.0
        )
        decision = scheduler.schedule(
            [joint_plan(20, 4.0), joint_plan(10, 2.0)],
            SchedulingPolicy.FALLBACK,
        )
        assert decision.admitted
        assert decision.alternative_index == 1  # smaller deficit
        assert decision.expected_wait_s == pytest.approx(15.0)

    def test_fallback_rejects_universally_impossible(self):
        scheduler = DagScheduler(capacity_gb=10.0, free_gb=1.0)
        decision = scheduler.schedule(
            [joint_plan(20, 4.0)], SchedulingPolicy.FALLBACK
        )
        assert not decision.admitted


class TestFrontierConversion:
    def test_orders_and_wraps(self):
        frontier = (
            ("plan_a", Cost(10.0, 5.0)),
            ("plan_b", Cost(20.0, 1.0)),
        )
        alternatives = frontier_to_alternatives(frontier)
        assert len(alternatives) == 2
        assert alternatives[0].cost.time_s == 10.0


class TestFaultAwareWaits:
    def test_fault_spec_discounts_the_drain_rate(self):
        from repro.faults.model import FaultSpec

        scheduler = DagScheduler(
            capacity_gb=100.0,
            free_gb=10.0,
            drain_rate_gb_s=2.0,
            fault_spec=FaultSpec(preemption_rate=0.5),
        )
        # Expected attempts double under 50% preemption, so the net
        # drain rate halves.
        assert scheduler.effective_drain_rate_gb_s() == pytest.approx(
            1.0
        )

    def test_no_fault_spec_keeps_raw_drain_rate(self):
        scheduler = DagScheduler(
            capacity_gb=100.0, free_gb=10.0, drain_rate_gb_s=2.0
        )
        assert scheduler.effective_drain_rate_gb_s() == 2.0

    def test_waits_stretch_under_preemption(self):
        from repro.faults.model import FaultSpec

        request = joint_plan(nc=20, cs=2.0)  # 40 GB demand
        calm = DagScheduler(
            capacity_gb=100.0, free_gb=10.0, drain_rate_gb_s=2.0
        )
        volatile = DagScheduler(
            capacity_gb=100.0,
            free_gb=10.0,
            drain_rate_gb_s=2.0,
            fault_spec=FaultSpec(preemption_rate=0.5),
        )
        assert volatile.expected_wait_s(
            request
        ) == pytest.approx(2.0 * calm.expected_wait_s(request))

    def test_zero_rate_spec_changes_nothing(self):
        from repro.faults.model import FaultSpec

        request = joint_plan(nc=20, cs=2.0)
        plain = DagScheduler(
            capacity_gb=100.0, free_gb=10.0, drain_rate_gb_s=2.0
        )
        zero = DagScheduler(
            capacity_gb=100.0,
            free_gb=10.0,
            drain_rate_gb_s=2.0,
            fault_spec=FaultSpec(),
        )
        assert zero.expected_wait_s(request) == plain.expected_wait_s(
            request
        )
