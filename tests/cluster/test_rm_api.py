"""Tests for repro.cluster.rm_api."""

import pytest

from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceError
from repro.cluster.rm_api import (
    ClusterSnapshot,
    ExposureLevel,
    RmClient,
    RmState,
)


@pytest.fixture()
def state():
    return RmState(
        total=ClusterConditions(max_containers=100, max_container_gb=10.0),
        free_fraction=0.4,
        free_container_gb=6.0,
    )


class TestRmState:
    def test_defaults(self):
        state = RmState(total=ClusterConditions(max_containers=10, max_container_gb=4.0))
        assert state.free_container_gb == 4.0

    def test_bad_fraction(self):
        with pytest.raises(ResourceError):
            RmState(
                total=ClusterConditions(max_containers=10, max_container_gb=4.0), free_fraction=1.5
            )

    def test_bad_free_container(self):
        with pytest.raises(ResourceError):
            RmState(
                total=ClusterConditions(max_containers=10, max_container_gb=4.0),
                free_container_gb=8.0,
            )


class TestSnapshot:
    def test_age(self):
        snapshot = ClusterSnapshot(
            conditions=ClusterConditions(max_containers=10, max_container_gb=4.0),
            exposure=ExposureLevel.FULL,
            taken_at_s=100.0,
        )
        assert snapshot.age_s(130.0) == 30.0
        with pytest.raises(ResourceError):
            snapshot.age_s(50.0)


class TestExposureLevels:
    def test_none_returns_static_default(self, state):
        client = RmClient(state, ExposureLevel.NONE)
        conditions = client.snapshot().conditions
        assert conditions.max_containers == 10
        assert conditions.max_container_gb == 4.0

    def test_quota_ignores_live_state(self, state):
        quota = ClusterConditions(max_containers=30, max_container_gb=8.0)
        client = RmClient(state, ExposureLevel.QUOTA, quota=quota)
        conditions = client.snapshot().conditions
        assert conditions.max_containers == 30
        assert conditions.max_container_gb == 8.0

    def test_aggregate_clips_counts_not_sizes(self, state):
        client = RmClient(state, ExposureLevel.AGGREGATE)
        conditions = client.snapshot().conditions
        assert conditions.max_containers == 40  # 100 * 0.4
        assert conditions.max_container_gb == 10.0  # no per-node detail

    def test_full_clips_both(self, state):
        client = RmClient(state, ExposureLevel.FULL)
        conditions = client.snapshot().conditions
        assert conditions.max_containers == 40
        assert conditions.max_container_gb == 6.0

    def test_exposure_ordering(self, state):
        """More exposure never *widens* the envelope beyond reality."""
        full = RmClient(state, ExposureLevel.FULL).snapshot().conditions
        aggregate = (
            RmClient(state, ExposureLevel.AGGREGATE)
            .snapshot()
            .conditions
        )
        quota = (
            RmClient(state, ExposureLevel.QUOTA).snapshot().conditions
        )
        assert (
            full.max_containers
            <= aggregate.max_containers
            <= quota.max_containers
        )
        assert full.max_container_gb <= aggregate.max_container_gb

    def test_quota_caps_live_views(self, state):
        quota = ClusterConditions(max_containers=20, max_container_gb=5.0)
        client = RmClient(state, ExposureLevel.FULL, quota=quota)
        conditions = client.snapshot().conditions
        assert conditions.max_containers == 20
        assert conditions.max_container_gb == 5.0

    def test_update_changes_snapshot(self, state):
        client = RmClient(state, ExposureLevel.FULL)
        before = client.snapshot().conditions.max_containers
        client.update(free_fraction=0.1)
        after = client.snapshot().conditions.max_containers
        assert after < before

    def test_update_validates(self, state):
        client = RmClient(state, ExposureLevel.FULL)
        with pytest.raises(ResourceError):
            client.update(free_fraction=-0.1)

    def test_snapshot_never_below_minimums(self, state):
        client = RmClient(state, ExposureLevel.FULL)
        client.update(free_fraction=0.0, free_container_gb=1.0)
        conditions = client.snapshot().conditions
        assert conditions.max_containers >= conditions.min_containers
        assert (
            conditions.max_container_gb >= conditions.min_container_gb
        )

    def test_snapshot_timestamps(self, state):
        client = RmClient(state, ExposureLevel.FULL)
        snapshot = client.snapshot(now_s=42.0)
        assert snapshot.taken_at_s == 42.0
        assert snapshot.exposure is ExposureLevel.FULL
