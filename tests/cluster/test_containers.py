"""Tests for repro.cluster.containers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.containers import (
    ContainerRequest,
    ResourceConfiguration,
    ResourceError,
)


class TestResourceConfiguration:
    def test_total_memory(self):
        config = ResourceConfiguration(num_containers=10, container_gb=4.0)
        assert config.total_memory_gb == 40.0

    def test_gb_seconds(self):
        config = ResourceConfiguration(num_containers=10, container_gb=4.0)
        assert config.gb_seconds(10.0) == 400.0

    def test_gb_seconds_negative_duration_rejected(self):
        with pytest.raises(ResourceError):
            ResourceConfiguration(num_containers=1, container_gb=1.0).gb_seconds(-1.0)

    def test_zero_containers_rejected(self):
        with pytest.raises(ResourceError):
            ResourceConfiguration(num_containers=0, container_gb=1.0)

    def test_non_positive_size_rejected(self):
        with pytest.raises(ResourceError):
            ResourceConfiguration(num_containers=1, container_gb=0.0)
        with pytest.raises(ResourceError):
            ResourceConfiguration(num_containers=1, container_gb=-2.0)

    def test_vector_round_trip(self):
        config = ResourceConfiguration(num_containers=7, container_gb=3.5)
        assert (
            ResourceConfiguration.from_vector(config.as_vector())
            == config
        )

    def test_from_vector_rounds_count(self):
        config = ResourceConfiguration.from_vector((6.6, 2.0))
        assert config.num_containers == 7

    def test_ordering(self):
        a = ResourceConfiguration(num_containers=1, container_gb=1.0)
        b = ResourceConfiguration(num_containers=2, container_gb=1.0)
        assert a < b

    def test_str(self):
        assert str(ResourceConfiguration(num_containers=10, container_gb=4.0)) == "<10 x 4GB>"

    def test_hashable(self):
        assert ResourceConfiguration(num_containers=1, container_gb=1.0) in {
            ResourceConfiguration(num_containers=1, container_gb=1.0)
        }

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=0.5, max_value=128.0),
        st.floats(min_value=0.0, max_value=10_000.0),
    )
    @settings(max_examples=50)
    def test_property_gb_seconds_scales(self, count, size, duration):
        config = ResourceConfiguration(num_containers=count, container_gb=size)
        assert config.gb_seconds(duration) == pytest.approx(
            count * size * duration
        )


class TestContainerRequest:
    def test_memory_gb(self):
        request = ContainerRequest(
            config=ResourceConfiguration(num_containers=5, container_gb=2.0), duration_s=60.0
        )
        assert request.memory_gb == 10.0

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ResourceError):
            ContainerRequest(
                config=ResourceConfiguration(num_containers=1, container_gb=1.0), duration_s=0.0
            )


class TestPositionalAxisShim:
    """One-release positional shim: warns, then behaves like keywords."""

    def test_positional_axes_warn(self):
        with pytest.warns(DeprecationWarning, match="positional resource"):
            ResourceConfiguration(10, 4.0)  # lint: disable=RAQO009

    def test_keyword_axes_do_not_warn(self, recwarn):
        ResourceConfiguration(num_containers=10, container_gb=4.0)
        deprecations = [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]
        assert deprecations == []

    def test_positional_equals_keyword(self):
        with pytest.warns(DeprecationWarning):
            positional = ResourceConfiguration(10, 4.0)  # lint: disable=RAQO009
        keyword = ResourceConfiguration(num_containers=10, container_gb=4.0)
        assert positional == keyword
        assert positional.total_memory_gb == keyword.total_memory_gb

    def test_mixed_positional_and_keyword(self):
        with pytest.warns(DeprecationWarning):
            mixed = ResourceConfiguration(10, container_gb=4.0)  # lint: disable=RAQO009
        assert mixed == ResourceConfiguration(
            num_containers=10, container_gb=4.0
        )

    def test_conflicting_axes_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                ResourceConfiguration(10, num_containers=5)  # lint: disable=RAQO009

    def test_excess_positionals_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                ResourceConfiguration(10, 4.0, 9.0)  # lint: disable=RAQO009

    def test_missing_axis_rejected(self):
        with pytest.raises(TypeError, match="requires num_containers"):
            ResourceConfiguration(container_gb=4.0)

    def test_replace_round_trip(self):
        import dataclasses

        config = ResourceConfiguration(num_containers=10, container_gb=4.0)
        bigger = dataclasses.replace(config, container_gb=8.0)
        assert bigger == ResourceConfiguration(
            num_containers=10, container_gb=8.0
        )
