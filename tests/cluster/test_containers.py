"""Tests for repro.cluster.containers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.containers import (
    ContainerRequest,
    ResourceConfiguration,
    ResourceError,
)


class TestResourceConfiguration:
    def test_total_memory(self):
        config = ResourceConfiguration(10, 4.0)
        assert config.total_memory_gb == 40.0

    def test_gb_seconds(self):
        config = ResourceConfiguration(10, 4.0)
        assert config.gb_seconds(10.0) == 400.0

    def test_gb_seconds_negative_duration_rejected(self):
        with pytest.raises(ResourceError):
            ResourceConfiguration(1, 1.0).gb_seconds(-1.0)

    def test_zero_containers_rejected(self):
        with pytest.raises(ResourceError):
            ResourceConfiguration(0, 1.0)

    def test_non_positive_size_rejected(self):
        with pytest.raises(ResourceError):
            ResourceConfiguration(1, 0.0)
        with pytest.raises(ResourceError):
            ResourceConfiguration(1, -2.0)

    def test_vector_round_trip(self):
        config = ResourceConfiguration(7, 3.5)
        assert (
            ResourceConfiguration.from_vector(config.as_vector())
            == config
        )

    def test_from_vector_rounds_count(self):
        config = ResourceConfiguration.from_vector((6.6, 2.0))
        assert config.num_containers == 7

    def test_ordering(self):
        a = ResourceConfiguration(1, 1.0)
        b = ResourceConfiguration(2, 1.0)
        assert a < b

    def test_str(self):
        assert str(ResourceConfiguration(10, 4.0)) == "<10 x 4GB>"

    def test_hashable(self):
        assert ResourceConfiguration(1, 1.0) in {
            ResourceConfiguration(1, 1.0)
        }

    @given(
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=0.5, max_value=128.0),
        st.floats(min_value=0.0, max_value=10_000.0),
    )
    @settings(max_examples=50)
    def test_property_gb_seconds_scales(self, count, size, duration):
        config = ResourceConfiguration(count, size)
        assert config.gb_seconds(duration) == pytest.approx(
            count * size * duration
        )


class TestContainerRequest:
    def test_memory_gb(self):
        request = ContainerRequest(
            config=ResourceConfiguration(5, 2.0), duration_s=60.0
        )
        assert request.memory_gb == 10.0

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ResourceError):
            ContainerRequest(
                config=ResourceConfiguration(1, 1.0), duration_s=0.0
            )
