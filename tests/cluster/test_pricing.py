"""Tests for repro.cluster.pricing."""

import pytest

from repro.cluster.containers import ResourceConfiguration, ResourceError
from repro.cluster.pricing import PriceModel


class TestPriceModel:
    def test_cost_of_gb_seconds(self):
        model = PriceModel(dollars_per_gb_hour=3.6)
        # 1000 GB-seconds at $3.6/GB-hour = 1000/3600*3.6 = $1.
        assert model.cost_of_gb_seconds(1000.0) == pytest.approx(1.0)

    def test_cost_of_config(self):
        model = PriceModel(dollars_per_gb_hour=1.0)
        config = ResourceConfiguration(num_containers=10, container_gb=2.0)  # 20 GB
        # 20 GB for 3600 s = 20 GB-hours = $20.
        assert model.cost(config, 3600.0) == pytest.approx(20.0)

    def test_linear_in_duration(self):
        model = PriceModel()
        config = ResourceConfiguration(num_containers=4, container_gb=4.0)
        assert model.cost(config, 200.0) == pytest.approx(
            2 * model.cost(config, 100.0)
        )

    def test_zero_gb_seconds_free(self):
        assert PriceModel().cost_of_gb_seconds(0.0) == 0.0

    def test_negative_gb_seconds_rejected(self):
        with pytest.raises(ResourceError):
            PriceModel().cost_of_gb_seconds(-1.0)

    def test_non_positive_rate_rejected(self):
        with pytest.raises(ResourceError):
            PriceModel(dollars_per_gb_hour=0.0)

    def test_default_rate_positive(self):
        assert PriceModel().dollars_per_gb_hour > 0
