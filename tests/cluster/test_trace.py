"""Tests for repro.cluster.trace."""

import numpy as np
import pytest

from repro.cluster.trace import (
    TraceConfig,
    fraction_with_ratio_at_least,
    generate_submissions,
    queue_runtime_ratios,
    ratio_cdf,
    simulate_trace,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        TraceConfig()

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(num_jobs=0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(capacity_gb=0.0)

    def test_zero_burst_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(burst_length=0)


class TestGeneration:
    def test_submission_count(self, rng):
        config = TraceConfig(num_jobs=50)
        assert len(generate_submissions(config, rng)) == 50

    def test_arrivals_monotone(self, rng):
        submissions = generate_submissions(TraceConfig(num_jobs=100), rng)
        arrivals = [s.arrival_time_s for s in submissions]
        assert arrivals == sorted(arrivals)

    def test_requests_fit_capacity(self, rng):
        config = TraceConfig(num_jobs=200, capacity_gb=50.0)
        for submission in generate_submissions(config, rng):
            assert submission.request.memory_gb <= config.capacity_gb

    def test_runtimes_positive(self, rng):
        for submission in generate_submissions(
            TraceConfig(num_jobs=100), rng
        ):
            assert submission.request.duration_s >= 1.0

    def test_deterministic_given_seed(self):
        config = TraceConfig(num_jobs=30)
        a = generate_submissions(config, np.random.default_rng(1))
        b = generate_submissions(config, np.random.default_rng(1))
        assert [s.arrival_time_s for s in a] == [
            s.arrival_time_s for s in b
        ]


class TestSimulation:
    def test_paper_headline_statistics(self):
        """The calibrated default trace reproduces Fig 1's claims."""
        records = simulate_trace(TraceConfig(), np.random.default_rng(7))
        assert fraction_with_ratio_at_least(records, 1.0) >= 0.80
        assert fraction_with_ratio_at_least(records, 4.0) >= 0.20

    def test_ratios_sorted(self):
        records = simulate_trace(
            TraceConfig(num_jobs=200), np.random.default_rng(3)
        )
        ratios = queue_runtime_ratios(records)
        assert list(ratios) == sorted(ratios)

    def test_cdf_shape(self):
        records = simulate_trace(
            TraceConfig(num_jobs=200), np.random.default_rng(3)
        )
        fractions, ratios = ratio_cdf(records)
        assert len(fractions) == len(ratios) == 200
        assert fractions[0] == pytest.approx(1 / 200)
        assert fractions[-1] == pytest.approx(1.0)

    def test_fraction_threshold_edges(self):
        records = simulate_trace(
            TraceConfig(num_jobs=100), np.random.default_rng(3)
        )
        assert fraction_with_ratio_at_least(records, 0.0) == 1.0
        assert fraction_with_ratio_at_least(records, 1e12) == 0.0
        assert fraction_with_ratio_at_least([], 1.0) == 0.0

    def test_light_load_has_no_queueing(self):
        config = TraceConfig(
            num_jobs=50,
            capacity_gb=1_000_000.0,
            burst_interarrival_s=1000.0,
            idle_interarrival_s=1000.0,
        )
        records = simulate_trace(config, np.random.default_rng(3))
        assert fraction_with_ratio_at_least(records, 0.01) == 0.0
