"""Simulated execution of physical plans: time, resources used, dollars.

This is the substitute for actually running Hive/SparkSQL on a YARN
cluster. A plan executes its join operators sequentially at shuffle
boundaries (child joins before parents), each on its own per-operator
resource configuration when RAQO planned one, or on a global default
otherwise. The executor reports the paper's three evaluation metrics:
execution time, total resources used ("the product of the total memory and
the total execution time", Sec I), and serverless monetary cost.

Fault injection (``faults=``/``recovery=``) threads every stage through
the deterministic attempt loop in :mod:`repro.faults.injection`:
container preemptions and OOM kills waste work and trigger capped
exponential-backoff retries, stragglers stretch (and may speculatively
re-execute) a stage, and a BHJ that OOMs degrades to SMJ instead of
failing the query. A zero-fault plan is bit-identical to running without
fault injection at all -- the contract the property suite asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.containers import ResourceConfiguration
from repro.cluster.pricing import PriceModel
from repro.engine.joins import (
    JoinAlgorithm,
    JoinExecution,
    join_execution,
)
from repro.engine.profiles import EngineProfile
from repro.faults.injection import run_stage_with_faults
from repro.faults.model import (
    AttemptRecord,
    FaultPlan,
    stage_key_for_join,
)
from repro.faults.recovery import DEFAULT_RECOVERY, RecoveryPolicy
from repro.obs.telemetry import TelemetryPlane
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, SpanHandle, Tracer
from repro.planner.plan import JoinNode, PlanNode


class ExecutionError(Exception):
    """Raised when a plan cannot be executed as specified.

    Carries the failing stage's context so callers (and logs) can tell
    *which* operator, on *which* attempt, under *which* envelope broke:
    ``stage_id`` (postorder index), ``tables``, ``attempt`` (0-based),
    and ``resources`` (None when the stage had no envelope at all).
    When the run was traced, ``span_id``/``trace_id`` join the failure
    back to the stage's span in the exported trace file.
    """

    def __init__(
        self,
        message: str,
        stage_id: Optional[int] = None,
        tables: Optional[FrozenSet[str]] = None,
        attempt: int = 0,
        resources: Optional[ResourceConfiguration] = None,
        span_id: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.stage_id = stage_id
        self.tables = tables
        self.attempt = attempt
        self.resources = resources
        self.span_id = span_id
        self.trace_id = trace_id
        parts = [message]
        if stage_id is not None:
            parts.append(f"stage={stage_id}")
        if tables is not None:
            parts.append(f"tables={sorted(tables)}")
        if stage_id is not None or tables is not None:
            parts.append(f"attempt={attempt}")
            parts.append(
                f"resources={resources}"
                if resources is not None
                else "resources=<none>"
            )
        if span_id:
            parts.append(f"span={span_id}")
        super().__init__(" | ".join(parts))


@dataclass(frozen=True)
class JoinRunReport:
    """Simulated execution of one join operator.

    The fault-era fields default to their quiet values so fault-free
    runs (and zero-fault injected runs) produce reports identical to the
    pre-fault executor's.
    """

    left_tables: FrozenSet[str]
    right_tables: FrozenSet[str]
    algorithm: JoinAlgorithm
    resources: ResourceConfiguration
    feasible: bool
    time_s: float
    gb_seconds: float
    #: Per-attempt history; empty unless a fault, retry, degradation, or
    #: speculative copy touched this stage.
    attempts: Tuple[AttemptRecord, ...] = ()
    retries: int = 0
    #: True when a BHJ fell back to SMJ (``algorithm`` then reports the
    #: SMJ that actually ran).
    degraded: bool = False
    speculative: bool = False
    faults_injected: int = 0

    @property
    def tables(self) -> FrozenSet[str]:
        """All tables covered by this join."""
        return self.left_tables | self.right_tables


@dataclass(frozen=True)
class ExecutionResult:
    """End-to-end simulated execution of a plan."""

    time_s: float
    gb_seconds: float
    dollars: float
    feasible: bool
    joins: Tuple[JoinRunReport, ...]
    #: Aggregate fault/recovery counters (all zero for fault-free runs).
    retries: int = 0
    faults_injected: int = 0
    degraded_stages: int = 0
    speculative_stages: int = 0

    @property
    def tb_seconds(self) -> float:
        """The paper's Fig 2 unit: resources used in TB * seconds."""
        return self.gb_seconds / 1024.0


def oom_pressure(
    algorithm: JoinAlgorithm,
    small_gb: float,
    resources: ResourceConfiguration,
    profile: EngineProfile,
) -> float:
    """Memory-budget utilisation of a join stage (scales OOM kills).

    For BHJ this is the broadcast table over the per-container hash
    budget -- the quantity whose crossing 1.0 is the paper's OOM wall.
    SMJ streams and spills, so its injected OOM pressure is zero.
    """
    if algorithm is not JoinAlgorithm.BROADCAST_HASH:
        return 0.0
    budget = profile.hash_memory_fraction * resources.container_gb
    if budget <= 0:
        return math.inf
    return small_gb / budget


def execute_plan(
    plan: PlanNode,
    estimator: StatisticsEstimator,
    profile: EngineProfile,
    default_resources: Optional[ResourceConfiguration] = None,
    price_model: Optional[PriceModel] = None,
    num_reducers: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
    tracer: Tracer = NULL_TRACER,
    telemetry: Optional[TelemetryPlane] = None,
    sim_epoch_s: float = 0.0,
) -> ExecutionResult:
    """Simulate ``plan`` and account its time, resources, and cost.

    Every join uses its own annotated
    :class:`~repro.cluster.containers.ResourceConfiguration` when present,
    else ``default_resources`` (an :class:`ExecutionError` if neither is
    available). Infeasible joins (BHJ OOM) make the whole result
    infeasible with infinite time, mirroring a failed job -- unless a
    ``recovery`` policy allows the BHJ -> SMJ fallback.

    ``faults`` injects deterministic preemptions, OOM kills, and
    stragglers (see :mod:`repro.faults`); ``recovery`` defaults to
    :data:`~repro.faults.recovery.DEFAULT_RECOVERY` whenever ``faults``
    is given, and may also be passed alone to enable degradation without
    injected faults.

    ``tracer`` (the no-op null tracer by default) records a ``run`` span
    with one ``stage`` span per join operator -- simulated-time windows
    on the plan's cumulative clock -- and, on the fault path, per
    ``attempt`` child spans with fault/retry events.

    ``telemetry`` additionally lands each stage on the plane's
    simulated-clock windowed series (stage counts, stage-time
    distributions, container occupancy) stamped at ``sim_epoch_s`` plus
    the plan's cumulative clock, and emits ``stage_degraded`` /
    ``stage_infeasible`` events into the unified event log.  Because
    every record carries an explicit simulated timestamp, the windowed
    snapshots of a seeded run are byte-identical however the run was
    scheduled.
    """
    price_model = price_model or PriceModel()
    if faults is not None and recovery is None:
        recovery = DEFAULT_RECOVERY
    reports = []
    total_time = 0.0
    total_gb_seconds = 0.0
    feasible = True

    with tracer.span("run", kind="engine") as run_span:
        for stage_id, join in enumerate(plan.joins_postorder()):
            stage_span = tracer.span(
                "stage", kind="engine", parent=run_span, key=str(stage_id)
            )
            with stage_span:
                resources = join.resources or default_resources
                if resources is None:
                    stage_span.set_attribute("error", "no-resources")
                    raise ExecutionError(
                        "join has no resources and no default was "
                        "provided",
                        stage_id=stage_id,
                        tables=frozenset(join.tables),
                        span_id=stage_span.span_id or None,
                        trace_id=tracer.trace_id or None,
                    )
                small_gb, large_gb = estimator.join_io_gb(
                    join.left.tables, join.right.tables
                )
                if faults is None and recovery is None:
                    report = _run_stage_plain(
                        join,
                        resources,
                        small_gb,
                        large_gb,
                        profile,
                        num_reducers,
                    )
                else:
                    report = _run_stage_faulty(
                        join,
                        resources,
                        small_gb,
                        large_gb,
                        profile,
                        num_reducers,
                        faults,
                        recovery,
                        tracer=tracer,
                        stage_span=stage_span,
                        sim_start_s=total_time,
                    )
                if stage_span.active:
                    _annotate_stage_span(
                        stage_span, stage_id, report, total_time
                    )
            reports.append(report)
            feasible = feasible and report.feasible
            total_time += report.time_s
            total_gb_seconds += report.gb_seconds
            if telemetry is not None:
                stage_end_s = sim_epoch_s + (
                    total_time if math.isfinite(total_time) else 0.0
                )
                _record_stage_telemetry(
                    telemetry, stage_id, report, stage_end_s
                )
        if run_span.active:
            run_span.set_attributes(
                {
                    "stages": len(reports),
                    "feasible": feasible,
                    "retries": sum(r.retries for r in reports),
                    "faults_injected": sum(
                        r.faults_injected for r in reports
                    ),
                }
            )
            if feasible:
                run_span.set_sim_window(0.0, total_time)
                run_span.set_attribute(
                    "gb_seconds", total_gb_seconds
                )

    dollars = (
        price_model.cost_of_gb_seconds(total_gb_seconds)
        if feasible
        else math.inf
    )
    return ExecutionResult(
        time_s=total_time,
        gb_seconds=total_gb_seconds,
        dollars=dollars,
        feasible=feasible,
        joins=tuple(reports),
        retries=sum(r.retries for r in reports),
        faults_injected=sum(r.faults_injected for r in reports),
        degraded_stages=sum(1 for r in reports if r.degraded),
        speculative_stages=sum(1 for r in reports if r.speculative),
    )


def _record_stage_telemetry(
    telemetry: TelemetryPlane,
    stage_id: int,
    report: JoinRunReport,
    stage_end_s: float,
) -> None:
    """Land one finished stage on the sim-clock windowed series."""
    telemetry.windowed_counter(
        "execution.stages", clock="sim"
    ).inc(ts_s=stage_end_s)
    telemetry.windowed_gauge(
        "execution.stage_containers", clock="sim"
    ).record(float(report.resources.num_containers), ts_s=stage_end_s)
    if report.feasible and math.isfinite(report.time_s):
        telemetry.windowed_histogram(
            "execution.stage_time_s", clock="sim"
        ).observe(report.time_s, ts_s=stage_end_s)
    if report.degraded:
        telemetry.events.emit(
            "stage_degraded",
            stage_end_s,
            clock="sim",
            attributes={
                "stage_id": stage_id,
                "algorithm": report.algorithm.value,
                "tables": ",".join(sorted(report.tables)),
            },
        )
    if not report.feasible:
        telemetry.events.emit(
            "stage_infeasible",
            stage_end_s,
            clock="sim",
            attributes={
                "stage_id": stage_id,
                "algorithm": report.algorithm.value,
                "tables": ",".join(sorted(report.tables)),
                "container_gb": report.resources.container_gb,
            },
        )


def _annotate_stage_span(
    stage_span: SpanHandle,
    stage_id: int,
    report: JoinRunReport,
    sim_start_s: float,
) -> None:
    """Attach a stage's outcome to its span (traced runs only)."""
    stage_span.set_attributes(
        {
            "stage_id": stage_id,
            "algorithm": report.algorithm.value,
            "tables": ",".join(sorted(report.tables)),
            "num_containers": report.resources.num_containers,
            "container_gb": report.resources.container_gb,
            "total_memory_gb": report.resources.total_memory_gb,
            "feasible": report.feasible,
            "retries": report.retries,
            "degraded": report.degraded,
            "speculative": report.speculative,
            "faults_injected": report.faults_injected,
        }
    )
    if math.isfinite(report.time_s) and math.isfinite(sim_start_s):
        stage_span.set_sim_window(
            sim_start_s, sim_start_s + report.time_s
        )
        stage_span.set_attribute("time_s", report.time_s)


def _run_stage_plain(
    join: JoinNode,
    resources: ResourceConfiguration,
    small_gb: float,
    large_gb: float,
    profile: EngineProfile,
    num_reducers: Optional[int],
) -> JoinRunReport:
    """The historical fault-free fast path (bit-for-bit preserved)."""
    execution = join_execution(
        join.algorithm,
        small_gb,
        large_gb,
        resources,
        profile,
        num_reducers=num_reducers,
    )
    gb_seconds = (
        resources.gb_seconds(execution.time_s)
        if execution.feasible
        else math.inf
    )
    return JoinRunReport(
        left_tables=frozenset(join.left.tables),
        right_tables=frozenset(join.right.tables),
        algorithm=join.algorithm,
        resources=resources,
        feasible=execution.feasible,
        time_s=execution.time_s,
        gb_seconds=gb_seconds,
    )


def _run_stage_faulty(
    join: JoinNode,
    resources: ResourceConfiguration,
    small_gb: float,
    large_gb: float,
    profile: EngineProfile,
    num_reducers: Optional[int],
    faults: Optional[FaultPlan],
    recovery: Optional[RecoveryPolicy],
    tracer: Tracer = NULL_TRACER,
    stage_span: SpanHandle = NULL_SPAN,
    sim_start_s: float = 0.0,
) -> JoinRunReport:
    """One stage through the fault-aware attempt loop."""

    def run_attempt(
        algorithm: JoinAlgorithm, config: ResourceConfiguration
    ) -> JoinExecution:
        return join_execution(
            algorithm,
            small_gb,
            large_gb,
            config,
            profile,
            num_reducers=num_reducers,
        )

    def pressure(
        algorithm: JoinAlgorithm, config: ResourceConfiguration
    ) -> float:
        return oom_pressure(algorithm, small_gb, config, profile)

    outcome = run_stage_with_faults(
        stage_key=stage_key_for_join(
            join.left.tables, join.right.tables, join.algorithm
        ),
        algorithm=join.algorithm,
        resources=resources,
        run_attempt=run_attempt,
        oom_pressure=pressure,
        faults=faults,
        recovery=recovery,
        tracer=tracer,
        stage_span=stage_span,
        sim_start_s=sim_start_s,
    )
    return JoinRunReport(
        left_tables=frozenset(join.left.tables),
        right_tables=frozenset(join.right.tables),
        algorithm=outcome.algorithm,
        resources=outcome.resources,
        feasible=outcome.feasible,
        time_s=outcome.elapsed_s,
        gb_seconds=outcome.gb_seconds,
        attempts=outcome.attempts,
        retries=outcome.retries,
        degraded=outcome.degraded,
        speculative=outcome.speculative,
        faults_injected=outcome.faults_injected,
    )
