"""Simulated execution of physical plans: time, resources used, dollars.

This is the substitute for actually running Hive/SparkSQL on a YARN
cluster. A plan executes its join operators sequentially at shuffle
boundaries (child joins before parents), each on its own per-operator
resource configuration when RAQO planned one, or on a global default
otherwise. The executor reports the paper's three evaluation metrics:
execution time, total resources used ("the product of the total memory and
the total execution time", Sec I), and serverless monetary cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.containers import ResourceConfiguration
from repro.cluster.pricing import PriceModel
from repro.engine.joins import JoinAlgorithm, join_execution
from repro.engine.profiles import EngineProfile
from repro.planner.plan import PlanNode


class ExecutionError(Exception):
    """Raised when a plan cannot be executed as specified."""


@dataclass(frozen=True)
class JoinRunReport:
    """Simulated execution of one join operator."""

    left_tables: FrozenSet[str]
    right_tables: FrozenSet[str]
    algorithm: JoinAlgorithm
    resources: ResourceConfiguration
    feasible: bool
    time_s: float
    gb_seconds: float

    @property
    def tables(self) -> FrozenSet[str]:
        """All tables covered by this join."""
        return self.left_tables | self.right_tables


@dataclass(frozen=True)
class ExecutionResult:
    """End-to-end simulated execution of a plan."""

    time_s: float
    gb_seconds: float
    dollars: float
    feasible: bool
    joins: Tuple[JoinRunReport, ...]

    @property
    def tb_seconds(self) -> float:
        """The paper's Fig 2 unit: resources used in TB * seconds."""
        return self.gb_seconds / 1024.0


def execute_plan(
    plan: PlanNode,
    estimator: StatisticsEstimator,
    profile: EngineProfile,
    default_resources: Optional[ResourceConfiguration] = None,
    price_model: Optional[PriceModel] = None,
    num_reducers: Optional[int] = None,
) -> ExecutionResult:
    """Simulate ``plan`` and account its time, resources, and cost.

    Every join uses its own annotated
    :class:`~repro.cluster.containers.ResourceConfiguration` when present,
    else ``default_resources`` (an :class:`ExecutionError` if neither is
    available). Infeasible joins (BHJ OOM) make the whole result
    infeasible with infinite time, mirroring a failed job.
    """
    price_model = price_model or PriceModel()
    reports = []
    total_time = 0.0
    total_gb_seconds = 0.0
    feasible = True

    for join in plan.joins_postorder():
        resources = join.resources or default_resources
        if resources is None:
            raise ExecutionError(
                "join over "
                f"{sorted(join.tables)} has no resources and no default "
                "was provided"
            )
        small_gb, large_gb = estimator.join_io_gb(
            join.left.tables, join.right.tables
        )
        execution = join_execution(
            join.algorithm,
            small_gb,
            large_gb,
            resources,
            profile,
            num_reducers=num_reducers,
        )
        gb_seconds = (
            resources.gb_seconds(execution.time_s)
            if execution.feasible
            else math.inf
        )
        reports.append(
            JoinRunReport(
                left_tables=frozenset(join.left.tables),
                right_tables=frozenset(join.right.tables),
                algorithm=join.algorithm,
                resources=resources,
                feasible=execution.feasible,
                time_s=execution.time_s,
                gb_seconds=gb_seconds,
            )
        )
        feasible = feasible and execution.feasible
        total_time += execution.time_s
        total_gb_seconds += gb_seconds

    dollars = (
        price_model.cost_of_gb_seconds(total_gb_seconds)
        if feasible
        else math.inf
    )
    return ExecutionResult(
        time_s=total_time,
        gb_seconds=total_gb_seconds,
        dollars=dollars,
        feasible=feasible,
        joins=tuple(reports),
    )
