"""Analytic execution-time models for the two join implementations.

The paper studies shuffle sort-merge join (SMJ) and broadcast hash join
(BHJ) in Hive and SparkSQL (Sec III-A). This module computes the simulated
wall-clock time of one join stage given the input sizes, the resource
configuration (number of containers, container memory), and an engine
profile. The constants in :mod:`repro.engine.profiles` are calibrated so
that the switch points between the two implementations land where the paper
measured them.

Model structure (per :class:`~repro.engine.profiles.EngineProfile`):

``SMJ``
    Both inputs are scanned, shuffled, sorted, and merged. Work is
    parallel across containers; the reduce phase is additionally limited
    by the number of reducers and pays a spill penalty when a reduce
    task's data exceeds its sort buffer. SMJ therefore improves with
    parallelism and is nearly insensitive to container size -- the
    behaviour the paper's Fig 3 reports and the negative
    number-of-containers coefficient of the Sec VI-A regression captures.

``BHJ``
    The smaller input is broadcast to every container (cost grows with
    the number of containers), built into a hash table (superlinear in
    table size, amplified by a memory-pressure penalty as the table
    approaches the container's hash budget), and the larger input is
    probed in parallel. BHJ is infeasible (OOM) when the broadcast table
    exceeds ``hash_memory_fraction * container_gb`` -- the hard walls in
    the paper's Figs 3(a) and 4(a).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.cluster.containers import ResourceConfiguration
from repro.engine.profiles import EngineProfile

#: Execution time reported for an infeasible (OOM) join.
INFEASIBLE_TIME_S = math.inf


class JoinAlgorithm(enum.Enum):
    """The two physical join implementations the paper evaluates."""

    SORT_MERGE = "smj"
    BROADCAST_HASH = "bhj"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class JoinExecution:
    """The simulated outcome of one join stage.

    ``time_s`` is infinite when the join is infeasible under the given
    resources (BHJ OOM); ``breakdown`` itemises the phase times for
    inspection and tests.
    """

    algorithm: JoinAlgorithm
    feasible: bool
    time_s: float
    num_tasks: int
    breakdown: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.feasible and not math.isfinite(self.time_s):
            raise ValueError("feasible executions must have finite time")
        if not self.feasible and math.isfinite(self.time_s):
            raise ValueError("infeasible executions must have infinite time")


def _validate_inputs(small_gb: float, large_gb: float) -> None:
    if small_gb < 0 or large_gb < 0:
        raise ValueError(
            f"input sizes must be >= 0, got {small_gb} and {large_gb}"
        )
    if small_gb > large_gb:
        raise ValueError(
            "small_gb must not exceed large_gb "
            f"({small_gb} > {large_gb}); pass inputs in sorted order"
        )


def default_num_reducers(data_gb: float, profile: EngineProfile) -> int:
    """Hive-style automatic reducer count: shuffle data / GB-per-reducer.

    The paper enables "Hive's feature that automatically determines the
    number of reducers, since those gave us close to optimal performance".
    """
    if data_gb < 0:
        raise ValueError(f"data_gb must be >= 0, got {data_gb}")
    wanted = math.ceil(data_gb / profile.gb_per_reducer)
    return max(1, min(wanted, profile.max_reducers))


def num_map_tasks(data_gb: float, profile: EngineProfile) -> int:
    """One map (or probe) task per input split."""
    if data_gb < 0:
        raise ValueError(f"data_gb must be >= 0, got {data_gb}")
    return max(1, math.ceil(data_gb / profile.split_gb))


def smj_execution(
    small_gb: float,
    large_gb: float,
    config: ResourceConfiguration,
    profile: EngineProfile,
    num_reducers: Optional[int] = None,
) -> JoinExecution:
    """Simulate a shuffle sort-merge join.

    ``num_reducers=None`` uses the engine's automatic reducer sizing.
    """
    _validate_inputs(small_gb, large_gb)
    data_gb = small_gb + large_gb
    nc = config.num_containers
    cs = config.container_gb
    if num_reducers is None:
        num_reducers = default_num_reducers(data_gb, profile)
    elif num_reducers < 1:
        raise ValueError(f"num_reducers must be >= 1, got {num_reducers}")

    map_tasks = num_map_tasks(data_gb, profile)
    map_time = (
        data_gb * profile.map_cost_s_per_gb / nc
        + map_tasks * profile.task_overhead_s / nc
    )

    # Reduce-side parallelism cannot exceed the reducer count.
    reduce_parallelism = min(num_reducers, nc)
    per_reducer_gb = data_gb / num_reducers
    sort_budget_gb = profile.sort_memory_fraction * cs
    if per_reducer_gb > sort_budget_gb > 0:
        spill_penalty = 1.0 + profile.sort_spill_coeff * math.log2(
            per_reducer_gb / sort_budget_gb
        )
    else:
        spill_penalty = 1.0
    reduce_time = (
        data_gb * profile.reduce_cost_s_per_gb / reduce_parallelism
    ) * spill_penalty + num_reducers * profile.task_overhead_s / nc

    time_s = profile.smj_fixed_s + map_time + reduce_time
    return JoinExecution(
        algorithm=JoinAlgorithm.SORT_MERGE,
        feasible=True,
        time_s=time_s,
        num_tasks=map_tasks + num_reducers,
        breakdown={
            "fixed": profile.smj_fixed_s,
            "map": map_time,
            "reduce": reduce_time,
            "spill_penalty": spill_penalty,
        },
    )


def _vector_pow(base: float, exponent: float) -> float:
    """Scalar pow routed through numpy's *array* kernel.

    numpy's vectorized pow loop can differ from libm's ``pow`` by one
    ulp, so a scalar simulator using ``**`` would disagree with the
    batched grid (:func:`bhj_time_grid`) on rare inputs.  Both paths go
    through the same kernel instead; the 1-element array keeps this
    exact, not just close.
    """
    return float(np.power(np.asarray([base]), exponent)[0])


def bhj_feasible(
    small_gb: float,
    config: ResourceConfiguration,
    profile: EngineProfile,
) -> bool:
    """True when the broadcast table fits the per-container hash budget.

    The budget is ``hash_memory_fraction * container_gb``; exceeding it is
    the OOM wall the paper observes ("below 5 GB containers, BHJ is not an
    option as it runs out of memory").
    """
    if small_gb < 0:
        raise ValueError(f"small_gb must be >= 0, got {small_gb}")
    budget = profile.hash_memory_fraction * config.container_gb
    return small_gb <= budget


def bhj_execution(
    small_gb: float,
    large_gb: float,
    config: ResourceConfiguration,
    profile: EngineProfile,
) -> JoinExecution:
    """Simulate a broadcast hash join (map join)."""
    _validate_inputs(small_gb, large_gb)
    nc = config.num_containers
    cs = config.container_gb
    probe_tasks = num_map_tasks(large_gb, profile)

    if not bhj_feasible(small_gb, config, profile):
        return JoinExecution(
            algorithm=JoinAlgorithm.BROADCAST_HASH,
            feasible=False,
            time_s=INFEASIBLE_TIME_S,
            num_tasks=probe_tasks,
            breakdown={"oom": INFEASIBLE_TIME_S},
        )

    # Every container downloads a full copy of the small table.
    broadcast_time = small_gb * nc / profile.broadcast_agg_gb_s

    # Hash build: superlinear in table size, worse under memory pressure.
    pressure = small_gb / (profile.hash_memory_fraction * cs)
    pressure_penalty = 1.0 + profile.pressure_coeff * _vector_pow(
        pressure, profile.pressure_exponent
    )
    build_time = (
        profile.build_cost_s
        * (small_gb**profile.build_exponent)
        * pressure_penalty
    )

    # Probe the large table in parallel; extra memory buys buffer space.
    probe_cost = profile.probe_cost_s_per_gb * (
        1.0 + profile.probe_memory_boost / cs
    )
    probe_time = (
        large_gb * probe_cost / nc
        + probe_tasks * profile.task_overhead_s / nc
    )

    time_s = profile.bhj_fixed_s + broadcast_time + build_time + probe_time
    return JoinExecution(
        algorithm=JoinAlgorithm.BROADCAST_HASH,
        feasible=True,
        time_s=time_s,
        num_tasks=probe_tasks,
        breakdown={
            "fixed": profile.bhj_fixed_s,
            "broadcast": broadcast_time,
            "build": build_time,
            "probe": probe_time,
            "pressure_penalty": pressure_penalty,
        },
    )


def smj_time_grid(
    small_gb: float,
    large_gb: float,
    counts: np.ndarray,
    sizes: np.ndarray,
    profile: EngineProfile,
    num_reducers: Optional[int] = None,
) -> np.ndarray:
    """Vectorized :func:`smj_execution` times over a configuration grid.

    ``counts[i] x sizes[i]`` is one resource configuration; the returned
    array holds the same wall-clock times the scalar model computes, one
    batched evaluation replacing ``len(counts)`` scalar calls. Every
    arithmetic step mirrors the scalar expression exactly so the two
    paths agree bit for bit.
    """
    _validate_inputs(small_gb, large_gb)
    data_gb = small_gb + large_gb
    nc = np.asarray(counts, dtype=float)
    cs = np.asarray(sizes, dtype=float)
    if num_reducers is None:
        num_reducers = default_num_reducers(data_gb, profile)
    elif num_reducers < 1:
        raise ValueError(f"num_reducers must be >= 1, got {num_reducers}")

    map_tasks = num_map_tasks(data_gb, profile)
    map_time = (
        data_gb * profile.map_cost_s_per_gb / nc
        + map_tasks * profile.task_overhead_s / nc
    )

    reduce_parallelism = np.minimum(float(num_reducers), nc)
    per_reducer_gb = data_gb / num_reducers
    sort_budget_gb = profile.sort_memory_fraction * cs
    spills = (per_reducer_gb > sort_budget_gb) & (sort_budget_gb > 0)
    # The clip only affects masked-out entries, keeping the log argument
    # bit-identical to the scalar path wherever the penalty applies.
    ratio = per_reducer_gb / np.maximum(sort_budget_gb, 1e-300)
    spill_penalty = np.where(
        spills,
        1.0 + profile.sort_spill_coeff * np.log2(np.maximum(ratio, 1.0)),
        1.0,
    )
    reduce_time = (
        data_gb * profile.reduce_cost_s_per_gb / reduce_parallelism
    ) * spill_penalty + num_reducers * profile.task_overhead_s / nc

    return profile.smj_fixed_s + map_time + reduce_time


def bhj_time_grid(
    small_gb: float,
    large_gb: float,
    counts: np.ndarray,
    sizes: np.ndarray,
    profile: EngineProfile,
) -> np.ndarray:
    """Vectorized :func:`bhj_execution` times over a configuration grid.

    Infeasible configurations (broadcast table past the hash budget)
    report ``inf``, as the scalar model does.
    """
    _validate_inputs(small_gb, large_gb)
    nc = np.asarray(counts, dtype=float)
    cs = np.asarray(sizes, dtype=float)
    probe_tasks = num_map_tasks(large_gb, profile)

    budget = profile.hash_memory_fraction * cs
    feasible = small_gb <= budget

    broadcast_time = small_gb * nc / profile.broadcast_agg_gb_s

    pressure = small_gb / budget
    pressure_penalty = 1.0 + profile.pressure_coeff * (
        pressure**profile.pressure_exponent
    )
    build_time = (
        profile.build_cost_s
        * (small_gb**profile.build_exponent)
        * pressure_penalty
    )

    probe_cost = profile.probe_cost_s_per_gb * (
        1.0 + profile.probe_memory_boost / cs
    )
    probe_time = (
        large_gb * probe_cost / nc
        + probe_tasks * profile.task_overhead_s / nc
    )

    times = profile.bhj_fixed_s + broadcast_time + build_time + probe_time
    return np.where(feasible, times, INFEASIBLE_TIME_S)


def join_time_grid(
    algorithm: JoinAlgorithm,
    small_gb: float,
    large_gb: float,
    counts: np.ndarray,
    sizes: np.ndarray,
    profile: EngineProfile,
    num_reducers: Optional[int] = None,
) -> np.ndarray:
    """Vectorized execution times for one join implementation."""
    if algorithm is JoinAlgorithm.SORT_MERGE:
        return smj_time_grid(
            small_gb, large_gb, counts, sizes, profile, num_reducers
        )
    if algorithm is JoinAlgorithm.BROADCAST_HASH:
        return bhj_time_grid(small_gb, large_gb, counts, sizes, profile)
    raise ValueError(f"unknown join algorithm: {algorithm!r}")


def join_execution(
    algorithm: JoinAlgorithm,
    small_gb: float,
    large_gb: float,
    config: ResourceConfiguration,
    profile: EngineProfile,
    num_reducers: Optional[int] = None,
) -> JoinExecution:
    """Simulate a join with the given implementation."""
    if algorithm is JoinAlgorithm.SORT_MERGE:
        return smj_execution(
            small_gb, large_gb, config, profile, num_reducers
        )
    if algorithm is JoinAlgorithm.BROADCAST_HASH:
        return bhj_execution(small_gb, large_gb, config, profile)
    raise ValueError(f"unknown join algorithm: {algorithm!r}")


def best_join(
    small_gb: float,
    large_gb: float,
    config: ResourceConfiguration,
    profile: EngineProfile,
    num_reducers: Optional[int] = None,
) -> JoinExecution:
    """The faster of the two implementations under the given resources.

    This is the "query & resource aware" oracle choice; the rule-based and
    cost-based RAQO components approximate it.
    """
    smj = smj_execution(small_gb, large_gb, config, profile, num_reducers)
    bhj = bhj_execution(small_gb, large_gb, config, profile)
    return bhj if bhj.time_s < smj.time_s else smj
