"""Engine profiles: the calibrated constants of the execution simulator.

Each :class:`EngineProfile` captures one engine's cost structure for the
two join implementations the paper studies (shuffle sort-merge join and
broadcast hash join). ``HIVE_PROFILE`` is numerically calibrated so that the
simulator reproduces the paper's Sec III anchor observations on Hive
2.0.1/Tez (switch locations, OOM walls, relative magnitudes -- see DESIGN.md
"Calibration anchors" and EXPERIMENTS.md); ``SPARK_PROFILE`` models
SparkSQL 1.6.1, whose switch points sit in the hundreds-of-MB range
(paper Fig 9b) because of the driver-collect broadcast path and smaller
executor memory fractions.

The model shapes (see :mod:`repro.engine.joins`):

- SMJ time = fixed + D*(map+reduce costs)/parallelism * sort-spill penalty
  + per-task scheduling overheads; insensitive to container size except
  when sort buffers spill.
- BHJ time = fixed + broadcast (grows with #containers) + hash build
  (superlinear in the broadcast table size, amplified by a memory-pressure
  penalty as the table approaches the container's hash budget) + parallel
  probe (mildly improved by extra container memory).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class EngineProfile:
    """Cost-structure constants for one engine.

    Per-GB costs are seconds of single-container work per GB of input;
    the simulator divides by the effective parallelism.
    """

    name: str

    # --- SMJ (shuffle sort-merge join) ---
    #: Fixed SMJ overhead: stage setup, container launch, final commit.
    smj_fixed_s: float
    #: Map-side cost per GB (scan + partition + shuffle write).
    map_cost_s_per_gb: float
    #: Reduce-side cost per GB (fetch + sort + merge + write).
    reduce_cost_s_per_gb: float
    #: Fraction of a container usable as sort buffer.
    sort_memory_fraction: float
    #: Strength of the extra-pass penalty when a reduce task's data
    #: exceeds its sort buffer (per doubling).
    sort_spill_coeff: float

    # --- BHJ (broadcast hash join) ---
    #: Fixed BHJ overhead.
    bhj_fixed_s: float
    #: Aggregate cluster bandwidth for broadcasting the small table (GB/s);
    #: every container downloads a full copy, so broadcast time grows with
    #: the number of containers.
    broadcast_agg_gb_s: float
    #: Hash build cost coefficient (seconds per GB**build_exponent); the
    #: superlinearity models GC/locality degradation of large hash tables.
    build_cost_s: float
    build_exponent: float
    #: Memory-pressure penalty on the build: 1 + coeff * u**exponent where
    #: u = small_gb / (hash_memory_fraction * container_gb).
    pressure_coeff: float
    pressure_exponent: float
    #: The broadcast table must satisfy u <= 1 or the join fails (OOM).
    hash_memory_fraction: float
    #: Probe cost per GB of the large table.
    probe_cost_s_per_gb: float
    #: Probe speedup from extra container memory: cost scales by
    #: (1 + probe_memory_boost / container_gb).
    probe_memory_boost: float

    # --- task/scheduling granularity ---
    #: Input split size: one map/probe task per split.
    split_gb: float
    #: Hive-style auto-reducer sizing: GB of shuffle data per reducer.
    gb_per_reducer: float
    #: Upper bound on auto-chosen reducers (Hive's default is 1009).
    max_reducers: int
    #: Per-task scheduling/launch overhead (seconds), amortised over
    #: the containers running the stage.
    task_overhead_s: float

    #: Default broadcast-join threshold of the engine's stock optimizer
    #: (both Hive and Spark default to 10 MB).
    default_broadcast_threshold_gb: float

    def __post_init__(self) -> None:
        positive = {
            "map_cost_s_per_gb": self.map_cost_s_per_gb,
            "reduce_cost_s_per_gb": self.reduce_cost_s_per_gb,
            "sort_memory_fraction": self.sort_memory_fraction,
            "broadcast_agg_gb_s": self.broadcast_agg_gb_s,
            "build_cost_s": self.build_cost_s,
            "build_exponent": self.build_exponent,
            "hash_memory_fraction": self.hash_memory_fraction,
            "probe_cost_s_per_gb": self.probe_cost_s_per_gb,
            "split_gb": self.split_gb,
            "gb_per_reducer": self.gb_per_reducer,
        }
        for field_name, value in positive.items():
            if value <= 0:
                raise ValueError(
                    f"profile {self.name!r}: {field_name} must be > 0, "
                    f"got {value}"
                )
        non_negative = {
            "smj_fixed_s": self.smj_fixed_s,
            "bhj_fixed_s": self.bhj_fixed_s,
            "sort_spill_coeff": self.sort_spill_coeff,
            "pressure_coeff": self.pressure_coeff,
            "probe_memory_boost": self.probe_memory_boost,
            "task_overhead_s": self.task_overhead_s,
        }
        for field_name, value in non_negative.items():
            if value < 0:
                raise ValueError(
                    f"profile {self.name!r}: {field_name} must be >= 0, "
                    f"got {value}"
                )
        if self.max_reducers < 1:
            raise ValueError(
                f"profile {self.name!r}: max_reducers must be >= 1"
            )

    def with_overrides(self, **kwargs: float) -> "EngineProfile":
        """A copy of the profile with some constants replaced."""
        return replace(self, **kwargs)


#: Calibrated Hive-on-Tez profile. Anchors reproduced (DESIGN.md):
#: BHJ/SMJ switch at ~7 GB containers for a 5.1 GB broadcast side (OOM wall
#: below 5 GB); switch at ~17-20 containers for a 3.4 GB side in 3 GB
#: containers with SMJ ~2x faster by 40 containers; data switch point
#: ~6 GB at 9 GB containers vs the 3.45 GB OOM wall at 3 GB containers.
HIVE_PROFILE = EngineProfile(
    name="hive",
    smj_fixed_s=115.0,
    map_cost_s_per_gb=55.0,
    reduce_cost_s_per_gb=50.5,
    sort_memory_fraction=0.45,
    sort_spill_coeff=0.30,
    bhj_fixed_s=14.0,
    broadcast_agg_gb_s=0.70,
    build_cost_s=2.73,
    build_exponent=2.51,
    pressure_coeff=4.18,
    pressure_exponent=2.12,
    hash_memory_fraction=1.15,
    probe_cost_s_per_gb=51.4,
    probe_memory_boost=0.28,
    split_gb=0.25,
    gb_per_reducer=0.25,
    max_reducers=1009,
    task_overhead_s=0.5,
    default_broadcast_threshold_gb=0.010,
)

#: SparkSQL 1.6.1 profile: a faster in-memory pipeline, but broadcasts
#: pass through the driver (steep superlinear build) and executors give
#: the hash table a much smaller memory fraction, so BHJ pays off only
#: for small tables -- switch points in the hundreds of MB (paper Fig 9b).
SPARK_PROFILE = EngineProfile(
    name="spark",
    smj_fixed_s=18.0,
    map_cost_s_per_gb=10.0,
    reduce_cost_s_per_gb=8.0,
    sort_memory_fraction=0.30,
    sort_spill_coeff=0.25,
    bhj_fixed_s=4.0,
    broadcast_agg_gb_s=0.35,
    build_cost_s=55.0,
    build_exponent=1.55,
    pressure_coeff=6.0,
    pressure_exponent=2.4,
    hash_memory_fraction=0.35,
    probe_cost_s_per_gb=6.0,
    probe_memory_boost=0.15,
    split_gb=0.128,
    gb_per_reducer=0.128,
    max_reducers=2000,
    task_overhead_s=0.08,
    default_broadcast_threshold_gb=0.010,
)
