"""Adaptive runtime: stage-wise execution with mid-query re-planning.

Paper Sec IV/VIII: "If the cluster conditions change until or during the
execution of the query, the dataflow/runtime can further adjust the
query/resource plan by consulting the optimizer" and "from the moment a
query gets optimized until the moment its execution begins, the condition
of the cluster might change ... we might need to adapt/re-optimize the
query."

:class:`AdaptiveRuntime` executes a joint plan one join stage at a time.
Before each stage it takes a fresh :class:`~repro.cluster.rm_api.
ClusterSnapshot`; if the stage's planned resources no longer fit the
offered envelope (or the envelope grew enough to be worth exploiting), it
re-plans that operator's resources through the RAQO coster before
launching the stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.cluster.pricing import PriceModel
from repro.cluster.rm_api import RmClient
from repro.core.raqo import RaqoCoster
from repro.engine.executor import ExecutionError
from repro.engine.joins import join_execution
from repro.engine.profiles import EngineProfile
from repro.planner.cost_interface import PlanningContext
from repro.planner.plan import JoinNode, PlanNode


@dataclass(frozen=True)
class StageRecord:
    """One executed join stage."""

    tables: frozenset
    planned: ResourceConfiguration
    executed: ResourceConfiguration
    replanned: bool
    time_s: float
    gb_seconds: float


@dataclass(frozen=True)
class AdaptiveRunReport:
    """The outcome of one adaptive execution."""

    stages: Tuple[StageRecord, ...]
    time_s: float
    gb_seconds: float
    dollars: float
    replanned_stages: int
    feasible: bool


class AdaptiveRuntime:
    """Executes joint plans stage by stage against a live RM."""

    def __init__(
        self,
        estimator: StatisticsEstimator,
        profile: EngineProfile,
        coster: RaqoCoster,
        rm_client: RmClient,
        price_model: Optional[PriceModel] = None,
        #: The envelope the plan was optimized under; defaults to the
        #: first snapshot the runtime takes.
        planned_under: Optional[ClusterConditions] = None,
        #: Re-plan when the live envelope's maxima drift from the
        #: planning-time envelope by more than this relative slack.
        improvement_slack: float = 0.25,
    ) -> None:
        if improvement_slack < 0:
            raise ValueError(
                f"improvement_slack must be >= 0, got {improvement_slack}"
            )
        self.estimator = estimator
        self.profile = profile
        self.coster = coster
        self.rm_client = rm_client
        self.price_model = price_model or PriceModel()
        self.planned_under = planned_under
        self.improvement_slack = improvement_slack

    def _should_replan(
        self,
        planned: ResourceConfiguration,
        conditions: ClusterConditions,
    ) -> bool:
        """Re-plan when the stage's configuration no longer fits, or
        when the envelope drifted materially since planning time."""
        if not conditions.contains(planned):
            return True
        baseline = self.planned_under
        if baseline is None:
            return False
        slack = self.improvement_slack
        count_drift = abs(
            conditions.max_containers - baseline.max_containers
        ) / baseline.max_containers
        size_drift = abs(
            conditions.max_container_gb - baseline.max_container_gb
        ) / baseline.max_container_gb
        return count_drift > slack or size_drift > slack

    def run(
        self,
        plan: PlanNode,
        now_s: float = 0.0,
        on_stage: Optional[Callable[[StageRecord], None]] = None,
    ) -> AdaptiveRunReport:
        """Execute ``plan``, adapting each stage to fresh conditions.

        ``on_stage`` (if given) is invoked after every stage -- the hook
        a monitoring UI or the paper's "explain" discussion would use.
        """
        stages: List[StageRecord] = []
        clock = now_s
        total_gb_seconds = 0.0
        feasible = True

        if self.planned_under is None:
            self.planned_under = self.rm_client.snapshot(
                now_s=clock
            ).conditions

        for join in plan.joins_postorder():
            planned = join.resources
            if planned is None:
                raise ExecutionError(
                    "adaptive runtime needs a joint plan; operator over "
                    f"{sorted(join.tables)} has no resources"
                )
            snapshot = self.rm_client.snapshot(now_s=clock)
            executed = planned
            replanned = False
            if self._should_replan(planned, snapshot.conditions):
                executed = self._replan_stage(
                    join, snapshot.conditions
                )
                replanned = True
            small_gb, large_gb = self.estimator.join_io_gb(
                join.left.tables, join.right.tables
            )
            execution = join_execution(
                join.algorithm,
                small_gb,
                large_gb,
                executed,
                self.profile,
            )
            gb_seconds = (
                executed.gb_seconds(execution.time_s)
                if execution.feasible
                else math.inf
            )
            record = StageRecord(
                tables=frozenset(join.tables),
                planned=planned,
                executed=executed,
                replanned=replanned,
                time_s=execution.time_s,
                gb_seconds=gb_seconds,
            )
            stages.append(record)
            if on_stage is not None:
                on_stage(record)
            feasible = feasible and execution.feasible
            clock += execution.time_s if execution.feasible else 0.0
            total_gb_seconds += gb_seconds

        total_time = sum(stage.time_s for stage in stages)
        return AdaptiveRunReport(
            stages=tuple(stages),
            time_s=total_time,
            gb_seconds=total_gb_seconds,
            dollars=(
                self.price_model.cost_of_gb_seconds(total_gb_seconds)
                if feasible
                else math.inf
            ),
            replanned_stages=sum(1 for s in stages if s.replanned),
            feasible=feasible,
        )

    def _replan_stage(
        self, join: JoinNode, conditions: ClusterConditions
    ) -> ResourceConfiguration:
        """Consult the optimizer for one stage under new conditions."""
        context = PlanningContext(
            estimator=self.estimator, cluster=conditions
        )
        cost, resources = self.coster.join_cost(
            join.left.tables,
            join.right.tables,
            join.algorithm,
            context,
        )
        if resources is not None and cost.is_finite:
            return resources
        # The operator is infeasible under the new envelope (e.g. a BHJ
        # whose broadcast no longer fits): fall back to the clamped
        # original and let the engine surface the failure.
        return conditions.clamp(join.resources)
