"""Adaptive runtime: stage-wise execution with mid-query re-planning.

Paper Sec IV/VIII: "If the cluster conditions change until or during the
execution of the query, the dataflow/runtime can further adjust the
query/resource plan by consulting the optimizer" and "from the moment a
query gets optimized until the moment its execution begins, the condition
of the cluster might change ... we might need to adapt/re-optimize the
query."

:class:`AdaptiveRuntime` executes a joint plan one join stage at a time.
Before each stage it takes a fresh :class:`~repro.cluster.rm_api.
ClusterSnapshot`; if the stage's planned resources no longer fit the
offered envelope (or the envelope grew enough to be worth exploiting), it
re-plans that operator's resources through the RAQO coster before
launching the stage.

With fault injection enabled (``faults=``/``recovery=``), each stage
additionally runs through the deterministic attempt loop of
:mod:`repro.faults.injection`. The runtime is where degradation gets the
full paper treatment: a BHJ stage that OOMs falls back to SMJ and is
*re-costed through the RAQO coster* under the live cluster conditions,
so the fallback runs on resources chosen for the sort-merge plan rather
than on the doomed broadcast configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceConfiguration
from repro.cluster.pricing import PriceModel
from repro.cluster.rm_api import RmClient
from repro.core.raqo import RaqoCoster
from repro.engine.executor import ExecutionError, oom_pressure
from repro.engine.joins import (
    JoinAlgorithm,
    JoinExecution,
    join_execution,
)
from repro.engine.profiles import EngineProfile
from repro.faults.injection import run_stage_with_faults
from repro.faults.model import (
    AttemptRecord,
    FaultPlan,
    stage_key_for_join,
)
from repro.faults.recovery import DEFAULT_RECOVERY, RecoveryPolicy
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, SpanHandle, Tracer
from repro.planner.cost_interface import PlanningContext
from repro.planner.plan import JoinNode, PlanNode


@dataclass(frozen=True)
class StageRecord:
    """One executed join stage."""

    tables: frozenset
    planned: ResourceConfiguration
    executed: ResourceConfiguration
    replanned: bool
    time_s: float
    gb_seconds: float
    #: Fault-era bookkeeping; quiet defaults keep fault-free runs
    #: identical to the historical records.
    attempts: Tuple[AttemptRecord, ...] = ()
    retries: int = 0
    degraded: bool = False
    faults_injected: int = 0


@dataclass(frozen=True)
class AdaptiveRunReport:
    """The outcome of one adaptive execution."""

    stages: Tuple[StageRecord, ...]
    time_s: float
    gb_seconds: float
    dollars: float
    replanned_stages: int
    feasible: bool
    retries: int = 0
    faults_injected: int = 0
    degraded_stages: int = 0


class AdaptiveRuntime:
    """Executes joint plans stage by stage against a live RM."""

    def __init__(
        self,
        estimator: StatisticsEstimator,
        profile: EngineProfile,
        coster: RaqoCoster,
        rm_client: RmClient,
        price_model: Optional[PriceModel] = None,
        #: The envelope the plan was optimized under; defaults to the
        #: first snapshot the runtime takes.
        planned_under: Optional[ClusterConditions] = None,
        #: Re-plan when the live envelope's maxima drift from the
        #: planning-time envelope by more than this relative slack.
        improvement_slack: float = 0.25,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if improvement_slack < 0:
            raise ValueError(
                f"improvement_slack must be >= 0, got {improvement_slack}"
            )
        self.tracer = tracer
        self.estimator = estimator
        self.profile = profile
        self.coster = coster
        self.rm_client = rm_client
        self.price_model = price_model or PriceModel()
        self.planned_under = planned_under
        self.improvement_slack = improvement_slack
        if faults is not None and recovery is None:
            recovery = DEFAULT_RECOVERY
        self.faults = faults
        self.recovery = recovery

    def _should_replan(
        self,
        planned: ResourceConfiguration,
        conditions: ClusterConditions,
    ) -> bool:
        """Re-plan when the stage's configuration no longer fits, or
        when the envelope drifted materially since planning time."""
        if not conditions.contains(planned):
            return True
        baseline = self.planned_under
        if baseline is None:
            return False
        slack = self.improvement_slack
        count_drift = abs(
            conditions.max_containers - baseline.max_containers
        ) / baseline.max_containers
        size_drift = abs(
            conditions.max_container_gb - baseline.max_container_gb
        ) / baseline.max_container_gb
        return count_drift > slack or size_drift > slack

    def run(
        self,
        plan: PlanNode,
        now_s: float = 0.0,
        on_stage: Optional[Callable[[StageRecord], None]] = None,
    ) -> AdaptiveRunReport:
        """Execute ``plan``, adapting each stage to fresh conditions.

        ``on_stage`` (if given) is invoked after every stage -- the hook
        a monitoring UI or the paper's "explain" discussion would use.
        """
        stages: List[StageRecord] = []
        clock = now_s
        total_gb_seconds = 0.0
        feasible = True

        if self.planned_under is None:
            self.planned_under = self.rm_client.snapshot(
                now_s=clock
            ).conditions

        with self.tracer.span(
            "adaptive-run", kind="engine"
        ) as run_span:
            for stage_id, join in enumerate(plan.joins_postorder()):
                planned = join.resources
                stage_span = self.tracer.span(
                    "stage",
                    kind="engine",
                    parent=run_span,
                    key=str(stage_id),
                )
                with stage_span:
                    if planned is None:
                        raise ExecutionError(
                            "adaptive runtime needs a joint plan; "
                            "operator has no resources",
                            stage_id=stage_id,
                            tables=frozenset(join.tables),
                            span_id=stage_span.span_id or None,
                            trace_id=self.tracer.trace_id or None,
                        )
                    snapshot = self.rm_client.snapshot(now_s=clock)
                    executed = planned
                    replanned = False
                    if self._should_replan(planned, snapshot.conditions):
                        executed = self._replan_stage(
                            join, snapshot.conditions
                        )
                        replanned = True
                        stage_span.event(
                            "replan",
                            sim_time_s=clock,
                            attributes={
                                "num_containers": (
                                    executed.num_containers
                                ),
                                "container_gb": executed.container_gb,
                            },
                        )
                    record = self._run_stage(
                        join,
                        planned,
                        executed,
                        snapshot.conditions,
                        replanned,
                        stage_span=stage_span,
                        sim_start_s=clock,
                    )
                    if stage_span.active:
                        self._annotate_stage_span(
                            stage_span, stage_id, record, clock
                        )
                stages.append(record)
                if on_stage is not None:
                    on_stage(record)
                stage_feasible = math.isfinite(record.time_s)
                feasible = feasible and stage_feasible
                clock += record.time_s if stage_feasible else 0.0
                total_gb_seconds += record.gb_seconds
            if run_span.active:
                run_span.set_attributes(
                    {
                        "stages": len(stages),
                        "feasible": feasible,
                        "replanned_stages": sum(
                            1 for s in stages if s.replanned
                        ),
                    }
                )
                if feasible:
                    run_span.set_sim_window(now_s, clock)

        total_time = sum(stage.time_s for stage in stages)
        return AdaptiveRunReport(
            stages=tuple(stages),
            time_s=total_time,
            gb_seconds=total_gb_seconds,
            dollars=(
                self.price_model.cost_of_gb_seconds(total_gb_seconds)
                if feasible
                else math.inf
            ),
            replanned_stages=sum(1 for s in stages if s.replanned),
            feasible=feasible,
            retries=sum(s.retries for s in stages),
            faults_injected=sum(s.faults_injected for s in stages),
            degraded_stages=sum(1 for s in stages if s.degraded),
        )

    def _annotate_stage_span(
        self,
        stage_span: SpanHandle,
        stage_id: int,
        record: StageRecord,
        sim_start_s: float,
    ) -> None:
        """Attach one stage's outcome to its span (traced runs only)."""
        stage_span.set_attributes(
            {
                "stage_id": stage_id,
                "tables": ",".join(sorted(record.tables)),
                "num_containers": record.executed.num_containers,
                "container_gb": record.executed.container_gb,
                "total_memory_gb": record.executed.total_memory_gb,
                "replanned": record.replanned,
                "degraded": record.degraded,
                "retries": record.retries,
                "faults_injected": record.faults_injected,
            }
        )
        if math.isfinite(record.time_s) and math.isfinite(sim_start_s):
            stage_span.set_sim_window(
                sim_start_s, sim_start_s + record.time_s
            )
            stage_span.set_attribute("time_s", record.time_s)

    def _run_stage(
        self,
        join: JoinNode,
        planned: ResourceConfiguration,
        executed: ResourceConfiguration,
        conditions: ClusterConditions,
        replanned: bool,
        stage_span: SpanHandle = NULL_SPAN,
        sim_start_s: float = 0.0,
    ) -> StageRecord:
        """Run one stage, with or without the fault layer."""
        small_gb, large_gb = self.estimator.join_io_gb(
            join.left.tables, join.right.tables
        )
        if self.faults is None and self.recovery is None:
            execution = join_execution(
                join.algorithm,
                small_gb,
                large_gb,
                executed,
                self.profile,
            )
            gb_seconds = (
                executed.gb_seconds(execution.time_s)
                if execution.feasible
                else math.inf
            )
            return StageRecord(
                tables=frozenset(join.tables),
                planned=planned,
                executed=executed,
                replanned=replanned,
                time_s=execution.time_s,
                gb_seconds=gb_seconds,
            )

        def run_attempt(
            algorithm: JoinAlgorithm, config: ResourceConfiguration
        ) -> JoinExecution:
            return join_execution(
                algorithm, small_gb, large_gb, config, self.profile
            )

        def pressure(
            algorithm: JoinAlgorithm, config: ResourceConfiguration
        ) -> float:
            return oom_pressure(
                algorithm, small_gb, config, self.profile
            )

        def replan_on_degrade(
            algorithm: JoinAlgorithm,
        ) -> Optional[ResourceConfiguration]:
            # The paper's recovery story: consult the optimizer for the
            # fallback implementation under the live envelope.
            return self._recost_degraded(join, algorithm, conditions)

        outcome = run_stage_with_faults(
            stage_key=stage_key_for_join(
                join.left.tables, join.right.tables, join.algorithm
            ),
            algorithm=join.algorithm,
            resources=executed,
            run_attempt=run_attempt,
            oom_pressure=pressure,
            faults=self.faults,
            recovery=self.recovery,
            replan_on_degrade=replan_on_degrade,
            tracer=self.tracer,
            stage_span=stage_span,
            sim_start_s=sim_start_s,
        )
        return StageRecord(
            tables=frozenset(join.tables),
            planned=planned,
            executed=outcome.resources,
            replanned=replanned or outcome.degraded,
            time_s=outcome.elapsed_s,
            gb_seconds=outcome.gb_seconds,
            attempts=outcome.attempts,
            retries=outcome.retries,
            degraded=outcome.degraded,
            faults_injected=outcome.faults_injected,
        )

    def _recost_degraded(
        self,
        join: JoinNode,
        algorithm: JoinAlgorithm,
        conditions: ClusterConditions,
    ) -> Optional[ResourceConfiguration]:
        """Resources for the degraded implementation, via the coster."""
        context = PlanningContext(
            estimator=self.estimator,
            cluster=conditions,
            tracer=self.tracer,
        )
        cost, resources = self.coster.join_cost(
            join.left.tables,
            join.right.tables,
            algorithm,
            context,
        )
        if resources is not None and cost.is_finite:
            return resources
        return None

    def _replan_stage(
        self, join: JoinNode, conditions: ClusterConditions
    ) -> ResourceConfiguration:
        """Consult the optimizer for one stage under new conditions."""
        context = PlanningContext(
            estimator=self.estimator,
            cluster=conditions,
            tracer=self.tracer,
        )
        cost, resources = self.coster.join_cost(
            join.left.tables,
            join.right.tables,
            join.algorithm,
            context,
        )
        if resources is not None and cost.is_finite:
            return resources
        # The operator is infeasible under the new envelope (e.g. a BHJ
        # whose broadcast no longer fits): fall back to the clamped
        # original and let the engine surface the failure.
        return conditions.clamp(join.resources)
