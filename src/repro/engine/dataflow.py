"""Dataflow DAG view of a physical plan (Tez/Spark style vertices).

Big data engines execute SQL plans as DAGs of stages ("a DAG consists of
vertices (or stages) that correspond to dataflow operators ... each vertex
consists of a set of tasks that can be executed in parallel", paper
footnote 1). This module lowers a physical join plan into that stage DAG:
an SMJ becomes a map vertex feeding a reduce vertex across a shuffle
boundary; a BHJ becomes a broadcast vertex feeding a probe (map-side join)
vertex. The DAG is what a runtime would hand to the resource manager, and
what the executor accounts resources against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import networkx as nx

from repro.catalog.statistics import StatisticsEstimator
from repro.engine.joins import (
    JoinAlgorithm,
    default_num_reducers,
    num_map_tasks,
)
from repro.engine.profiles import EngineProfile
from repro.planner.plan import PlanNode


class StageKind(enum.Enum):
    """The vertex types our engines emit."""

    MAP = "map"
    REDUCE = "reduce"
    BROADCAST = "broadcast"
    PROBE = "probe"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Stage:
    """One DAG vertex: a parallel set of identical tasks."""

    name: str
    kind: StageKind
    num_tasks: int
    input_gb: float
    output_gb: float

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError(
                f"stage {self.name!r} needs >= 1 task, got {self.num_tasks}"
            )
        if self.input_gb < 0 or self.output_gb < 0:
            raise ValueError(
                f"stage {self.name!r} has negative data volumes"
            )


class DataflowDAG:
    """A DAG of stages with shuffle/broadcast edges."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._stages: Dict[str, Stage] = {}

    def add_stage(self, stage: Stage) -> None:
        """Register a stage vertex."""
        if stage.name in self._stages:
            raise ValueError(f"duplicate stage {stage.name!r}")
        self._stages[stage.name] = stage
        self._graph.add_node(stage.name)

    def add_edge(self, upstream: str, downstream: str) -> None:
        """Add a data dependency between two stages."""
        for name in (upstream, downstream):
            if name not in self._stages:
                raise ValueError(f"unknown stage {name!r}")
        self._graph.add_edge(upstream, downstream)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(upstream, downstream)
            raise ValueError(
                f"edge {upstream!r} -> {downstream!r} creates a cycle"
            )

    def stage(self, name: str) -> Stage:
        """Lookup a stage by name."""
        return self._stages[name]

    def stages(self) -> List[Stage]:
        """All stages in topological order."""
        return [
            self._stages[name] for name in nx.topological_sort(self._graph)
        ]

    def successors(self, name: str) -> List[str]:
        """Downstream stage names."""
        return sorted(self._graph.successors(name))

    @property
    def total_tasks(self) -> int:
        """Total task count across all vertices."""
        return sum(stage.num_tasks for stage in self._stages.values())

    def __len__(self) -> int:
        return len(self._stages)

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages())


def plan_to_dag(
    plan: PlanNode,
    estimator: StatisticsEstimator,
    profile: EngineProfile,
    num_reducers: Optional[int] = None,
) -> DataflowDAG:
    """Lower a physical plan into its stage DAG.

    Join operators sit at shuffle boundaries (Sec VI-A assumption), so
    each join contributes its own vertices; child joins feed the parent's
    first vertex.
    """
    dag = DataflowDAG()
    final_stage_of: Dict[FrozenSetKey, str] = {}

    for index, join in enumerate(plan.joins_postorder()):
        small_gb, large_gb = estimator.join_io_gb(
            join.left.tables, join.right.tables
        )
        output_gb = estimator.stats_for(join.tables).size_gb
        data_gb = small_gb + large_gb
        prefix = f"join{index}"

        if join.algorithm is JoinAlgorithm.SORT_MERGE:
            reducers = num_reducers or default_num_reducers(
                data_gb, profile
            )
            first = Stage(
                name=f"{prefix}.map",
                kind=StageKind.MAP,
                num_tasks=num_map_tasks(data_gb, profile),
                input_gb=data_gb,
                output_gb=data_gb,
            )
            last = Stage(
                name=f"{prefix}.reduce",
                kind=StageKind.REDUCE,
                num_tasks=reducers,
                input_gb=data_gb,
                output_gb=output_gb,
            )
        else:
            first = Stage(
                name=f"{prefix}.broadcast",
                kind=StageKind.BROADCAST,
                num_tasks=1,
                input_gb=small_gb,
                output_gb=small_gb,
            )
            last = Stage(
                name=f"{prefix}.probe",
                kind=StageKind.PROBE,
                num_tasks=num_map_tasks(large_gb, profile),
                input_gb=large_gb,
                output_gb=output_gb,
            )
        dag.add_stage(first)
        dag.add_stage(last)
        dag.add_edge(first.name, last.name)

        for child in (join.left, join.right):
            child_key = frozenset(child.tables)
            child_final = final_stage_of.get(child_key)
            if child_final is not None:
                dag.add_edge(child_final, first.name)
        final_stage_of[frozenset(join.tables)] = last.name

    return dag


FrozenSetKey = frozenset
