"""Profile runs: sweeping the data-resource grid to collect samples.

The paper's cost-based RAQO "requires profile runs in order to train the
cost model ... a one-time investment for each system" (Sec VI-A), and its
rule-based variant extracts switch points from the same kind of sweep
(Sec V-A). This module runs those sweeps against the engine simulator and
returns flat sample records both uses consume.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.cluster.containers import ResourceConfiguration
from repro.engine.joins import JoinAlgorithm, join_execution
from repro.engine.profiles import EngineProfile


@dataclass(frozen=True)
class ProfileSample:
    """One measured point in the data-resource space."""

    algorithm: JoinAlgorithm
    small_gb: float
    large_gb: float
    num_containers: int
    container_gb: float
    num_reducers: Optional[int]
    feasible: bool
    time_s: float

    @property
    def gb_seconds(self) -> float:
        """Resources consumed by the run (memory x time)."""
        if not self.feasible:
            return math.inf
        return self.num_containers * self.container_gb * self.time_s


def profile_grid(
    profile: EngineProfile,
    small_sizes_gb: Sequence[float],
    large_gb: float,
    container_counts: Sequence[int],
    container_sizes_gb: Sequence[float],
    reducer_settings: Sequence[Optional[int]] = (None,),
    algorithms: Iterable[JoinAlgorithm] = tuple(JoinAlgorithm),
) -> List[ProfileSample]:
    """Run every combination in the grid and record the outcomes.

    This mirrors the paper's profiling methodology: a single-join query
    with the smaller relation subsampled to different sizes ("we adjusted
    the smaller table orders size proportionally with the resources we
    had in hand"), swept over container counts and sizes.
    """
    samples = []
    for algorithm, ss, nc, cs, nr in itertools.product(
        algorithms,
        small_sizes_gb,
        container_counts,
        container_sizes_gb,
        reducer_settings,
    ):
        config = ResourceConfiguration(
            num_containers=nc, container_gb=cs
        )
        execution = join_execution(
            algorithm, ss, large_gb, config, profile, num_reducers=nr
        )
        samples.append(
            ProfileSample(
                algorithm=algorithm,
                small_gb=ss,
                large_gb=large_gb,
                num_containers=nc,
                container_gb=cs,
                num_reducers=nr,
                feasible=execution.feasible,
                time_s=execution.time_s,
            )
        )
    return samples


def feasible_samples(
    samples: Iterable[ProfileSample], algorithm: JoinAlgorithm
) -> List[ProfileSample]:
    """The feasible profile runs of one implementation."""
    return [
        sample
        for sample in samples
        if sample.algorithm is algorithm and sample.feasible
    ]


def default_training_grid(
    profile: EngineProfile, large_gb: float = 77.0
) -> List[ProfileSample]:
    """The standard sweep used to train the default cost models.

    Covers the region the paper's experiments exercise: broadcast sides
    from 256 MB to 8 GB, 5-50 containers, 1-10 GB each.
    """
    return profile_grid(
        profile,
        small_sizes_gb=(0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.5, 8.0),
        large_gb=large_gb,
        container_counts=(5, 10, 15, 20, 30, 40, 50),
        container_sizes_gb=(1.0, 2.0, 3.0, 5.0, 7.0, 9.0, 10.0),
    )
