"""Analytic dataflow execution engine simulator (Hive-like, Spark-like).

Substitutes for the paper's 10-node YARN cluster running Hive-on-Tez and
SparkSQL: physical join plans execute as stage DAGs on a simulated container
cluster, with per-stage times derived from calibrated throughput models of
shuffle sort-merge join (SMJ) and broadcast hash join (BHJ). The profiles in
:mod:`repro.engine.profiles` are calibrated against the paper's published
anchor observations (DESIGN.md, "Calibration anchors").
"""

from repro.engine.joins import (
    JoinAlgorithm,
    JoinExecution,
    bhj_execution,
    bhj_feasible,
    join_execution,
    smj_execution,
)
from repro.engine.profiles import EngineProfile, HIVE_PROFILE, SPARK_PROFILE

__all__ = [
    "EngineProfile",
    "HIVE_PROFILE",
    "JoinAlgorithm",
    "JoinExecution",
    "SPARK_PROFILE",
    "bhj_execution",
    "bhj_feasible",
    "join_execution",
    "smj_execution",
]

# The executor, dataflow, profiler, and adaptive runtime modules are
# imported explicitly by consumers (they sit above the planner layer in
# the import graph): repro.engine.executor, repro.engine.dataflow,
# repro.engine.profiler, repro.engine.runtime.
