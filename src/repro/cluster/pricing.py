"""Serverless pricing: users pay for container-hours consumed.

Sec III-C: "We consider the recent trend of serverless analytics, where the
users only pay for the total container hours consumed by their analytical
queries." Monetary cost is therefore proportional to memory x time
(GB-seconds) aggregated over all containers a query holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.containers import ResourceConfiguration, ResourceError
from repro.units import Dollars, GBSeconds, Seconds


@dataclass(frozen=True)
class PriceModel:
    """Linear serverless price: dollars per GB-hour of container time.

    The default rate is in the ballpark of public serverless analytics
    offerings; all the paper's comparisons are relative, so only
    proportionality matters.
    """

    dollars_per_gb_hour: float = 0.016

    def __post_init__(self) -> None:
        if self.dollars_per_gb_hour <= 0:
            raise ResourceError(
                "dollars_per_gb_hour must be > 0, got "
                f"{self.dollars_per_gb_hour}"
            )

    def cost_of_gb_seconds(self, gb_seconds: GBSeconds) -> Dollars:
        """Dollar cost of a given GB-seconds consumption."""
        if gb_seconds < 0:
            raise ResourceError(
                f"gb_seconds must be >= 0, got {gb_seconds}"
            )
        return Dollars(gb_seconds / 3600.0 * self.dollars_per_gb_hour)

    def cost(
        self, config: ResourceConfiguration, duration_s: Seconds
    ) -> Dollars:
        """Dollar cost of holding ``config`` for ``duration_s`` seconds."""
        return self.cost_of_gb_seconds(config.gb_seconds(duration_s))
