"""Cluster conditions: the currently available resource envelope.

The RAQO optimizer "takes as input the declarative query and the current
cluster condition (through the RM)" (Sec IV). :class:`ClusterConditions`
captures what the resource planner needs: per-dimension minimum, maximum and
discrete step (Sec VII uses "a cluster of 100 containers each having a
maximum size of 10GB; minimum allocation is 1 container of size 1GB and
resources could be increased in discrete intervals of 1 on either axis").
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.cluster.containers import (
    ResourceConfiguration,
    ResourceError,
    warn_positional_axes,
)


@dataclass(frozen=True)
class ResourceDimension:
    """One hill-climbable resource axis with bounds and a discrete step."""

    name: str
    minimum: float
    maximum: float
    step: float

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ResourceError(
                f"dimension {self.name!r} step must be > 0, got {self.step}"
            )
        if self.minimum > self.maximum:
            raise ResourceError(
                f"dimension {self.name!r} has min {self.minimum} > max "
                f"{self.maximum}"
            )

    @property
    def num_values(self) -> int:
        """How many discrete values the dimension can take."""
        return int(np.floor((self.maximum - self.minimum) / self.step)) + 1

    def values(self) -> List[float]:
        """All discrete values from minimum to maximum inclusive."""
        return [
            self.minimum + i * self.step for i in range(self.num_values)
        ]

    def clamp(self, value: float) -> float:
        """Clip ``value`` into the dimension's bounds."""
        return min(max(value, self.minimum), self.maximum)

    def contains(self, value: float) -> bool:
        """True when ``value`` lies within the bounds (inclusive)."""
        return self.minimum <= value <= self.maximum


@dataclass(frozen=True)
class ConfigurationGrid:
    """The full discrete configuration grid as parallel numpy arrays.

    Row ``i`` corresponds to the ``i``-th configuration yielded by
    :meth:`ClusterConditions.iter_configurations` -- the same enumeration
    order, so an argmin over batched costs breaks ties exactly like the
    scalar brute-force scan (first strictly-smaller cost wins).

    ``total_memory_gb`` is the per-configuration price basis: dollars for
    a duration are proportional to ``total_memory_gb * duration``.
    """

    counts: np.ndarray
    sizes: np.ndarray
    total_memory_gb: np.ndarray

    @property
    def num_configs(self) -> int:
        """Number of configurations (rows) in the grid."""
        return int(self.counts.shape[0])

    def config_at(self, index: int) -> ResourceConfiguration:
        """Materialise the configuration at one grid row."""
        return ResourceConfiguration(
            num_containers=int(round(float(self.counts[index]))),
            container_gb=float(self.sizes[index]),
        )

    def configurations(self) -> Iterator[ResourceConfiguration]:
        """Materialise every configuration in grid order."""
        for index in range(self.num_configs):
            yield self.config_at(index)


@functools.lru_cache(maxsize=256)
def _build_configuration_grid(
    cluster: "ClusterConditions",
) -> ConfigurationGrid:
    count_values = np.asarray(
        cluster.dimension("num_containers").values(), dtype=float
    )
    size_values = np.asarray(
        cluster.dimension("container_gb").values(), dtype=float
    )
    counts = np.repeat(count_values, size_values.shape[0])
    sizes = np.tile(size_values, count_values.shape[0])
    total = counts * sizes
    for array in (counts, sizes, total):
        array.setflags(write=False)
    return ConfigurationGrid(
        counts=counts, sizes=sizes, total_memory_gb=total
    )


@dataclass(frozen=True, init=False)
class ClusterConditions:
    """The resource envelope the cluster currently offers a query.

    This is what the RM reports to RAQO: how many containers may be
    requested, how big each may be, and the granularity of both axes.

    All axes are keyword-only; positional arguments still work for one
    release but emit a :class:`DeprecationWarning` (lint rule RAQO009
    keeps the source tree itself keyword-clean).
    """

    max_containers: int
    max_container_gb: float
    min_containers: int = 1
    min_container_gb: float = 1.0
    container_step: int = 1
    container_gb_step: float = 1.0

    def __init__(
        self,
        *args: float,
        max_containers: Optional[int] = None,
        max_container_gb: Optional[float] = None,
        min_containers: Optional[int] = None,
        min_container_gb: Optional[float] = None,
        container_step: Optional[int] = None,
        container_gb_step: Optional[float] = None,
    ) -> None:
        keywords = {
            "max_containers": max_containers,
            "max_container_gb": max_container_gb,
            "min_containers": min_containers,
            "min_container_gb": min_container_gb,
            "container_step": container_step,
            "container_gb_step": container_gb_step,
        }
        if args:
            warn_positional_axes(
                "ClusterConditions",
                "max_containers=..., max_container_gb=..., ...",
            )
            names = tuple(keywords)
            if len(args) > len(names):
                raise TypeError(
                    "ClusterConditions() takes at most "
                    f"{len(names)} arguments, got {len(args)}"
                )
            for name, value in zip(names, args):
                if keywords[name] is not None:
                    raise TypeError(
                        f"ClusterConditions() got multiple values "
                        f"for argument {name!r}"
                    )
                keywords[name] = value
        if (
            keywords["max_containers"] is None
            or keywords["max_container_gb"] is None
        ):
            raise TypeError(
                "ClusterConditions() requires max_containers= and "
                "max_container_gb="
            )
        defaults = {
            "min_containers": 1,
            "min_container_gb": 1.0,
            "container_step": 1,
            "container_gb_step": 1.0,
        }
        for name, default in defaults.items():
            if keywords[name] is None:
                keywords[name] = default
        for name, value in keywords.items():
            object.__setattr__(self, name, value)
        self.__post_init__()

    def __post_init__(self) -> None:
        if self.min_containers < 1:
            raise ResourceError(
                f"min_containers must be >= 1, got {self.min_containers}"
            )
        if self.max_containers < self.min_containers:
            raise ResourceError(
                "max_containers must be >= min_containers "
                f"({self.max_containers} < {self.min_containers})"
            )
        if self.min_container_gb <= 0:
            raise ResourceError(
                "min_container_gb must be > 0, got "
                f"{self.min_container_gb}"
            )
        if self.max_container_gb < self.min_container_gb:
            raise ResourceError(
                "max_container_gb must be >= min_container_gb "
                f"({self.max_container_gb} < {self.min_container_gb})"
            )
        if self.container_step < 1:
            raise ResourceError(
                f"container_step must be >= 1, got {self.container_step}"
            )
        if self.container_gb_step <= 0:
            raise ResourceError(
                "container_gb_step must be > 0, got "
                f"{self.container_gb_step}"
            )

    @property
    def dimensions(self) -> Tuple[ResourceDimension, ResourceDimension]:
        """The two resource axes in Algorithm 1 order."""
        return (
            ResourceDimension(
                name="num_containers",
                minimum=float(self.min_containers),
                maximum=float(self.max_containers),
                step=float(self.container_step),
            ),
            ResourceDimension(
                name="container_gb",
                minimum=self.min_container_gb,
                maximum=self.max_container_gb,
                step=self.container_gb_step,
            ),
        )

    def dimension(self, name: str) -> ResourceDimension:
        """Look one resource axis up by name.

        Callers that need a specific axis (e.g. the BHJ memory wall needs
        ``container_gb``) must use this instead of positional indexing so
        reordered or extended dimension lists cannot silently pick the
        wrong axis.
        """
        for dim in self.dimensions:
            if dim.name == name:
                return dim
        known = ", ".join(d.name for d in self.dimensions)
        raise ResourceError(
            f"unknown resource dimension {name!r} (known: {known})"
        )

    @property
    def step_sizes(self) -> Tuple[float, float]:
        """``GetDiscreteSteps(clusterCond)`` from Algorithm 1."""
        return (float(self.container_step), self.container_gb_step)

    @property
    def minimum_configuration(self) -> ResourceConfiguration:
        """Smallest allocatable configuration; hill climbing starts here."""
        return ResourceConfiguration(
            num_containers=self.min_containers,
            container_gb=self.min_container_gb,
        )

    @property
    def maximum_configuration(self) -> ResourceConfiguration:
        """Largest allocatable configuration."""
        return ResourceConfiguration(
            num_containers=self.max_containers,
            container_gb=self.max_container_gb,
        )

    @property
    def grid_size(self) -> int:
        """Total number of discrete resource configurations."""
        size = 1
        for dim in self.dimensions:
            size *= dim.num_values
        return size

    def contains(self, config: ResourceConfiguration) -> bool:
        """True when ``config`` lies within the envelope."""
        return self.dimension("num_containers").contains(
            float(config.num_containers)
        ) and self.dimension("container_gb").contains(config.container_gb)

    def clamp(self, config: ResourceConfiguration) -> ResourceConfiguration:
        """Clip a configuration into the envelope."""
        return ResourceConfiguration(
            num_containers=int(
                self.dimension("num_containers").clamp(
                    float(config.num_containers)
                )
            ),
            container_gb=self.dimension("container_gb").clamp(
                config.container_gb
            ),
        )

    def iter_configurations(self) -> Iterator[ResourceConfiguration]:
        """Enumerate the full discrete grid (brute-force search space)."""
        for count, size in itertools.product(
            self.dimension("num_containers").values(),
            self.dimension("container_gb").values(),
        ):
            yield ResourceConfiguration(
                num_containers=int(count), container_gb=size
            )

    def config_grid(self) -> ConfigurationGrid:
        """The full discrete grid as cached numpy arrays.

        The grid is built once per distinct cluster condition (the class
        is a frozen value type, so equal conditions share one grid) and
        the arrays are read-only. This is the input of the vectorized
        resource-planning fast path: one batched cost-model call replaces
        ``grid_size`` scalar invocations.
        """
        return _build_configuration_grid(self)

    def scaled(
        self, max_containers: int, max_container_gb: float
    ) -> "ClusterConditions":
        """A copy with different maxima (for the Fig 15(b) scaling sweep)."""
        return ClusterConditions(
            max_containers=max_containers,
            max_container_gb=max_container_gb,
            min_containers=self.min_containers,
            min_container_gb=self.min_container_gb,
            container_step=self.container_step,
            container_gb_step=self.container_gb_step,
        )
