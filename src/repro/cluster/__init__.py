"""The cluster substrate: containers, cluster conditions, RM, pricing.

Models the YARN-style resource layer the paper's systems run on: resources
are exposed as *containers* (a fixed amount of memory), a job requests a
number of containers of a given size, and a shared cluster may queue the
request when capacity is unavailable (the phenomenon behind the paper's
Fig 1).
"""

from repro.cluster.cluster import (
    ClusterConditions,
    ConfigurationGrid,
    ResourceDimension,
)
from repro.cluster.containers import ContainerRequest, ResourceConfiguration
from repro.cluster.pricing import PriceModel
from repro.cluster.resource_manager import ResourceManager
from repro.cluster.rm_api import ClusterSnapshot, ExposureLevel, RmClient
from repro.cluster.scheduler import DagScheduler, SchedulingPolicy

__all__ = [
    "ClusterConditions",
    "ClusterSnapshot",
    "ConfigurationGrid",
    "ContainerRequest",
    "DagScheduler",
    "ExposureLevel",
    "PriceModel",
    "ResourceConfiguration",
    "ResourceDimension",
    "ResourceManager",
    "RmClient",
    "SchedulingPolicy",
]
