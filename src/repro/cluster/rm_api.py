"""The optimizer <-> resource manager interface (paper Sec VIII).

"It is crucial to define the right interface for the optimizer to talk to
the RM: a restricted API gives less opportunities for optimizations,
while, at the other extreme, exposing all the RM details to the optimizer
raises security concerns, especially in a public cloud environment."

This module models that spectrum as *exposure levels*. The RM holds the
ground-truth cluster state; an :class:`RmClient` at a given exposure level
answers the optimizer's "what can I plan against?" question with more or
less fidelity:

- ``NONE``       -- static configured defaults only (today's practice);
- ``QUOTA``      -- the tenant's quota envelope, no live utilisation;
- ``AGGREGATE``  -- quota clipped by live aggregate free capacity;
- ``FULL``       -- the exact free envelope, as a co-designed RM would
  expose to a trusted optimizer.

The returned :class:`ClusterSnapshot` carries a staleness stamp so
adaptive RAQO can decide whether to re-consult the RM before execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.cluster.cluster import ClusterConditions
from repro.cluster.containers import ResourceError


class ExposureLevel(enum.Enum):
    """How much cluster state the RM reveals to the optimizer."""

    NONE = "none"
    QUOTA = "quota"
    AGGREGATE = "aggregate"
    FULL = "full"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ClusterSnapshot:
    """What the optimizer learned from the RM, and when."""

    conditions: ClusterConditions
    exposure: ExposureLevel
    taken_at_s: float

    def age_s(self, now_s: float) -> float:
        """Snapshot staleness at time ``now_s``."""
        if now_s < self.taken_at_s:
            raise ResourceError(
                f"now_s {now_s} precedes snapshot time {self.taken_at_s}"
            )
        return now_s - self.taken_at_s


@dataclass
class RmState:
    """Ground-truth cluster state held by the resource manager."""

    total: ClusterConditions
    #: Fraction of container slots currently free (0..1).
    free_fraction: float = 1.0
    #: Largest currently free container size in GB.
    free_container_gb: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.free_fraction <= 1.0:
            raise ResourceError(
                f"free_fraction must be in [0, 1], got "
                f"{self.free_fraction}"
            )
        if self.free_container_gb is None:
            self.free_container_gb = self.total.max_container_gb
        if not (
            self.total.min_container_gb
            <= self.free_container_gb
            <= self.total.max_container_gb
        ):
            raise ResourceError(
                "free_container_gb outside the cluster's size range"
            )


class RmClient:
    """The optimizer's handle on the RM at a fixed exposure level."""

    def __init__(
        self,
        state: RmState,
        exposure: ExposureLevel,
        quota: Optional[ClusterConditions] = None,
        static_default: Optional[ClusterConditions] = None,
    ) -> None:
        self._state = state
        self.exposure = exposure
        self._quota = quota or state.total
        self._static_default = static_default or ClusterConditions(
            max_containers=min(10, state.total.max_containers),
            max_container_gb=min(4.0, state.total.max_container_gb),
            min_containers=state.total.min_containers,
            min_container_gb=state.total.min_container_gb,
            container_step=state.total.container_step,
            container_gb_step=state.total.container_gb_step,
        )

    def snapshot(self, now_s: float = 0.0) -> ClusterSnapshot:
        """The conditions the optimizer may plan against, right now."""
        if self.exposure is ExposureLevel.NONE:
            conditions = self._static_default
        elif self.exposure is ExposureLevel.QUOTA:
            conditions = self._quota
        else:
            free_containers = max(
                self._state.total.min_containers,
                int(
                    self._state.total.max_containers
                    * self._state.free_fraction
                ),
            )
            max_containers = min(
                free_containers, self._quota.max_containers
            )
            if self.exposure is ExposureLevel.FULL:
                max_gb = min(
                    self._state.free_container_gb,
                    self._quota.max_container_gb,
                )
            else:  # AGGREGATE: live counts, but not per-node detail.
                max_gb = self._quota.max_container_gb
            conditions = ClusterConditions(
                max_containers=max(
                    max_containers, self._state.total.min_containers
                ),
                max_container_gb=max(
                    max_gb, self._state.total.min_container_gb
                ),
                min_containers=self._state.total.min_containers,
                min_container_gb=self._state.total.min_container_gb,
                container_step=self._state.total.container_step,
                container_gb_step=self._state.total.container_gb_step,
            )
        return ClusterSnapshot(
            conditions=conditions,
            exposure=self.exposure,
            taken_at_s=now_s,
        )

    def update(
        self,
        free_fraction: Optional[float] = None,
        free_container_gb: Optional[float] = None,
    ) -> None:
        """The RM's state changed (load spike, nodes added/removed)."""
        if free_fraction is not None:
            if not 0.0 <= free_fraction <= 1.0:
                raise ResourceError(
                    "free_fraction must be in [0, 1], got "
                    f"{free_fraction}"
                )
            self._state.free_fraction = free_fraction
        if free_container_gb is not None:
            self._state.free_container_gb = free_container_gb
