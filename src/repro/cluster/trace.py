"""Synthetic production-trace workloads for the Fig 1 queueing study.

The paper's Fig 1 plots the CDF of queue-time / execution-time for jobs from
a production Microsoft business unit: >80% of jobs queue at least as long as
they run, and >20% queue at least 4x their runtime. We cannot ship the
proprietary trace, so this module generates the closest synthetic
equivalent: a bursty (duty-cycled Poisson) arrival process over a shared
cluster driven through :class:`~repro.cluster.resource_manager.
ResourceManager`. Under bursty overload the FIFO capacity queue produces
exactly the heavy-queueing distribution shape the figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.cluster.containers import ContainerRequest, ResourceConfiguration
from repro.cluster.resource_manager import (
    JobRecord,
    JobSubmission,
    ResourceManager,
)


@dataclass(frozen=True)
class TraceConfig:
    """Workload shape for the synthetic shared-cluster trace.

    The defaults are calibrated so the resulting CDF matches the paper's
    two headline statistics (>=80% of jobs with ratio >= 1, >=20% with
    ratio >= 4); see ``experiments.fig01_queue_cdf``.
    """

    num_jobs: int = 2000
    capacity_gb: float = 4000.0
    #: Mean inter-arrival time during a burst, in seconds.
    burst_interarrival_s: float = 4.0
    #: Mean inter-arrival time between bursts, in seconds.
    idle_interarrival_s: float = 1000.0
    #: Number of jobs per burst (geometric mean).
    burst_length: int = 150
    #: Lognormal runtime distribution parameters (median ~8 minutes).
    runtime_log_mean: float = 6.2
    runtime_log_sigma: float = 0.6
    #: Container count choices and sizes a job may request.
    container_choices: Tuple[int, ...] = (10, 20, 50)
    container_gb_choices: Tuple[float, ...] = (2.0, 4.0)

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ValueError(f"num_jobs must be >= 1, got {self.num_jobs}")
        if self.capacity_gb <= 0:
            raise ValueError(
                f"capacity_gb must be > 0, got {self.capacity_gb}"
            )
        if self.burst_length < 1:
            raise ValueError(
                f"burst_length must be >= 1, got {self.burst_length}"
            )


def poisson_arrival_times(
    num_arrivals: int,
    mean_interarrival_s: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Cumulative arrival times of a homogeneous Poisson process.

    The steady-state arrival model for the serving layer: exponential
    inter-arrival gaps with the given mean, summed into ascending
    absolute arrival times (seconds).
    """
    if num_arrivals < 0:
        raise ValueError(
            f"num_arrivals must be >= 0, got {num_arrivals}"
        )
    if mean_interarrival_s <= 0:
        raise ValueError(
            "mean_interarrival_s must be > 0, got "
            f"{mean_interarrival_s}"
        )
    gaps = rng.exponential(mean_interarrival_s, size=num_arrivals)
    return np.cumsum(gaps)


def bursty_arrival_times(
    num_arrivals: int,
    burst_interarrival_s: float,
    idle_interarrival_s: float,
    burst_length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival times of a duty-cycled (bursty) Poisson process.

    The same alternation :func:`generate_submissions` uses for the Fig 1
    queueing study -- short exponential gaps within a burst, one long
    exponential gap between bursts, geometric burst sizes -- but
    returning bare arrival times so the serving replay harness can
    attach its own request payloads.
    """
    if num_arrivals < 0:
        raise ValueError(
            f"num_arrivals must be >= 0, got {num_arrivals}"
        )
    if burst_length < 1:
        raise ValueError(
            f"burst_length must be >= 1, got {burst_length}"
        )
    if burst_interarrival_s <= 0:
        raise ValueError(
            "burst_interarrival_s must be > 0, got "
            f"{burst_interarrival_s}"
        )
    if idle_interarrival_s <= 0:
        raise ValueError(
            "idle_interarrival_s must be > 0, got "
            f"{idle_interarrival_s}"
        )
    times = np.empty(num_arrivals, dtype=float)
    now = 0.0
    in_burst_remaining = burst_length
    for index in range(num_arrivals):
        if in_burst_remaining > 0:
            now += rng.exponential(burst_interarrival_s)
            in_burst_remaining -= 1
        else:
            now += rng.exponential(idle_interarrival_s)
            in_burst_remaining = int(
                rng.geometric(1.0 / burst_length)
            )
        times[index] = now
    return times


def generate_submissions(
    config: TraceConfig, rng: np.random.Generator
) -> List[JobSubmission]:
    """Generate a bursty stream of job submissions.

    Arrivals alternate between bursts (short exponential inter-arrivals)
    and idle periods (long inter-arrivals), modelling the "sudden spike in
    the workload" the paper cites as a cause of queueing.
    """
    submissions = []
    now = 0.0
    in_burst_remaining = config.burst_length
    for job_id in range(config.num_jobs):
        if in_burst_remaining > 0:
            gap = rng.exponential(config.burst_interarrival_s)
            in_burst_remaining -= 1
        else:
            gap = rng.exponential(config.idle_interarrival_s)
            in_burst_remaining = int(
                rng.geometric(1.0 / config.burst_length)
            )
        now += gap
        runtime = float(
            rng.lognormal(config.runtime_log_mean, config.runtime_log_sigma)
        )
        runtime = max(runtime, 1.0)
        num = int(rng.choice(config.container_choices))
        size = float(rng.choice(config.container_gb_choices))
        # Never request more than the cluster can ever satisfy.
        while num * size > config.capacity_gb:
            num = max(1, num // 2)
        submissions.append(
            JobSubmission(
                job_id=job_id,
                arrival_time_s=now,
                request=ContainerRequest(
                    config=ResourceConfiguration(
                        num_containers=num, container_gb=size
                    ),
                    duration_s=runtime,
                ),
            )
        )
    return submissions


def simulate_trace(
    config: TraceConfig, rng: np.random.Generator
) -> List[JobRecord]:
    """Run the synthetic trace through the resource manager."""
    manager = ResourceManager(capacity_gb=config.capacity_gb)
    return manager.run(generate_submissions(config, rng))


def queue_runtime_ratios(records: Sequence[JobRecord]) -> np.ndarray:
    """Per-job queue-time / runtime ratios, ascending."""
    ratios = np.array(
        [record.queue_runtime_ratio for record in records], dtype=float
    )
    ratios.sort()
    return ratios


def ratio_cdf(
    records: Sequence[JobRecord],
) -> Tuple[np.ndarray, np.ndarray]:
    """The Fig 1 CDF: (fraction of jobs, ratio at that fraction)."""
    ratios = queue_runtime_ratios(records)
    fractions = np.arange(1, len(ratios) + 1, dtype=float) / len(ratios)
    return fractions, ratios


def fraction_with_ratio_at_least(
    records: Sequence[JobRecord], threshold: float
) -> float:
    """Fraction of jobs whose queue/runtime ratio is >= ``threshold``."""
    if not records:
        return 0.0
    ratios = queue_runtime_ratios(records)
    return float(np.mean(ratios >= threshold))
