"""A YARN-like resource manager simulator with a FIFO capacity queue.

Jobs submit container requests; when the shared cluster lacks capacity the
request queues, exactly the phenomenon the paper's Fig 1 quantifies ("more
than 80% of the jobs spend as much time waiting for resources in the queue
as in the actual job execution"). The simulation is event driven and
deterministic given the submitted jobs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.containers import ContainerRequest, ResourceError


@dataclass(frozen=True)
class JobSubmission:
    """A job arriving at the resource manager."""

    job_id: int
    arrival_time_s: float
    request: ContainerRequest

    def __post_init__(self) -> None:
        if self.arrival_time_s < 0:
            raise ResourceError(
                f"arrival_time_s must be >= 0, got {self.arrival_time_s}"
            )


@dataclass(frozen=True)
class JobRecord:
    """The outcome of one simulated job."""

    job_id: int
    arrival_time_s: float
    start_time_s: float
    finish_time_s: float
    runtime_s: float
    memory_gb: float

    @property
    def queue_time_s(self) -> float:
        """How long the job waited for its containers."""
        return self.start_time_s - self.arrival_time_s

    @property
    def queue_runtime_ratio(self) -> float:
        """The paper's Fig 1 metric: queue time over execution time."""
        return self.queue_time_s / self.runtime_s


class ResourceManager:
    """Event-driven FIFO allocator over a fixed memory capacity.

    Capacity is expressed in total memory GB (containers x size); a job
    occupies ``request.memory_gb`` for ``request.duration_s`` once started.
    FIFO is strict: the head of the queue blocks later jobs even if they
    would fit, which matches capacity-queue behaviour in shared production
    clusters.
    """

    def __init__(self, capacity_gb: float) -> None:
        if capacity_gb <= 0:
            raise ResourceError(
                f"capacity_gb must be > 0, got {capacity_gb}"
            )
        self.capacity_gb = capacity_gb

    def run(self, submissions: List[JobSubmission]) -> List[JobRecord]:
        """Simulate all submissions; returns one record per job.

        Jobs whose single-job memory demand exceeds the cluster capacity
        are rejected with :class:`ResourceError` (they could never start).
        """
        for submission in submissions:
            if submission.request.memory_gb > self.capacity_gb:
                raise ResourceError(
                    f"job {submission.job_id} requests "
                    f"{submission.request.memory_gb} GB but capacity is "
                    f"{self.capacity_gb} GB"
                )
        pending = sorted(
            submissions, key=lambda s: (s.arrival_time_s, s.job_id)
        )
        queue: List[JobSubmission] = []
        # (finish_time, seq, memory_gb) -- seq breaks ties deterministically.
        running: List[tuple] = []
        seq = itertools.count()
        used_gb = 0.0
        now = 0.0
        next_arrival = 0
        records: List[JobRecord] = []

        def start_eligible() -> None:
            nonlocal used_gb
            while queue:
                head = queue[0]
                needed = head.request.memory_gb
                if used_gb + needed > self.capacity_gb + 1e-9:
                    return
                queue.pop(0)
                used_gb += needed
                finish = now + head.request.duration_s
                heapq.heappush(running, (finish, next(seq), needed))
                records.append(
                    JobRecord(
                        job_id=head.job_id,
                        arrival_time_s=head.arrival_time_s,
                        start_time_s=now,
                        finish_time_s=finish,
                        runtime_s=head.request.duration_s,
                        memory_gb=needed,
                    )
                )

        while next_arrival < len(pending) or queue or running:
            # Choose the next event: an arrival or a completion.
            arrival_time = (
                pending[next_arrival].arrival_time_s
                if next_arrival < len(pending)
                else float("inf")
            )
            completion_time = running[0][0] if running else float("inf")
            if arrival_time <= completion_time:
                now = arrival_time
                queue.append(pending[next_arrival])
                next_arrival += 1
            else:
                now = completion_time
                _, _, freed = heapq.heappop(running)
                used_gb -= freed
            start_eligible()

        records.sort(key=lambda r: r.job_id)
        return records

    def utilization(
        self, records: List[JobRecord], horizon_s: Optional[float] = None
    ) -> float:
        """Average fraction of capacity in use over the simulated horizon."""
        if not records:
            return 0.0
        if horizon_s is None:
            horizon_s = max(record.finish_time_s for record in records)
        if horizon_s <= 0:
            return 0.0
        busy_gb_seconds = sum(
            record.runtime_s * record.memory_gb for record in records
        )
        return busy_gb_seconds / (horizon_s * self.capacity_gb)
