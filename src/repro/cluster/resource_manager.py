"""A YARN-like resource manager simulator with a FIFO capacity queue.

Jobs submit container requests; when the shared cluster lacks capacity the
request queues, exactly the phenomenon the paper's Fig 1 quantifies ("more
than 80% of the jobs spend as much time waiting for resources in the queue
as in the actual job execution"). The simulation is event driven and
deterministic given the submitted jobs.

Fault injection (``faults=``) adds the other half of cluster volatility:
container *preemption*. A running job can lose its containers partway
through (the fault plan decides when, deterministically per (job,
attempt)); the job's partial work is wasted and it re-queues at the tail
of the FIFO with its full duration, up to ``max_restarts`` preemptions
per job -- after which the simulator lets it run to completion, so every
simulation terminates.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.containers import ContainerRequest, ResourceError
from repro.faults.model import FaultKind, FaultPlan
from repro.obs.telemetry import TelemetryPlane
from repro.obs.tracing import NULL_TRACER, Tracer


@dataclass(frozen=True)
class JobSubmission:
    """A job arriving at the resource manager."""

    job_id: int
    arrival_time_s: float
    request: ContainerRequest

    def __post_init__(self) -> None:
        if self.arrival_time_s < 0:
            raise ResourceError(
                f"arrival_time_s must be >= 0, got {self.arrival_time_s}"
            )


@dataclass(frozen=True)
class JobRecord:
    """The outcome of one simulated job.

    ``start_time_s`` is the *first* time the job got its containers;
    ``preemptions``/``wasted_s`` account restarts (zero without fault
    injection, preserving historical records bit for bit).
    """

    job_id: int
    arrival_time_s: float
    start_time_s: float
    finish_time_s: float
    runtime_s: float
    memory_gb: float
    preemptions: int = 0
    #: Simulated busy time lost to preempted (re-done) partial runs.
    wasted_s: float = 0.0

    @property
    def queue_time_s(self) -> float:
        """How long the job waited for its containers."""
        return self.start_time_s - self.arrival_time_s

    @property
    def queue_runtime_ratio(self) -> float:
        """The paper's Fig 1 metric: queue time over execution time."""
        return self.queue_time_s / self.runtime_s


@dataclass
class _QueuedJob:
    """A submission waiting in the FIFO, with its restart history."""

    submission: JobSubmission
    restarts: int = 0
    first_start_s: Optional[float] = None
    wasted_s: float = 0.0


class ResourceManager:
    """Event-driven FIFO allocator over a fixed memory capacity.

    Capacity is expressed in total memory GB (containers x size); a job
    occupies ``request.memory_gb`` for ``request.duration_s`` once started.
    FIFO is strict: the head of the queue blocks later jobs even if they
    would fit, which matches capacity-queue behaviour in shared production
    clusters.
    """

    def __init__(self, capacity_gb: float) -> None:
        if capacity_gb <= 0:
            raise ResourceError(
                f"capacity_gb must be > 0, got {capacity_gb}"
            )
        self.capacity_gb = capacity_gb

    def run(
        self,
        submissions: List[JobSubmission],
        faults: Optional[FaultPlan] = None,
        max_restarts: int = 3,
        tracer: Tracer = NULL_TRACER,
        telemetry: Optional[TelemetryPlane] = None,
    ) -> List[JobRecord]:
        """Simulate all submissions; returns one record per job.

        Jobs whose single-job memory demand exceeds the cluster capacity
        are rejected with :class:`ResourceError` (they could never start).
        With ``faults``, running jobs may be preempted and re-queued (at
        most ``max_restarts`` times each).

        An active ``tracer`` records one ``rm-job`` cluster span per job
        (simulated window = arrival to finish, with a queue-time event),
        keyed by job ID so traces are independent of event ordering.

        ``telemetry`` records the cluster's memory occupancy as a
        simulated-clock windowed gauge (``cluster.memory_in_use_gb``,
        sampled at every allocation and release) plus windowed
        preemption/completion counters -- the occupancy timeline behind
        the paper's Fig 1 queueing story.
        """
        if max_restarts < 0:
            raise ResourceError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        for submission in submissions:
            if submission.request.memory_gb > self.capacity_gb:
                raise ResourceError(
                    f"job {submission.job_id} requests "
                    f"{submission.request.memory_gb} GB but capacity is "
                    f"{self.capacity_gb} GB"
                )
        pending = sorted(
            submissions, key=lambda s: (s.arrival_time_s, s.job_id)
        )
        queue: List[_QueuedJob] = []
        # (event_time, seq, job) -- seq breaks ties deterministically
        # and guarantees heap comparisons never reach the job payload.
        running: List[Tuple[float, int, "_RunningJob"]] = []
        seq = itertools.count()
        used_gb = 0.0
        now = 0.0
        next_arrival = 0
        records: List[JobRecord] = []

        occupancy = (
            telemetry.windowed_gauge(
                "cluster.memory_in_use_gb", clock="sim"
            )
            if telemetry is not None
            else None
        )

        def start_eligible() -> None:
            nonlocal used_gb
            while queue:
                head = queue[0]
                needed = head.submission.request.memory_gb
                if used_gb + needed > self.capacity_gb + 1e-9:
                    return
                queue.pop(0)
                used_gb += needed
                if occupancy is not None:
                    occupancy.record(used_gb, ts_s=now)
                if head.first_start_s is None:
                    head.first_start_s = now
                duration = head.submission.request.duration_s
                preempt_at: Optional[float] = None
                if faults is not None and head.restarts < max_restarts:
                    decision = faults.decide(
                        f"rm-job:{head.submission.job_id}",
                        head.restarts,
                    )
                    if decision.kind is FaultKind.PREEMPTION:
                        preempt_at = duration * decision.fraction
                if preempt_at is not None:
                    event_time = now + preempt_at
                    job = _RunningJob(
                        queued=head,
                        memory_gb=needed,
                        preempted=True,
                        segment_s=preempt_at,
                    )
                else:
                    event_time = now + duration
                    job = _RunningJob(
                        queued=head,
                        memory_gb=needed,
                        preempted=False,
                        segment_s=duration,
                    )
                heapq.heappush(running, (event_time, next(seq), job))

        while next_arrival < len(pending) or queue or running:
            # Choose the next event: an arrival or a run-segment end
            # (completion or preemption).
            arrival_time = (
                pending[next_arrival].arrival_time_s
                if next_arrival < len(pending)
                else float("inf")
            )
            event_time = running[0][0] if running else float("inf")
            if arrival_time <= event_time:
                now = arrival_time
                queue.append(_QueuedJob(pending[next_arrival]))
                next_arrival += 1
            else:
                now = event_time
                _, _, job = heapq.heappop(running)
                used_gb -= job.memory_gb
                queued = job.queued
                if occupancy is not None:
                    occupancy.record(used_gb, ts_s=now)
                if job.preempted:
                    queued.restarts += 1
                    queued.wasted_s += job.segment_s
                    queue.append(queued)
                    if telemetry is not None:
                        telemetry.windowed_counter(
                            "cluster.preemptions", clock="sim"
                        ).inc(ts_s=now)
                else:
                    assert queued.first_start_s is not None
                    records.append(
                        JobRecord(
                            job_id=queued.submission.job_id,
                            arrival_time_s=(
                                queued.submission.arrival_time_s
                            ),
                            start_time_s=queued.first_start_s,
                            finish_time_s=now,
                            runtime_s=(
                                queued.submission.request.duration_s
                            ),
                            memory_gb=job.memory_gb,
                            preemptions=queued.restarts,
                            wasted_s=queued.wasted_s,
                        )
                    )
                    if telemetry is not None:
                        telemetry.windowed_counter(
                            "cluster.completions", clock="sim"
                        ).inc(ts_s=now)
            start_eligible()

        records.sort(key=lambda r: r.job_id)
        if tracer.active:
            self._trace_records(records, tracer)
        return records

    def _trace_records(
        self, records: List[JobRecord], tracer: Tracer
    ) -> None:
        """Emit one cluster span per finished job."""
        with tracer.span("rm-run", kind="cluster") as run_span:
            if records:
                run_span.set_sim_window(
                    min(r.arrival_time_s for r in records),
                    max(r.finish_time_s for r in records),
                )
            run_span.set_attributes(
                {
                    "jobs": len(records),
                    "capacity_gb": self.capacity_gb,
                    "preemptions": sum(
                        r.preemptions for r in records
                    ),
                }
            )
            for record in records:
                with tracer.span(
                    "rm-job",
                    kind="cluster",
                    parent=run_span,
                    key=str(record.job_id),
                ) as job_span:
                    job_span.set_sim_window(
                        record.arrival_time_s, record.finish_time_s
                    )
                    job_span.set_attributes(
                        {
                            "job_id": record.job_id,
                            "memory_gb": record.memory_gb,
                            "runtime_s": record.runtime_s,
                            "queue_time_s": record.queue_time_s,
                            "preemptions": record.preemptions,
                            "wasted_s": record.wasted_s,
                        }
                    )
                    job_span.event(
                        "containers-granted",
                        sim_time_s=record.start_time_s,
                    )
                    if record.preemptions:
                        job_span.event(
                            "preempted",
                            sim_time_s=record.start_time_s,
                            attributes={
                                "count": record.preemptions,
                                "wasted_s": record.wasted_s,
                            },
                        )

    def utilization(
        self, records: List[JobRecord], horizon_s: Optional[float] = None
    ) -> float:
        """Average fraction of capacity in use over the simulated horizon.

        Preempted (wasted) busy time counts: those containers really
        were occupied before being reclaimed.
        """
        if not records:
            return 0.0
        if horizon_s is None:
            horizon_s = max(record.finish_time_s for record in records)
        if horizon_s <= 0:
            return 0.0
        busy_gb_seconds = sum(
            (record.runtime_s + record.wasted_s) * record.memory_gb
            for record in records
        )
        return busy_gb_seconds / (horizon_s * self.capacity_gb)

    def preemption_summary(
        self, records: List[JobRecord]
    ) -> Dict[str, float]:
        """Aggregate preemption statistics for a finished simulation."""
        return {
            "jobs": float(len(records)),
            "preemptions": float(
                sum(record.preemptions for record in records)
            ),
            "wasted_s": sum(record.wasted_s for record in records),
        }


@dataclass
class _RunningJob:
    """One run segment of a started job."""

    queued: _QueuedJob
    memory_gb: float
    #: True when this segment ends in preemption rather than completion.
    preempted: bool
    #: Length of this segment in simulated seconds.
    segment_s: float
