"""Container abstractions: resource configurations and container requests.

A :class:`ResourceConfiguration` is the paper's two-dimensional resource
plan for one operator: the number of concurrent containers and the size of
each container in GB of memory (Sec II-B / Sec III: "we consider the
container sizes in terms of memory, but our experiments can naturally be
extended to include other resources, such as CPU").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class ResourceError(Exception):
    """Raised for invalid resource configurations or requests."""


@dataclass(frozen=True, order=True)
class ResourceConfiguration:
    """A per-operator resource plan: ``num_containers`` x ``container_gb``.

    The two fields map onto the two hill-climbing dimensions of the paper's
    Algorithm 1; :meth:`as_vector` / :meth:`from_vector` convert to and from
    the generic vector form that algorithm manipulates.
    """

    num_containers: int
    container_gb: float

    def __post_init__(self) -> None:
        if self.num_containers < 1:
            raise ResourceError(
                f"num_containers must be >= 1, got {self.num_containers}"
            )
        if self.container_gb <= 0:
            raise ResourceError(
                f"container_gb must be > 0, got {self.container_gb}"
            )

    @property
    def total_memory_gb(self) -> float:
        """Aggregate memory of the configuration."""
        return self.num_containers * self.container_gb

    def gb_seconds(self, duration_s: float) -> float:
        """Resources consumed holding this configuration for a duration.

        This is the paper's "total resources used" metric (memory x time);
        the serverless price model charges proportionally to it.
        """
        if duration_s < 0:
            raise ResourceError(f"duration must be >= 0, got {duration_s}")
        return self.total_memory_gb * duration_s

    def as_vector(self) -> Tuple[float, float]:
        """(num_containers, container_gb) as a mutable-friendly vector."""
        return (float(self.num_containers), self.container_gb)

    @classmethod
    def from_vector(cls, vector: Tuple[float, float]) -> "ResourceConfiguration":
        """Rebuild a configuration from the vector form.

        The container count is rounded to the nearest integer (resource
        dimensions move in discrete steps).
        """
        return cls(
            num_containers=int(round(vector[0])),
            container_gb=float(vector[1]),
        )

    def __str__(self) -> str:
        return f"<{self.num_containers} x {self.container_gb:g}GB>"


@dataclass(frozen=True)
class ContainerRequest:
    """A request to the resource manager for a job or DAG stage."""

    config: ResourceConfiguration
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ResourceError(
                f"duration_s must be > 0, got {self.duration_s}"
            )

    @property
    def memory_gb(self) -> float:
        """Total memory requested."""
        return self.config.total_memory_gb
