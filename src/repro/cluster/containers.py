"""Container abstractions: resource configurations and container requests.

A :class:`ResourceConfiguration` is the paper's two-dimensional resource
plan for one operator: the number of concurrent containers and the size of
each container in GB of memory (Sec II-B / Sec III: "we consider the
container sizes in terms of memory, but our experiments can naturally be
extended to include other resources, such as CPU").
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.units import GBSeconds, Seconds


class ResourceError(Exception):
    """Raised for invalid resource configurations or requests."""


def warn_positional_axes(type_name: str, axes: str) -> None:
    """Emit the one-release deprecation warning for positional axes.

    The two resource axes are deliberately keyword-only in the public
    API (``num_containers=10, container_gb=4.0`` cannot be silently
    transposed; ``(10, 4.0)`` can).  Positional calls keep working for
    one release through the constructor shims that call this.
    """
    warnings.warn(
        f"positional resource axes are deprecated; call "
        f"{type_name}({axes}) with keywords -- positional support "
        f"will be removed in the next release",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True, order=True, init=False)
class ResourceConfiguration:
    """A per-operator resource plan: ``num_containers`` x ``container_gb``.

    The two fields map onto the two hill-climbing dimensions of the paper's
    Algorithm 1; :meth:`as_vector` / :meth:`from_vector` convert to and from
    the generic vector form that algorithm manipulates.

    Both axes are keyword-only; positional arguments still work for one
    release but emit a :class:`DeprecationWarning` (lint rule RAQO009
    keeps the source tree itself keyword-clean).
    """

    num_containers: int
    container_gb: float

    def __init__(
        self,
        *args: float,
        num_containers: Optional[int] = None,
        container_gb: Optional[float] = None,
    ) -> None:
        if args:
            warn_positional_axes(
                "ResourceConfiguration",
                "num_containers=..., container_gb=...",
            )
            if len(args) > 2 or (
                num_containers is not None
                or (len(args) == 2 and container_gb is not None)
            ):
                raise TypeError(
                    "ResourceConfiguration() got conflicting or excess "
                    "positional resource axes"
                )
            num_containers = int(args[0])
            if len(args) == 2:
                container_gb = float(args[1])
        if num_containers is None or container_gb is None:
            raise TypeError(
                "ResourceConfiguration() requires num_containers= "
                "and container_gb="
            )
        object.__setattr__(self, "num_containers", num_containers)
        object.__setattr__(self, "container_gb", container_gb)
        self.__post_init__()

    def __post_init__(self) -> None:
        if self.num_containers < 1:
            raise ResourceError(
                f"num_containers must be >= 1, got {self.num_containers}"
            )
        if self.container_gb <= 0:
            raise ResourceError(
                f"container_gb must be > 0, got {self.container_gb}"
            )

    @property
    def total_memory_gb(self) -> float:
        """Aggregate memory of the configuration."""
        return self.num_containers * self.container_gb

    def gb_seconds(self, duration_s: Seconds) -> GBSeconds:
        """Resources consumed holding this configuration for a duration.

        This is the paper's "total resources used" metric (memory x time);
        the serverless price model charges proportionally to it.
        """
        if duration_s < 0:
            raise ResourceError(f"duration must be >= 0, got {duration_s}")
        return GBSeconds(self.total_memory_gb * duration_s)

    def as_vector(self) -> Tuple[float, float]:
        """(num_containers, container_gb) as a mutable-friendly vector."""
        return (float(self.num_containers), self.container_gb)

    @classmethod
    def from_vector(cls, vector: Tuple[float, float]) -> "ResourceConfiguration":
        """Rebuild a configuration from the vector form.

        The container count is rounded to the nearest integer (resource
        dimensions move in discrete steps).
        """
        return cls(
            num_containers=int(round(vector[0])),
            container_gb=float(vector[1]),
        )

    def __str__(self) -> str:
        return f"<{self.num_containers} x {self.container_gb:g}GB>"


@dataclass(frozen=True)
class ContainerRequest:
    """A request to the resource manager for a job or DAG stage."""

    config: ResourceConfiguration
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ResourceError(
                f"duration_s must be > 0, got {self.duration_s}"
            )

    @property
    def memory_gb(self) -> float:
        """Total memory requested."""
        return self.config.total_memory_gb
