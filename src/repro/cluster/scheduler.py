"""DAG scheduler interaction with joint query/resource plans (Sec VIII).

"With RAQO, the submitted jobs now have precise resource requests. This
raises new questions for the scheduler in case the exact resources are
not available: should it delay the job, should it fail it, or should it
consider multiple query/resource plan alternatives and pick the most
appropriate at runtime?"

This module implements those three policies over the queueing resource
manager substrate:

- ``DELAY``    -- wait until the requested envelope frees up;
- ``FAIL``     -- reject the job if its plan does not fit right now;
- ``FALLBACK`` -- walk a list of (plan, resources) alternatives (e.g. a
  Pareto frontier from the FastRandomized planner) and run the best
  alternative that fits the currently free capacity.

The scheduler operates on a job's *peak* per-operator resource demand:
operators execute sequentially at shuffle boundaries, so a joint plan's
reservation is the maximum over its operators.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.containers import ResourceConfiguration
from repro.faults.model import FaultSpec
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.planner.cost_interface import Cost
from repro.planner.plan import PlanNode


class SchedulingPolicy(enum.Enum):
    """What to do when a joint plan's resources are unavailable."""

    DELAY = "delay"
    FAIL = "fail"
    FALLBACK = "fallback"

    def __str__(self) -> str:
        return self.value


class SchedulingError(Exception):
    """Raised for malformed scheduling requests."""


@dataclass(frozen=True)
class JointPlanRequest:
    """A joint query/resource plan submitted for execution."""

    plan: PlanNode
    cost: Cost

    def peak_demand(self) -> ResourceConfiguration:
        """The largest per-operator reservation in the plan.

        Raises :class:`SchedulingError` when any operator lacks a
        resource annotation (a two-step plan cannot be gang-scheduled
        precisely -- that is the paper's point).
        """
        peak: Optional[ResourceConfiguration] = None
        for join in self.plan.joins_postorder():
            if join.resources is None:
                raise SchedulingError(
                    "joint plan has an operator without resources "
                    f"(over {sorted(join.tables)})"
                )
            if (
                peak is None
                or join.resources.total_memory_gb > peak.total_memory_gb
            ):
                peak = join.resources
        if peak is None:
            raise SchedulingError("plan has no join operators")
        return peak


@dataclass(frozen=True)
class SchedulingDecision:
    """The scheduler's verdict for one submission."""

    policy: SchedulingPolicy
    admitted: bool
    chosen: Optional[JointPlanRequest]
    #: Estimated wait before the chosen plan can start (0 on admit-now).
    expected_wait_s: float
    #: Index of the chosen alternative (0 = the preferred plan).
    alternative_index: Optional[int] = None

    @property
    def ran_fallback(self) -> bool:
        """True when a non-preferred alternative was chosen."""
        return (
            self.alternative_index is not None
            and self.alternative_index > 0
        )


class DagScheduler:
    """Admission control for joint plans against current free capacity.

    ``free_gb`` is the capacity the RM reports available right now;
    ``drain_rate_gb_s`` (capacity freed per second, from recent history)
    turns a deficit into an expected wait for the DELAY policy.

    ``fault_spec`` makes the wait estimate volatility-aware: preempted
    work re-enters the queue and re-occupies capacity, so the *net*
    drain rate shrinks by the expected number of attempts per job
    (``1 / (1 - preemption_rate)``, the geometric-retry mean).
    """

    def __init__(
        self,
        capacity_gb: float,
        free_gb: Optional[float] = None,
        drain_rate_gb_s: float = 1.0,
        fault_spec: Optional[FaultSpec] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if capacity_gb <= 0:
            raise SchedulingError(
                f"capacity_gb must be > 0, got {capacity_gb}"
            )
        if free_gb is None:
            free_gb = capacity_gb
        if not 0 <= free_gb <= capacity_gb:
            raise SchedulingError(
                f"free_gb must be within [0, {capacity_gb}], got {free_gb}"
            )
        if drain_rate_gb_s <= 0:
            raise SchedulingError(
                f"drain_rate_gb_s must be > 0, got {drain_rate_gb_s}"
            )
        self.capacity_gb = capacity_gb
        self.free_gb = free_gb
        self.drain_rate_gb_s = drain_rate_gb_s
        self.fault_spec = fault_spec
        self.tracer = tracer

    def effective_drain_rate_gb_s(self) -> float:
        """The net capacity drain rate after expected fault rework."""
        if self.fault_spec is None:
            return self.drain_rate_gb_s
        return self.drain_rate_gb_s / self.fault_spec.expected_attempts()

    def fits_now(self, request: JointPlanRequest) -> bool:
        """True when the plan's peak demand fits the free capacity."""
        return request.peak_demand().total_memory_gb <= self.free_gb

    def expected_wait_s(self, request: JointPlanRequest) -> float:
        """Estimated queueing delay until the plan's demand frees up."""
        deficit = (
            request.peak_demand().total_memory_gb - self.free_gb
        )
        if deficit <= 0:
            return 0.0
        if (
            request.peak_demand().total_memory_gb
            > self.capacity_gb
        ):
            return math.inf
        return deficit / self.effective_drain_rate_gb_s()

    def schedule(
        self,
        alternatives: Sequence[JointPlanRequest],
        policy: SchedulingPolicy = SchedulingPolicy.FALLBACK,
    ) -> SchedulingDecision:
        """Decide what to run, per the requested policy.

        ``alternatives`` are ordered by preference (best plan first);
        DELAY and FAIL consider only the first.
        """
        if not alternatives:
            raise SchedulingError("no plan alternatives submitted")
        decision = self._schedule(alternatives, policy)
        if self.tracer.active:
            with self.tracer.span(
                "schedule", kind="cluster"
            ) as span:
                span.set_attributes(
                    {
                        "policy": policy.value,
                        "alternatives": len(alternatives),
                        "admitted": decision.admitted,
                        "expected_wait_s": (
                            decision.expected_wait_s
                            if math.isfinite(decision.expected_wait_s)
                            else -1.0
                        ),
                        "free_gb": self.free_gb,
                    }
                )
                if decision.alternative_index is not None:
                    span.set_attribute(
                        "alternative_index",
                        decision.alternative_index,
                    )
                if decision.ran_fallback:
                    span.event(
                        "fallback",
                        attributes={
                            "alternative_index": (
                                decision.alternative_index
                            )
                        },
                    )
        return decision

    def _schedule(
        self,
        alternatives: Sequence[JointPlanRequest],
        policy: SchedulingPolicy,
    ) -> SchedulingDecision:
        preferred = alternatives[0]

        if policy is SchedulingPolicy.FAIL:
            admitted = self.fits_now(preferred)
            return SchedulingDecision(
                policy=policy,
                admitted=admitted,
                chosen=preferred if admitted else None,
                expected_wait_s=0.0,
                alternative_index=0 if admitted else None,
            )

        if policy is SchedulingPolicy.DELAY:
            wait = self.expected_wait_s(preferred)
            return SchedulingDecision(
                policy=policy,
                admitted=math.isfinite(wait),
                chosen=preferred if math.isfinite(wait) else None,
                expected_wait_s=wait,
                alternative_index=0 if math.isfinite(wait) else None,
            )

        # FALLBACK: the best alternative that fits now; if none fits,
        # delay on whichever alternative frees up fastest.
        for index, candidate in enumerate(alternatives):
            if self.fits_now(candidate):
                return SchedulingDecision(
                    policy=policy,
                    admitted=True,
                    chosen=candidate,
                    expected_wait_s=0.0,
                    alternative_index=index,
                )
        waits = [
            (self.expected_wait_s(candidate), index)
            for index, candidate in enumerate(alternatives)
        ]
        best_wait, best_index = min(waits)
        if not math.isfinite(best_wait):
            return SchedulingDecision(
                policy=policy,
                admitted=False,
                chosen=None,
                expected_wait_s=math.inf,
                alternative_index=None,
            )
        return SchedulingDecision(
            policy=policy,
            admitted=True,
            chosen=alternatives[best_index],
            expected_wait_s=best_wait,
            alternative_index=best_index,
        )


def frontier_to_alternatives(
    frontier: Sequence[Tuple[PlanNode, Cost]],
) -> List[JointPlanRequest]:
    """Turn a Pareto frontier into a preference-ordered alternative list.

    Ordered by execution time (the frontier's natural order), so the
    scheduler falls back from fastest to cheapest.
    """
    return [
        JointPlanRequest(plan=plan, cost=cost)
        for plan, cost in frontier
    ]
