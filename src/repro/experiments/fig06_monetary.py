"""Fig 6: monetary cost of BHJ vs SMJ over varying resources in Hive.

Serverless dollar costs of the Fig 3 sweeps. "Again, we see that either
of SMJ and BHJ could be cost effective based on the available resources.
Interestingly, while the switching points remain the same, the absolute
values of monetary value change very differently." (At a fixed
configuration, dollars are time x memory, so the winner flips exactly
where the time winner flips -- but the *gap* and the cheapest
configuration move.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.cluster.pricing import PriceModel
from repro.core.monetary import MonetaryComparison, monetary_cost_curve
from repro.engine.profiles import EngineProfile, HIVE_PROFILE
from repro.experiments import workload
from repro.experiments.report import print_table


@dataclass(frozen=True)
class MonetaryResult:
    """Both Fig 6 sweeps as dollar-cost comparisons."""

    container_size_sweep: Tuple[MonetaryComparison, ...]
    container_count_sweep: Tuple[MonetaryComparison, ...]

    def cheapest_overall(self) -> MonetaryComparison:
        """The configuration with the lowest best-implementation cost."""
        all_points = (
            self.container_size_sweep + self.container_count_sweep
        )
        return min(
            all_points,
            key=lambda p: min(p.smj_dollars, p.bhj_dollars),
        )


def run(
    profile: EngineProfile = HIVE_PROFILE,
    price_model: PriceModel = PriceModel(),
) -> MonetaryResult:
    """Price both Fig 3 sweeps."""
    size_sweep = tuple(
        monetary_cost_curve(
            workload.ORDERS_LARGE_GB,
            workload.LINEITEM_GB,
            workload.container_size_configs(),
            profile,
            price_model,
        )
    )
    count_sweep = tuple(
        monetary_cost_curve(
            workload.ORDERS_SMALL_GB,
            workload.LINEITEM_GB,
            workload.container_count_configs(),
            profile,
            price_model,
        )
    )
    return MonetaryResult(
        container_size_sweep=size_sweep,
        container_count_sweep=count_sweep,
    )


def main() -> MonetaryResult:
    """Print the Fig 6 series."""
    result = run()
    print_table(
        ["container size (GB)", "SMJ ($)", "BHJ ($)", "cheaper"],
        [
            (
                p.config.container_gb,
                p.smj_dollars,
                p.bhj_dollars if math.isfinite(p.bhj_dollars) else
                float("inf"),
                str(p.cheaper),
            )
            for p in result.container_size_sweep
        ],
        title="Fig 6(a): monetary cost over container size "
        f"(orders={workload.ORDERS_LARGE_GB} GB, nc=10)",
    )
    print_table(
        ["#containers", "SMJ ($)", "BHJ ($)", "cheaper"],
        [
            (
                p.config.num_containers,
                p.smj_dollars,
                p.bhj_dollars if math.isfinite(p.bhj_dollars) else
                float("inf"),
                str(p.cheaper),
            )
            for p in result.container_count_sweep
        ],
        title="Fig 6(b): monetary cost over #containers "
        f"(orders={workload.ORDERS_SMALL_GB} GB, cs=3 GB)",
    )
    cheapest = result.cheapest_overall()
    print(
        f"cheapest configuration: {cheapest.config} at "
        f"${min(cheapest.smj_dollars, cheapest.bhj_dollars):.3f}"
    )
    return result


if __name__ == "__main__":
    main()
