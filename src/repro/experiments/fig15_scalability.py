"""Fig 15: RAQO scalability over schema size and cluster size.

(a) "To evaluate the scalability with schema sizes, we used the randomly
generated schema (consisting of 100 tables), and ran queries with
increasingly larger number of relations ... The cached version of RAQO
improves over the non-cached version by almost 6x, while it is slower
than the plain QO only by a factor of 1.29x on average."

(b) "We took the largest query ... and increased the maximum cluster
capacity from 100 to 100K containers (in multiples of 10) with maximum
container size from 10GB to 100GB ... Such across-query caching is indeed
useful after 10K containers, with almost 30% improvements in planner
runtime."

The FastRandomized planner drives both sweeps (Selinger's dynamic
programming cannot reach 100-relation queries). Hill-climb step sizes come
from the cluster conditions (Algorithm 1's ``GetDiscreteSteps``): the
driver scales the container-count step so each axis keeps ~100 discrete
levels as the cluster grows to 100K containers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.catalog.random_schema import (
    RandomSchemaConfig,
    random_catalog,
    random_query,
)
from repro.catalog.schema import Catalog
from repro.cluster.cluster import ClusterConditions
from repro.core.plan_cache import LookupMode
from repro.core.raqo import PlannerKind, RaqoPlanner
from repro.experiments.report import print_table

#: Default query-size sweep (paper: 1..100 relations on a 100-table
#: schema; the default keeps the pure-Python run short -- pass
#: ``full=True`` for the paper's full range).
DEFAULT_SIZES = (2, 5, 10, 15, 20, 25, 30)
FULL_SIZES = (2, 8, 15, 22, 29, 36, 43, 50, 58, 66, 72, 86, 100)

#: Fig 15(b) cluster scaling: containers x10 each step, sizes +10 GB.
DEFAULT_CONTAINER_SCALE = (100, 1_000, 10_000, 100_000)
DEFAULT_SIZE_SCALE_GB = (10.0, 40.0, 70.0, 100.0)


@dataclass(frozen=True)
class SchemaScalePoint:
    """One query size's planner runtimes (ms)."""

    query_size: int
    qo_ms: float
    raqo_ms: float
    raqo_cached_ms: float
    raqo_iterations: int
    raqo_cached_iterations: int


@dataclass(frozen=True)
class SchemaScaleResult:
    """The Fig 15(a) series."""

    points: Tuple[SchemaScalePoint, ...]

    @property
    def mean_cache_speedup(self) -> float:
        """Cached over non-cached RAQO runtime (paper: ~6x)."""
        ratios = [
            p.raqo_ms / p.raqo_cached_ms
            for p in self.points
            if p.raqo_cached_ms > 0
        ]
        return sum(ratios) / len(ratios)

    @property
    def mean_overhead_vs_qo(self) -> float:
        """Cached RAQO over plain QO runtime (paper: ~1.29x)."""
        ratios = [
            p.raqo_cached_ms / p.qo_ms
            for p in self.points
            if p.qo_ms > 0
        ]
        return sum(ratios) / len(ratios)


def _make_planner(
    catalog: Catalog,
    cluster: ClusterConditions,
    resource_aware: bool,
    cache_mode: Optional[LookupMode],
    cache_threshold_gb: float = 0.05,
    clear_cache: bool = True,
    iterations: int = 2,
    seed: int = 0,
) -> RaqoPlanner:
    return RaqoPlanner(
        catalog,
        cluster=cluster,
        planner_kind=PlannerKind.FAST_RANDOMIZED,
        resource_aware=resource_aware,
        cache_mode=cache_mode,
        cache_threshold_gb=cache_threshold_gb,
        clear_cache_between_queries=clear_cache,
        randomized_iterations=iterations,
        seed=seed,
        # Isolate the resource plan cache's contribution: the within-run
        # memo would absorb the exact-repeat hits the figure measures.
        memoize_within_run=False,
    )


def run_schema_scaling(
    sizes: Sequence[int] = DEFAULT_SIZES,
    num_tables: int = 100,
    seed: int = 7,
    iterations: int = 2,
) -> SchemaScaleResult:
    """Fig 15(a): QO vs RAQO vs RAQO+cache over query sizes."""
    rng = np.random.default_rng(seed)
    catalog = random_catalog(
        RandomSchemaConfig(num_tables=num_tables), rng
    )
    cluster = ClusterConditions(max_containers=100, max_container_gb=10.0)
    qo = _make_planner(catalog, cluster, False, None, iterations=iterations)
    raqo = _make_planner(
        catalog, cluster, True, None, iterations=iterations
    )
    cached = _make_planner(
        catalog,
        cluster,
        True,
        LookupMode.NEAREST,
        iterations=iterations,
    )
    points = []
    for size in sizes:
        query = random_query(catalog, size, rng)
        qo_result = qo.optimize(query)
        raqo_result = raqo.optimize(query)
        cached_result = cached.optimize(query)
        points.append(
            SchemaScalePoint(
                query_size=size,
                qo_ms=qo_result.wall_time_s * 1000.0,
                raqo_ms=raqo_result.wall_time_s * 1000.0,
                raqo_cached_ms=cached_result.wall_time_s * 1000.0,
                raqo_iterations=raqo_result.resource_iterations,
                raqo_cached_iterations=(
                    cached_result.resource_iterations
                ),
            )
        )
    return SchemaScaleResult(points=tuple(points))


@dataclass(frozen=True)
class ResourceScalePoint:
    """One cluster condition's planner runtimes (ms)."""

    max_containers: int
    max_container_gb: float
    qo_ms: float
    raqo_ms: float
    raqo_across_query_ms: float
    raqo_iterations: int


@dataclass(frozen=True)
class ResourceScaleResult:
    """The Fig 15(b) series."""

    query_size: int
    points: Tuple[ResourceScalePoint, ...]

    def across_query_gain_at_scale(self) -> float:
        """Across-query caching speedup at the largest clusters
        (paper: ~30% after 10K containers)."""
        big = [
            p
            for p in self.points
            if p.max_containers >= 10_000 and p.raqo_across_query_ms > 0
        ]
        if not big:
            return 1.0
        ratios = [p.raqo_ms / p.raqo_across_query_ms for p in big]
        return sum(ratios) / len(ratios)


def scaled_cluster(
    max_containers: int, max_container_gb: float
) -> ClusterConditions:
    """Cluster conditions whose discrete granularity grows with scale.

    Algorithm 1 takes its step sizes from the cluster conditions
    (``GetDiscreteSteps``). Production-scale clusters expose coarser
    allocation steps, but the number of discrete levels still grows with
    the cluster (about 100 levels at 100 containers, ~3000 at 100K), so
    the resource-planning overhead rises with cluster size as in the
    paper's Fig 15(b).
    """
    levels = max(100, int(100 * (max_containers / 100) ** 0.5))
    return ClusterConditions(
        max_containers=max_containers,
        max_container_gb=max_container_gb,
        container_step=max(1, max_containers // levels),
        container_gb_step=max(1.0, max_container_gb / 100.0),
    )


def run_resource_scaling(
    query_size: int = 30,
    num_tables: int = 100,
    container_scale: Sequence[int] = DEFAULT_CONTAINER_SCALE,
    size_scale_gb: Sequence[float] = DEFAULT_SIZE_SCALE_GB,
    seed: int = 7,
    iterations: int = 1,
) -> ResourceScaleResult:
    """Fig 15(b): planner runtimes over growing cluster conditions."""
    rng = np.random.default_rng(seed)
    catalog = random_catalog(
        RandomSchemaConfig(num_tables=num_tables), rng
    )
    query = random_query(catalog, query_size, rng)
    points = []
    across = None  # built once; keeps its cache across conditions
    for max_containers in container_scale:
        for max_gb in size_scale_gb:
            cluster = scaled_cluster(max_containers, max_gb)
            qo = _make_planner(
                catalog, cluster, False, None, iterations=iterations
            )
            raqo = _make_planner(
                catalog,
                cluster,
                True,
                LookupMode.NEAREST,
                iterations=iterations,
            )
            if across is None:
                across = _make_planner(
                    catalog,
                    cluster,
                    True,
                    LookupMode.NEAREST,
                    clear_cache=False,
                    iterations=iterations,
                )
            qo_result = qo.optimize(query)
            raqo_result = raqo.optimize(query)
            across_result = across.replan(query, cluster)
            points.append(
                ResourceScalePoint(
                    max_containers=max_containers,
                    max_container_gb=max_gb,
                    qo_ms=qo_result.wall_time_s * 1000.0,
                    raqo_ms=raqo_result.wall_time_s * 1000.0,
                    raqo_across_query_ms=(
                        across_result.wall_time_s * 1000.0
                    ),
                    raqo_iterations=raqo_result.resource_iterations,
                )
            )
    return ResourceScaleResult(
        query_size=query_size, points=tuple(points)
    )


def main() -> Tuple[SchemaScaleResult, ResourceScaleResult]:
    """Print both Fig 15 series."""
    schema_result = run_schema_scaling()
    print_table(
        [
            "query size",
            "QO (ms)",
            "RAQO (ms)",
            "RAQO+cache (ms)",
            "RAQO iters",
            "cached iters",
        ],
        [
            (
                p.query_size,
                p.qo_ms,
                p.raqo_ms,
                p.raqo_cached_ms,
                p.raqo_iterations,
                p.raqo_cached_iterations,
            )
            for p in schema_result.points
        ],
        title="Fig 15(a): scalability over schema size",
    )
    print(
        f"cache speedup: {schema_result.mean_cache_speedup:.1f}x "
        "(paper: ~6x) | overhead vs QO: "
        f"{schema_result.mean_overhead_vs_qo:.2f}x (paper: 1.29x)\n"
    )
    resource_result = run_resource_scaling()
    print_table(
        [
            "max containers",
            "max GB",
            "QO (ms)",
            "RAQO (ms)",
            "RAQO across-query (ms)",
            "RAQO iters",
        ],
        [
            (
                p.max_containers,
                p.max_container_gb,
                p.qo_ms,
                p.raqo_ms,
                p.raqo_across_query_ms,
                p.raqo_iterations,
            )
            for p in resource_result.points
        ],
        title="Fig 15(b): scalability over cluster conditions "
        f"({resource_result.query_size}-relation query)",
    )
    print(
        "across-query caching gain at >=10K containers: "
        f"{resource_result.across_query_gain_at_scale():.2f}x "
        "(paper: ~1.3x)"
    )
    return schema_result, resource_result


if __name__ == "__main__":
    main()
