"""Fig 13: hill climbing vs brute force resource planning on TPC-H.

"Figure 13(a) shows the number of resource configurations explored using
hill climbing and brute force respectively. In general, hill climbing
explores 4 times less resource configurations than brute force ... We
observe similar improvements in runtime as well."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.catalog import tpch
from repro.catalog.queries import Query
from repro.core.raqo import RaqoPlanner, ResourcePlanningMethod
from repro.experiments.fig12_tpch_planning import SCALE_FACTOR
from repro.experiments.report import print_table


@dataclass(frozen=True)
class HillClimbRow:
    """One query's brute-force vs hill-climbing comparison."""

    query: str
    brute_force_iterations: int
    hill_climb_iterations: int
    brute_force_ms: float
    hill_climb_ms: float

    @property
    def iteration_reduction(self) -> float:
        """Fewer configurations explored by HC (paper: ~4x)."""
        if self.hill_climb_iterations == 0:
            return float("inf")
        return self.brute_force_iterations / self.hill_climb_iterations

    @property
    def runtime_reduction(self) -> float:
        """Runtime improvement from HC (paper: similar to iterations)."""
        if self.hill_climb_ms == 0:
            return float("inf")
        return self.brute_force_ms / self.hill_climb_ms


@dataclass(frozen=True)
class HillClimbResult:
    """The Fig 13 series."""

    rows: Tuple[HillClimbRow, ...]

    @property
    def mean_iteration_reduction(self) -> float:
        """Average explored-configuration reduction across queries."""
        reductions = [row.iteration_reduction for row in self.rows]
        return sum(reductions) / len(reductions)


def run(
    queries: Tuple[Query, ...] = tpch.EVALUATION_QUERIES,
) -> HillClimbResult:
    """Compare both resource-planning methods per query."""
    catalog = tpch.tpch_catalog(SCALE_FACTOR)
    planners = {
        method: RaqoPlanner(
            catalog, resource_method=method, cache_mode=None
        )
        for method in ResourcePlanningMethod
    }
    rows = []
    for query in queries:
        brute = planners[ResourcePlanningMethod.BRUTE_FORCE].optimize(
            query
        )
        climb = planners[ResourcePlanningMethod.HILL_CLIMB].optimize(
            query
        )
        rows.append(
            HillClimbRow(
                query=query.name,
                brute_force_iterations=brute.resource_iterations,
                hill_climb_iterations=climb.resource_iterations,
                brute_force_ms=brute.wall_time_s * 1000.0,
                hill_climb_ms=climb.wall_time_s * 1000.0,
            )
        )
    return HillClimbResult(rows=tuple(rows))


def main() -> HillClimbResult:
    """Print the Fig 13 series."""
    result = run()
    print_table(
        [
            "query",
            "brute force iters",
            "hill climb iters",
            "reduction",
            "brute force (ms)",
            "hill climb (ms)",
        ],
        [
            (
                r.query,
                r.brute_force_iterations,
                r.hill_climb_iterations,
                f"{r.iteration_reduction:.1f}x",
                r.brute_force_ms,
                r.hill_climb_ms,
            )
            for r in result.rows
        ],
        title="Fig 13: hill climbing vs brute force (Selinger planner)",
    )
    print(
        "mean explored-configuration reduction: "
        f"{result.mean_iteration_reduction:.1f}x (paper: ~4x)"
    )
    return result


if __name__ == "__main__":
    main()
