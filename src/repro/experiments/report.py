"""Plain-text tables for experiment output.

The benchmark harness prints the same rows/series the paper's figures
plot; this module renders them consistently.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def format_cell(value: Any) -> str:
    """Human-friendly rendering of one table cell."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    rendered_rows: List[List[str]] = [
        [format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        h.ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> None:
    """Print an aligned plain-text table."""
    print(format_table(headers, rows, title))
    print()
