"""CSV export for experiment results.

The benchmark harness prints human-readable tables; this module writes
the same series as CSV files so they can be plotted against the paper's
figures (every driver's result object exposes plain dataclasses, so the
export is generic over (headers, rows)).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, List, Sequence, Union

PathLike = Union[str, Path]


class ExportError(Exception):
    """Raised for malformed export requests."""


def write_csv(
    path: PathLike,
    headers: Sequence[str],
    rows: Iterable[Sequence],
) -> Path:
    """Write one series as a CSV file; returns the resolved path."""
    if not headers:
        raise ExportError("headers must be non-empty")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ExportError(
                    f"row has {len(row)} cells, expected {len(headers)}"
                )
            writer.writerow(row)
    return target


def read_csv(path: PathLike) -> List[List[str]]:
    """Read a CSV back (header row included) -- mainly for tests."""
    with Path(path).open(newline="") as handle:
        return [row for row in csv.reader(handle)]


def export_fig03(result: Any, directory: PathLike) -> List[Path]:
    """Export both Fig 3 sweeps (see fig03_operator_switch.run)."""
    base = Path(directory)
    size_path = write_csv(
        base / "fig03a_container_size.csv",
        ["container_gb", "smj_s", "bhj_s", "winner"],
        [
            (
                p.config.container_gb,
                p.smj_time_s,
                p.bhj_time_s,
                p.winner,
            )
            for p in result.container_size_sweep
        ],
    )
    count_path = write_csv(
        base / "fig03b_container_count.csv",
        ["num_containers", "smj_s", "bhj_s", "winner"],
        [
            (
                p.config.num_containers,
                p.smj_time_s,
                p.bhj_time_s,
                p.winner,
            )
            for p in result.container_count_sweep
        ],
    )
    return [size_path, count_path]


def export_fig12(result: Any, directory: PathLike) -> Path:
    """Export the Fig 12 planning grid."""
    return write_csv(
        Path(directory) / "fig12_tpch_planning.csv",
        [
            "query",
            "planner",
            "qo_ms",
            "raqo_ms",
            "resource_iterations",
        ],
        [
            (
                r.query,
                r.planner,
                r.qo_runtime_ms,
                r.raqo_runtime_ms,
                r.resource_iterations,
            )
            for r in result.rows
        ],
    )


def export_fig14(result: Any, directory: PathLike) -> Path:
    """Export the Fig 14 cache-effectiveness series."""
    return write_csv(
        Path(directory) / "fig14_plan_cache.csv",
        [
            "variant",
            "threshold_gb",
            "resource_iterations",
            "runtime_ms",
            "hits",
            "misses",
        ],
        [
            (
                p.variant,
                p.threshold_gb,
                p.resource_iterations,
                p.runtime_ms,
                p.cache_hits,
                p.cache_misses,
            )
            for p in result.points
        ],
    )


def export_queue_cdf(result: Any, directory: PathLike) -> Path:
    """Export the Fig 1 CDF points."""
    return write_csv(
        Path(directory) / "fig01_queue_cdf.csv",
        ["fraction_of_jobs", "queue_runtime_ratio"],
        list(result.cdf),
    )
