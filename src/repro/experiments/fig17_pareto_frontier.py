"""Fig 17 (extension): latency/dollar Pareto frontiers per query.

The paper's Sec VII collapses the latency-vs-money trade-off to one
scalarised argmin per query; this experiment shows the *shape* of the
trade-off the scalar knob hides. For each TPC-H evaluation query and
each cluster size, the joint plan's full per-stage resource frontier is
computed (:func:`repro.core.pareto.compute_frontier` via
``objective=PlanObjective.pareto()``) and summarised: how many
non-dominated operating points exist, how far apart the fastest and
cheapest points sit (the latency span you can sell for dollars), and
how many dominated (stage x configuration) candidates the skyline
pruned to get there.

Two regularities the table makes visible:

- Bigger clusters widen the frontier: more feasible configurations per
  stage means more distinct trade-off points and a larger
  fastest-to-cheapest dollar ratio.
- Deeper plans (more joins) multiply frontier points through the
  Minkowski fold of per-stage frontiers -- the trade-off is richer for
  exactly the queries where resource planning matters most.

Everything is a pure function of the catalog, cluster grid, and cost
model, so the table is bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.api import PlanObjective, RaqoSession
from repro.catalog import tpch
from repro.cluster.cluster import ClusterConditions
from repro.core.pareto import ParetoPlanningResult
from repro.core.raqo import ResourcePlanningMethod
from repro.experiments.report import print_table

#: Cluster sizes swept: (max_containers, max_container_gb).
CLUSTER_SIZES: Tuple[Tuple[int, float], ...] = (
    (10, 4.0),
    (20, 6.0),
    (40, 8.0),
)

#: TPC-H scale factor (the paper's evaluation scale).
SCALE_FACTOR = 100.0


@dataclass(frozen=True)
class FrontierPoint:
    """One (query, cluster) cell: the frontier's summary statistics."""

    query: str
    max_containers: int
    max_container_gb: float
    frontier_size: int
    fastest_s: float
    fastest_dollars: float
    cheapest_s: float
    cheapest_dollars: float
    dominated_pruned: int

    @property
    def dollar_ratio(self) -> float:
        """How much the fastest point costs over the cheapest."""
        if self.cheapest_dollars <= 0.0:
            return 1.0
        return self.fastest_dollars / self.cheapest_dollars

    @property
    def latency_ratio(self) -> float:
        """How much slower the cheapest point runs than the fastest."""
        if self.fastest_s <= 0.0:
            return 1.0
        return self.cheapest_s / self.fastest_s


@dataclass(frozen=True)
class FrontierResult:
    """The full sweep: (query, containers) -> frontier summary."""

    points: Tuple[FrontierPoint, ...]

    def for_cluster(
        self, max_containers: int
    ) -> Tuple[FrontierPoint, ...]:
        return tuple(
            p for p in self.points if p.max_containers == max_containers
        )


def run(
    cluster_sizes: Tuple[Tuple[int, float], ...] = CLUSTER_SIZES,
    scale_factor: float = SCALE_FACTOR,
) -> FrontierResult:
    """Compute frontier summaries for every evaluation query/cluster."""
    catalog = tpch.tpch_catalog(scale_factor)
    points: List[FrontierPoint] = []
    for max_containers, max_container_gb in cluster_sizes:
        session = RaqoSession(
            catalog,
            cluster=ClusterConditions(
                max_containers=max_containers,
                max_container_gb=max_container_gb,
            ),
            resource_method=ResourcePlanningMethod.BRUTE_FORCE,
            objective=PlanObjective.pareto(),
        )
        for query in tpch.EVALUATION_QUERIES:
            result = session.plan(query)
            assert isinstance(result, ParetoPlanningResult)
            frontier = result.frontier
            assert frontier is not None and frontier.points
            fastest = frontier.points[0]
            cheapest = frontier.points[-1]
            points.append(
                FrontierPoint(
                    query=query.name,
                    max_containers=max_containers,
                    max_container_gb=max_container_gb,
                    frontier_size=len(frontier),
                    fastest_s=fastest.time_s,
                    fastest_dollars=fastest.money,
                    cheapest_s=cheapest.time_s,
                    cheapest_dollars=cheapest.money,
                    dominated_pruned=frontier.dominated_pruned,
                )
            )
    return FrontierResult(points=tuple(points))


def main() -> FrontierResult:
    """Print the Fig 17 frontier-shape table."""
    result = run()
    rows = [
        [
            point.query,
            f"{point.max_containers}x{point.max_container_gb:g}GB",
            point.frontier_size,
            f"{point.fastest_s:.1f}",
            f"${point.fastest_dollars:.3f}",
            f"{point.cheapest_s:.1f}",
            f"${point.cheapest_dollars:.3f}",
            f"{point.dollar_ratio:.2f}x",
            point.dominated_pruned,
        ]
        for point in result.points
    ]
    print_table(
        [
            "query",
            "cluster",
            "points",
            "fastest (s)",
            "$ fastest",
            "cheapest (s)",
            "$ cheapest",
            "$ ratio",
            "pruned",
        ],
        rows,
        title="Fig 17: latency/dollar Pareto frontier per query",
    )
    widest = max(result.points, key=lambda p: p.frontier_size)
    print(
        f"\nWidest frontier: {widest.query} on "
        f"{widest.max_containers} x {widest.max_container_gb:g} GB "
        f"({widest.frontier_size} points; cheapest runs "
        f"{widest.latency_ratio:.1f}x slower for "
        f"{widest.dollar_ratio:.2f}x fewer dollars at the fast end)."
    )
    return result


if __name__ == "__main__":
    main()
