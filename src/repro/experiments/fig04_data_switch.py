"""Fig 4: BHJ/SMJ switch points over varying data size in Hive.

(a) sweeping the smaller relation with 3 GB vs 9 GB containers at 10
concurrent containers: "the switch point between BHJ and SMJ with 3 GB
containers is at 3.4 GB of the orders's size (BHJ runs out of memory after
that), whereas the switch point shifts to 6.4 GB with 9 GB containers."

(b) sweeping the smaller relation with 10 vs 40 concurrent containers at
3 GB each. Note: the paper's prose for 4(b) (switch point *rising* with
more containers) contradicts its own Fig 3(b) and the Sec VI-A regression
signs (SMJ benefits more from parallelism); our simulator follows the
latter, so the 40-container switch point is *lower* -- see EXPERIMENTS.md.

"The switch points are not static and the optimizer has to be aware of
both the data statistics and the available resources."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cluster.containers import ResourceConfiguration
from repro.core.switch_points import SwitchPoint, find_switch_point
from repro.engine.joins import bhj_execution, smj_execution
from repro.engine.profiles import EngineProfile, HIVE_PROFILE
from repro.experiments import workload
from repro.experiments.report import print_table


@dataclass(frozen=True)
class DataSweepSeries:
    """SMJ/BHJ time curves over the data axis for one configuration."""

    config: ResourceConfiguration
    data_gb: Tuple[float, ...]
    smj_time_s: Tuple[float, ...]
    bhj_time_s: Tuple[float, ...]
    switch: SwitchPoint


@dataclass(frozen=True)
class DataSwitchResult:
    """The four Fig 4 series, keyed by a readable label."""

    series: Dict[str, DataSweepSeries]

    def switch_gb(self, label: str) -> float:
        """The switch point of one series."""
        return self.series[label].switch.switch_gb


def _sweep(
    config: ResourceConfiguration, profile: EngineProfile
) -> DataSweepSeries:
    smj_times = []
    bhj_times = []
    for data_gb in workload.DATA_SWEEP_GB:
        smj_times.append(
            smj_execution(
                data_gb, workload.LINEITEM_GB, config, profile
            ).time_s
        )
        bhj_times.append(
            bhj_execution(
                data_gb, workload.LINEITEM_GB, config, profile
            ).time_s
        )
    return DataSweepSeries(
        config=config,
        data_gb=workload.DATA_SWEEP_GB,
        smj_time_s=tuple(smj_times),
        bhj_time_s=tuple(bhj_times),
        switch=find_switch_point(
            profile, workload.LINEITEM_GB, config, resolution_gb=0.1
        ),
    )


def run(profile: EngineProfile = HIVE_PROFILE) -> DataSwitchResult:
    """Run all four Fig 4 sweeps."""
    configs = {
        "cs=3GB,nc=10": ResourceConfiguration(

            num_containers=10, container_gb=3.0

        ),
        "cs=9GB,nc=10": ResourceConfiguration(

            num_containers=10, container_gb=9.0

        ),
        "cs=3GB,nc=40": ResourceConfiguration(

            num_containers=40, container_gb=3.0

        ),
    }
    return DataSwitchResult(
        series={
            label: _sweep(config, profile)
            for label, config in configs.items()
        }
    )


def main() -> DataSwitchResult:
    """Print the Fig 4 series and switch points."""
    result = run()
    for label, series in result.series.items():
        rows = []
        for i, data_gb in enumerate(series.data_gb):
            bhj = series.bhj_time_s[i]
            rows.append(
                (
                    data_gb,
                    series.smj_time_s[i],
                    bhj if math.isfinite(bhj) else float("inf"),
                )
            )
        print_table(
            ["smaller table (GB)", "SMJ (s)", "BHJ (s)"],
            rows,
            title=f"Fig 4 series {label}",
        )
        print(
            f"{label}: switch at {series.switch.switch_gb:.2f} GB "
            f"(OOM wall {series.switch.wall_gb:.2f} GB)\n"
        )
    return result


if __name__ == "__main__":
    main()
