"""Fig 10: the default decision trees for join selection in Hive & Spark.

Both engines ship a resource-oblivious rule -- broadcast when the small
relation is under 10 MB -- which renders as a single-split decision tree.
This driver also *learns* that tree with our CART classifier from samples
labelled by the default rule, verifying the classifier recovers the
threshold split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cluster.containers import ResourceConfiguration
from repro.core.decision_tree import DecisionTreeClassifier
from repro.core.rules import DefaultThresholdRule
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiles import EngineProfile, HIVE_PROFILE, SPARK_PROFILE


@dataclass(frozen=True)
class DefaultTreeResult:
    """The rendered Fig 10 trees and the learned equivalents."""

    rendered: Dict[str, str]
    learned_thresholds_gb: Dict[str, float]


def learn_default_tree(
    profile: EngineProfile,
) -> DecisionTreeClassifier:
    """Fit CART on samples labelled by the engine's default rule."""
    rule = DefaultThresholdRule(profile.default_broadcast_threshold_gb)
    config = ResourceConfiguration(num_containers=10, container_gb=4.0)
    features = []
    labels = []
    for data_mb in (1, 2, 5, 8, 12, 20, 50, 200, 1000, 5000):
        data_gb = data_mb / 1024.0
        choice = rule.choose(data_gb, 77.0, config)
        features.append((data_gb,))
        labels.append(
            "BHJ" if choice is JoinAlgorithm.BROADCAST_HASH else "SMJ"
        )
    tree = DecisionTreeClassifier()
    tree.fit(features, labels)
    return tree


def run() -> DefaultTreeResult:
    """Render and re-learn the Fig 10 trees."""
    rendered = {}
    thresholds = {}
    for profile in (HIVE_PROFILE, SPARK_PROFILE):
        rule = DefaultThresholdRule(
            profile.default_broadcast_threshold_gb
        )
        rendered[profile.name] = rule.export_text()
        tree = learn_default_tree(profile)
        root = tree.root
        assert root is not None and root.threshold is not None
        thresholds[profile.name] = float(root.threshold)
    return DefaultTreeResult(
        rendered=rendered, learned_thresholds_gb=thresholds
    )


def main() -> DefaultTreeResult:
    """Print the Fig 10 trees."""
    result = run()
    for engine, text in result.rendered.items():
        print(f"Fig 10 ({engine}): default decision tree")
        print(text)
        print(
            "learned threshold: "
            f"{result.learned_thresholds_gb[engine] * 1024:.1f} MB "
            "(engine rule: 10 MB)\n"
        )
    return result


if __name__ == "__main__":
    main()
