"""Fig 7: monetary switch points over varying data size in Hive.

The Fig 4 data sweeps priced in dollars: "the switch points for most cost
effective operator implementation vary both with the available resources
as well as the data. Thus ... query planning, without planning for
resources, could not only lead to poorer performance but also higher
monetary costs."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cluster.containers import ResourceConfiguration
from repro.core.monetary import monetary_switch_point
from repro.core.switch_points import SwitchPoint
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiles import EngineProfile, HIVE_PROFILE
from repro.experiments import workload
from repro.experiments.fig06_monetary import MonetaryComparison
from repro.core.monetary import compare_monetary
from repro.experiments.report import print_table


@dataclass(frozen=True)
class MonetarySwitchSeries:
    """Dollar-cost curves over the data axis for one configuration."""

    config: ResourceConfiguration
    data_gb: Tuple[float, ...]
    comparisons: Tuple[MonetaryComparison, ...]
    switch: SwitchPoint


@dataclass(frozen=True)
class MonetarySwitchResult:
    """The Fig 7 series, keyed by a readable label."""

    series: Dict[str, MonetarySwitchSeries]


def run(
    profile: EngineProfile = HIVE_PROFILE,
) -> MonetarySwitchResult:
    """Sweep the data axis for each Fig 7 configuration."""
    configs = {
        "cs=3GB,nc=10": ResourceConfiguration(

            num_containers=10, container_gb=3.0

        ),
        "cs=9GB,nc=10": ResourceConfiguration(

            num_containers=10, container_gb=9.0

        ),
        "cs=3GB,nc=10cont": ResourceConfiguration(

            num_containers=10, container_gb=3.0

        ),
        "cs=3GB,nc=40": ResourceConfiguration(

            num_containers=40, container_gb=3.0

        ),
    }
    series = {}
    for label, config in configs.items():
        comparisons = tuple(
            compare_monetary(
                data_gb, workload.LINEITEM_GB, config, profile
            )
            for data_gb in workload.DATA_SWEEP_GB
        )
        series[label] = MonetarySwitchSeries(
            config=config,
            data_gb=workload.DATA_SWEEP_GB,
            comparisons=comparisons,
            switch=monetary_switch_point(
                profile,
                workload.LINEITEM_GB,
                config,
                resolution_gb=0.1,
            ),
        )
    return MonetarySwitchResult(series=series)


def main() -> MonetarySwitchResult:
    """Print the Fig 7 switch points."""
    result = run()
    rows = []
    for label, entry in result.series.items():
        bhj_region = sum(
            1
            for c in entry.comparisons
            if c.cheaper is JoinAlgorithm.BROADCAST_HASH
        )
        rows.append(
            (
                label,
                entry.switch.switch_gb,
                entry.switch.wall_gb,
                bhj_region,
            )
        )
    print_table(
        [
            "configuration",
            "monetary switch (GB)",
            "OOM wall (GB)",
            "#points where BHJ cheaper",
        ],
        rows,
        title="Fig 7: monetary switch points over data size",
    )
    return result


if __name__ == "__main__":
    main()
