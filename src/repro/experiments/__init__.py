"""Experiment drivers: one module per figure of the paper's evaluation.

Each module exposes ``run(...)`` returning a structured result object and
``main()`` printing the same series the paper plots. The benchmark harness
(``benchmarks/``) wraps these drivers with pytest-benchmark; EXPERIMENTS.md
records paper-vs-measured for every figure.

| Module | Paper figure |
|---|---|
| :mod:`repro.experiments.fig01_queue_cdf`       | Fig 1  |
| :mod:`repro.experiments.fig02_potential_gains` | Fig 2  |
| :mod:`repro.experiments.fig03_operator_switch` | Fig 3  |
| :mod:`repro.experiments.fig04_data_switch`     | Fig 4  |
| :mod:`repro.experiments.fig05_join_order`      | Fig 5  |
| :mod:`repro.experiments.fig06_monetary`        | Fig 6  |
| :mod:`repro.experiments.fig07_monetary_switch` | Fig 7  |
| :mod:`repro.experiments.fig09_switch_space`    | Fig 9  |
| :mod:`repro.experiments.fig10_default_trees`   | Fig 10 |
| :mod:`repro.experiments.fig11_raqo_trees`      | Fig 11 |
| :mod:`repro.experiments.fig12_tpch_planning`   | Fig 12 |
| :mod:`repro.experiments.fig13_hill_climbing`   | Fig 13 |
| :mod:`repro.experiments.fig14_plan_cache`      | Fig 14 |
| :mod:`repro.experiments.fig15_scalability`     | Fig 15 |
"""
