"""Fig 14: effectiveness of the resource plan cache on TPC-H.

"Figures 14(a) and 14(b) show the number of resource configurations
explored and the planner runtime with and without the resource plan
cache ... (i) resource plan caching becomes more effective as we increase
the interpolation [threshold], and (ii) both the number of resources
configurations and the planner runtime decrease significantly with
resource plan caching (up to 10x planner time reduction for 0.1GB
threshold)."

All measurements use the TPC-H ``All`` query, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.catalog import tpch
from repro.catalog.queries import Query
from repro.core.plan_cache import LookupMode
from repro.core.raqo import RaqoPlanner
from repro.experiments.fig12_tpch_planning import SCALE_FACTOR
from repro.experiments.report import print_table

#: The paper's x-axis: data-delta thresholds in GB (0 = exact only).
THRESHOLDS_GB = (0.0, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1)


@dataclass(frozen=True)
class CachePoint:
    """One (variant, threshold) measurement."""

    variant: str
    threshold_gb: float
    resource_iterations: int
    runtime_ms: float
    cache_hits: int
    cache_misses: int


@dataclass(frozen=True)
class PlanCacheResult:
    """The Fig 14 series."""

    baseline_iterations: int
    baseline_runtime_ms: float
    points: Tuple[CachePoint, ...]

    def best_iteration_reduction(self) -> float:
        """Largest explored-configuration reduction over the baseline."""
        best = min(
            point.resource_iterations for point in self.points
        )
        if best == 0:
            return float("inf")
        return self.baseline_iterations / best


def _measure(
    planner: RaqoPlanner, query: Query, repetitions: int
) -> Tuple[int, float, int, int]:
    iterations = hits = misses = 0
    total_s = 0.0
    for _ in range(repetitions):
        result = planner.optimize(query)
        iterations = result.resource_iterations
        hits = result.counters.cache_hits
        misses = result.counters.cache_misses
        total_s += result.wall_time_s
    return iterations, total_s / repetitions * 1000.0, hits, misses


def run(
    query: Query = tpch.QUERY_ALL, repetitions: int = 3
) -> PlanCacheResult:
    """Measure HC alone vs HC + caching variants over thresholds."""
    catalog = tpch.tpch_catalog(SCALE_FACTOR)
    # The within-run memo is disabled throughout so the figure isolates
    # the resource plan cache's contribution, as in the paper.
    baseline = RaqoPlanner(
        catalog, cache_mode=None, memoize_within_run=False
    )
    base_iters, base_ms, _, _ = _measure(baseline, query, repetitions)

    points = []
    for mode, variant in (
        (LookupMode.NEAREST, "HC+Caching_NN"),
        (LookupMode.WEIGHTED_AVERAGE, "HC+Caching_WA"),
    ):
        for threshold in THRESHOLDS_GB:
            planner = RaqoPlanner(
                catalog,
                cache_mode=mode,
                cache_threshold_gb=threshold,
                memoize_within_run=False,
            )
            iters, ms, hits, misses = _measure(
                planner, query, repetitions
            )
            points.append(
                CachePoint(
                    variant=variant,
                    threshold_gb=threshold,
                    resource_iterations=iters,
                    runtime_ms=ms,
                    cache_hits=hits,
                    cache_misses=misses,
                )
            )
    return PlanCacheResult(
        baseline_iterations=base_iters,
        baseline_runtime_ms=base_ms,
        points=tuple(points),
    )


def main() -> PlanCacheResult:
    """Print the Fig 14 series."""
    result = run()
    print(
        f"HillClimbing (no cache): {result.baseline_iterations} "
        f"iterations, {result.baseline_runtime_ms:.1f} ms"
    )
    print_table(
        [
            "variant",
            "threshold (GB)",
            "#resource iters",
            "runtime (ms)",
            "hits",
            "misses",
        ],
        [
            (
                p.variant,
                f"{p.threshold_gb:g}",
                p.resource_iterations,
                p.runtime_ms,
                p.cache_hits,
                p.cache_misses,
            )
            for p in result.points
        ],
        title="Fig 14: resource plan cache effectiveness (TPC-H All)",
    )
    print(
        "best explored-configuration reduction: "
        f"{result.best_iteration_reduction():.1f}x (paper: up to ~10x "
        "runtime at 0.1 GB threshold)"
    )
    return result


if __name__ == "__main__":
    main()
