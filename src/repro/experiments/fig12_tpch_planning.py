"""Fig 12: RAQO planning on the TPC-H schema.

"We tested RAQO using two query planner prototypes: a modern randomized
algorithm to pick the best join ordering [FastRandomized], and a
traditional System R style bottom-up join ordering algorithm [Selinger]
... we could still generate both the resource and the query plans in a
few milliseconds. However, resource planning does add an overhead to the
standard query planning."

For each of Q12, Q3, Q2, All and each planner we report the plain QO
runtime, the RAQO runtime (hill climbing, no caching -- the Fig 12
configuration), and the number of resource configurations explored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.catalog import tpch
from repro.catalog.queries import Query
from repro.core.raqo import PlannerKind, RaqoPlanner
from repro.experiments.report import print_table

#: TPC-H scale factor used throughout the planning evaluation.
SCALE_FACTOR = 100.0


@dataclass(frozen=True)
class PlanningRow:
    """One (query, planner) cell of Fig 12."""

    query: str
    planner: str
    qo_runtime_ms: float
    raqo_runtime_ms: float
    resource_iterations: int
    raqo_cost_s: float

    @property
    def overhead(self) -> float:
        """RAQO runtime relative to plain QO."""
        if self.qo_runtime_ms == 0:
            return float("inf")
        return self.raqo_runtime_ms / self.qo_runtime_ms


@dataclass(frozen=True)
class TpchPlanningResult:
    """The full Fig 12 grid."""

    rows: Tuple[PlanningRow, ...]

    def row(self, query: str, planner: str) -> PlanningRow:
        """Lookup one cell."""
        for row in self.rows:
            if row.query == query and row.planner == planner:
                return row
        raise KeyError((query, planner))


def run(
    queries: Tuple[Query, ...] = tpch.EVALUATION_QUERIES,
    repetitions: int = 3,
) -> TpchPlanningResult:
    """Run the Fig 12 grid; runtimes averaged over ``repetitions``."""
    catalog = tpch.tpch_catalog(SCALE_FACTOR)
    rows = []
    for planner_kind in (PlannerKind.FAST_RANDOMIZED, PlannerKind.SELINGER):
        qo = RaqoPlanner.two_step_baseline(
            catalog, planner_kind=planner_kind
        )
        # Fig 12 runs RAQO with hill climbing but without plan caching.
        raqo = RaqoPlanner(
            catalog, planner_kind=planner_kind, cache_mode=None
        )
        for query in queries:
            qo_ms = _avg_runtime_ms(qo, query, repetitions)
            raqo_ms = _avg_runtime_ms(raqo, query, repetitions)
            result = raqo.optimize(query)
            rows.append(
                PlanningRow(
                    query=query.name,
                    planner=str(planner_kind),
                    qo_runtime_ms=qo_ms,
                    raqo_runtime_ms=raqo_ms,
                    resource_iterations=result.resource_iterations,
                    raqo_cost_s=result.cost.time_s,
                )
            )
    return TpchPlanningResult(rows=tuple(rows))


def _avg_runtime_ms(
    planner: RaqoPlanner, query: Query, repetitions: int
) -> float:
    # One untimed warm-up first: the process's first optimize() pays
    # one-time costs (cost-model fitting, numpy first-touch) that would
    # otherwise land entirely on whichever grid cell happens to run
    # first and invert the QO-vs-RAQO overhead comparison.
    planner.optimize(query)
    total = 0.0
    for _ in range(repetitions):
        total += planner.optimize(query).wall_time_s
    return total / repetitions * 1000.0


def main() -> TpchPlanningResult:
    """Print the Fig 12 grid."""
    result = run()
    print_table(
        [
            "query",
            "planner",
            "QO (ms)",
            "RAQO (ms)",
            "overhead",
            "#resource iters",
        ],
        [
            (
                r.query,
                r.planner,
                r.qo_runtime_ms,
                r.raqo_runtime_ms,
                f"{r.overhead:.1f}x",
                r.resource_iterations,
            )
            for r in result.rows
        ],
        title="Fig 12: RAQO planning on TPC-H (SF "
        f"{SCALE_FACTOR:g}, 100 x 10 GB cluster)",
    )
    return result


if __name__ == "__main__":
    main()
