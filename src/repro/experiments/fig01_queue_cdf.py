"""Fig 1: CDF of the queue-time / execution-time ratio on a shared cluster.

The paper's headline statistics from production Microsoft clusters:
"more than 80% of the jobs spend as much time waiting for resources in
the queue as in the actual job execution. More than 20% of the jobs spend
at least 4 times their execution time waiting."

We regenerate the distribution from the synthetic bursty trace of
:mod:`repro.cluster.trace` driven through the FIFO resource manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.cluster.trace import (
    TraceConfig,
    fraction_with_ratio_at_least,
    ratio_cdf,
    simulate_trace,
)
from repro.experiments.report import print_table

#: CDF fractions reported in the output series.
REPORT_FRACTIONS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


@dataclass(frozen=True)
class QueueCdfResult:
    """The Fig 1 series plus the paper's two headline statistics."""

    cdf: Tuple[Tuple[float, float], ...]  # (fraction of jobs, ratio)
    fraction_ratio_ge_1: float
    fraction_ratio_ge_4: float
    num_jobs: int


def run(
    config: TraceConfig = TraceConfig(), seed: int = 7
) -> QueueCdfResult:
    """Simulate the trace and compute the CDF."""
    rng = np.random.default_rng(seed)
    records = simulate_trace(config, rng)
    fractions, ratios = ratio_cdf(records)
    points: List[Tuple[float, float]] = []
    for target in REPORT_FRACTIONS:
        index = min(
            int(round(target * len(ratios))), len(ratios) - 1
        )
        points.append((float(fractions[index]), float(ratios[index])))
    return QueueCdfResult(
        cdf=tuple(points),
        fraction_ratio_ge_1=fraction_with_ratio_at_least(records, 1.0),
        fraction_ratio_ge_4=fraction_with_ratio_at_least(records, 4.0),
        num_jobs=len(records),
    )


def main() -> QueueCdfResult:
    """Print the Fig 1 series."""
    result = run()
    print_table(
        ["fraction of jobs", "queue/runtime ratio"],
        [(f"{frac:.2f}", ratio) for frac, ratio in result.cdf],
        title="Fig 1: queue-time/runtime ratio CDF "
        f"({result.num_jobs} jobs)",
    )
    print(
        f"jobs with ratio >= 1: {result.fraction_ratio_ge_1:.1%} "
        "(paper: >80%)"
    )
    print(
        f"jobs with ratio >= 4: {result.fraction_ratio_ge_4:.1%} "
        "(paper: >20%)"
    )
    return result


if __name__ == "__main__":
    main()
