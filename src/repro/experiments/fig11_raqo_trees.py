"""Fig 11: the learned RAQO decision trees for Hive and Spark.

"We ran the decision tree classifier ... over the switch point results in
Figure 9, with two target classes namely SMJ and BHJ ... The RAQO trees
are a bit more complicated, i.e., they have more branching based on not
only the data sizes, but also the container sizes and the number of
containers ... maximum path length in the RAQO decision trees is 6 for
Hive and 7 for Spark."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


from repro.core.rules import RaqoDecisionTreeRule
from repro.core.switch_points import labeled_samples
from repro.engine.profiles import EngineProfile, HIVE_PROFILE, SPARK_PROFILE

#: Training grids per engine: data sizes tuned to each engine's switch
#: range (GB for Hive, hundreds of MB for Spark).
HIVE_GRID = {
    "large_gb": 77.0,
    "data_sizes_gb": tuple(round(0.4 * i, 2) for i in range(1, 26)),
    "container_sizes_gb": (3.0, 5.0, 7.0, 9.0, 11.0),
    "container_counts": (5, 9, 10, 20, 40),
    "reducer_settings": (None, 200, 1000),
}
SPARK_GRID = {
    "large_gb": 10.0,
    "data_sizes_gb": tuple(round(0.05 * i, 2) for i in range(1, 31)),
    "container_sizes_gb": (3.0, 5.0, 7.0, 9.0, 11.0),
    "container_counts": (6, 10, 20, 40),
    "reducer_settings": (None, 200, 1000),
}


@dataclass(frozen=True)
class RaqoTreeResult:
    """One engine's learned RAQO tree plus its quality metrics."""

    engine: str
    rule: RaqoDecisionTreeRule
    num_samples: int
    training_accuracy: float
    max_path_length: int
    num_leaves: int


def run(
    profile: EngineProfile = HIVE_PROFILE,
    max_depth: Optional[int] = 7,
) -> RaqoTreeResult:
    """Train one engine's RAQO tree from its data-resource grid.

    ``max_depth`` bounds tree complexity the way the paper's pruning
    discussion anticipates (their path lengths were 6-7).
    """
    grid = SPARK_GRID if profile.name == "spark" else HIVE_GRID
    samples = labeled_samples(
        profile,
        grid["large_gb"],
        grid["data_sizes_gb"],
        grid["container_sizes_gb"],
        grid["container_counts"],
        grid["reducer_settings"],
    )
    rule = RaqoDecisionTreeRule.from_samples(
        samples, profile, max_depth=max_depth
    )
    accuracy = rule.tree.accuracy(
        [s.features for s in samples], [s.label for s in samples]
    )
    return RaqoTreeResult(
        engine=profile.name,
        rule=rule,
        num_samples=len(samples),
        training_accuracy=accuracy,
        max_path_length=rule.max_path_length,
        num_leaves=rule.tree.num_leaves,
    )


def main() -> Tuple[RaqoTreeResult, RaqoTreeResult]:
    """Print both Fig 11 trees."""
    results = []
    for profile in (HIVE_PROFILE, SPARK_PROFILE):
        result = run(profile)
        results.append(result)
        print(f"Fig 11 ({result.engine}): RAQO decision tree")
        print(result.rule.export_text())
        print(
            f"samples={result.num_samples} "
            f"accuracy={result.training_accuracy:.3f} "
            f"max path length={result.max_path_length} "
            "(paper: 6 for Hive, 7 for Spark) "
            f"leaves={result.num_leaves}\n"
        )
    return tuple(results)


if __name__ == "__main__":
    main()
