"""Fig 16 (extension): plan robustness under deterministic fault injection.

The paper argues resource-aware plans are better placed on shared,
volatile clusters; this experiment makes that claim measurable. A seeded
workload is planned twice -- jointly (RAQO) and with the two-step
baseline (join order first, static default resources later) -- and both
plan sets execute under increasing fault intensity: container
preemptions, memory-pressure-scaled OOM kills, and stragglers, with the
stock recovery policy (capped-backoff retries, speculation, BHJ -> SMJ
degradation).

Because injected OOM kills scale with how close an operator sits to its
hash-budget wall, plans that chose containers with memory headroom (the
resource-aware ones) are structurally less exposed: they see fewer OOM
kills, degrade fewer BHJ stages, and their slowdown-vs-fault-free curve
rises more slowly than the baseline's. Every number is a pure function
of the seeds, so the sweep is bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.api import RaqoSession
from repro.catalog import tpch
from repro.engine.profiles import EngineProfile, HIVE_PROFILE
from repro.experiments.report import print_table
from repro.faults.model import FaultPlan, FaultSpec
from repro.faults.recovery import DEFAULT_RECOVERY
from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.runner import WorkloadReport

#: Fault intensities swept (the base OOM rate; preemption and straggler
#: rates scale at half intensity).
FAULT_INTENSITIES: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.4)

#: Workload generator / fault seed.
SEED = 11

#: Queries in the robustness workload.
NUM_QUERIES = 10


def fault_spec_for(intensity: float, seed: int = SEED) -> FaultSpec:
    """The fault mix at one sweep intensity."""
    return FaultSpec(
        seed=seed,
        preemption_rate=intensity / 2.0,
        oom_rate=intensity,
        straggler_rate=intensity / 2.0,
        straggler_slowdown=3.0,
    )


@dataclass(frozen=True)
class RobustnessPoint:
    """One (planner, intensity) cell of the sweep."""

    label: str
    intensity: float
    executed_time_s: float
    gb_seconds: float
    faults_injected: int
    retries: int
    degraded_stages: int
    failed_queries: int
    #: Executed time over the same planner's fault-free time.
    slowdown: float


@dataclass(frozen=True)
class RobustnessResult:
    """The full sweep: planner label -> ordered intensity points."""

    series: Dict[str, Tuple[RobustnessPoint, ...]]

    def slowdown_at(self, label: str, intensity: float) -> float:
        """The slowdown of one planner at one intensity."""
        for point in self.series[label]:
            if point.intensity == intensity:
                return point.slowdown
        raise KeyError(f"no point at intensity {intensity} for {label}")

    def max_slowdown(self, label: str) -> float:
        """The worst slowdown a planner's plans suffered in the sweep."""
        return max(point.slowdown for point in self.series[label])


def _point(
    label: str, intensity: float, report: WorkloadReport, base_time_s: float
) -> RobustnessPoint:
    return RobustnessPoint(
        label=label,
        intensity=intensity,
        executed_time_s=report.total_executed_time_s,
        gb_seconds=sum(
            o.executed_gb_seconds for o in report.outcomes
        ),
        faults_injected=report.total_faults_injected,
        retries=report.total_retries,
        degraded_stages=report.total_degraded_stages,
        failed_queries=report.infeasible_queries,
        slowdown=(
            report.total_executed_time_s / base_time_s
            if base_time_s > 0
            else float("inf")
        ),
    )


def run(
    profile: EngineProfile = HIVE_PROFILE,
    intensities: Tuple[float, ...] = FAULT_INTENSITIES,
    num_queries: int = NUM_QUERIES,
    seed: int = SEED,
) -> RobustnessResult:
    """Sweep fault intensity against plan choice."""
    catalog = tpch.tpch_catalog(100)
    queries = generate_workload(
        catalog,
        WorkloadSpec(num_queries=num_queries),
        np.random.default_rng(seed),
    )
    sessions = {
        "raqo": RaqoSession(catalog, profile),
        "two_step": RaqoSession(catalog, profile, resource_aware=False),
    }
    series: Dict[str, Tuple[RobustnessPoint, ...]] = {}
    for label, session in sessions.items():
        points: List[RobustnessPoint] = []
        base_time_s = 0.0
        for intensity in intensities:
            spec = fault_spec_for(intensity, seed)
            report = session.workload(
                queries,
                label=label,
                faults=FaultPlan(spec),
                recovery=DEFAULT_RECOVERY,
            )
            if intensity == 0.0:
                base_time_s = report.total_executed_time_s
            points.append(
                _point(label, intensity, report, base_time_s)
            )
        series[label] = tuple(points)
    return RobustnessResult(series=series)


def main() -> RobustnessResult:
    """Print the robustness sweep."""
    result = run()
    rows: List[Tuple] = []
    for label, points in result.series.items():
        for point in points:
            rows.append(
                (
                    label,
                    point.intensity,
                    round(point.executed_time_s, 1),
                    round(point.slowdown, 3),
                    point.faults_injected,
                    point.retries,
                    point.degraded_stages,
                    point.failed_queries,
                )
            )
    print_table(
        [
            "planner",
            "intensity",
            "time (s)",
            "slowdown",
            "faults",
            "retries",
            "degraded",
            "failed",
        ],
        rows,
        title=(
            "Fig 16: executed-time degradation under fault injection "
            f"({NUM_QUERIES} queries, seed {SEED})"
        ),
    )
    raqo_worst = result.max_slowdown("raqo")
    baseline_worst = result.max_slowdown("two_step")
    print(
        f"worst-case slowdown: raqo {raqo_worst:.2f}x vs two-step "
        f"{baseline_worst:.2f}x -- resource-aware plans keep more "
        "memory headroom and so absorb OOM pressure more gracefully"
    )
    return result


if __name__ == "__main__":
    main()
