"""Fig 9: the space of BHJ/SMJ switch points in Hive and Spark.

"Figures 9(a) and 9(b) show the switch points in terms of size of the
smaller join relation between BHJ and SMJ in Hive and Spark over different
combinations of container size, number of containers, and number of
reducers ... for small relation sizes within the region below the
corresponding curve, we suggest choosing a BHJ, otherwise a SMJ."

Key observations reproduced: (i) optimizer choices change significantly
across the space, (ii) increasing the container size helps BHJ only up to
a point, and (iii) the default 10 MB rule is way off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.switch_points import SwitchPoint, switch_point_surface
from repro.engine.profiles import EngineProfile, HIVE_PROFILE, SPARK_PROFILE
from repro.experiments.report import print_table

#: Container sizes swept for both engines (the paper's 3-11 GB x-axis).
CONTAINER_SIZES_GB = (3.0, 5.0, 7.0, 9.0, 11.0)

#: <#containers, #reducers> combinations, as in the paper's legends
#: (None = the engine's automatic reducer count, the "default").
HIVE_COMBOS: Tuple[Tuple[int, Optional[int]], ...] = (
    (5, 200),
    (5, 1000),
    (9, 200),
    (9, 1000),
    (10, None),
)
SPARK_COMBOS: Tuple[Tuple[int, Optional[int]], ...] = (
    (6, 200),
    (6, 1000),
    (10, 200),
    (10, 1000),
    (10, None),
)


@dataclass(frozen=True)
class SwitchSpaceResult:
    """Per-engine switch-point curves over container size."""

    engine: str
    large_gb: float
    #: (num_containers, num_reducers) -> ordered switch points.
    curves: Dict[Tuple[int, Optional[int]], Tuple[SwitchPoint, ...]]
    default_threshold_gb: float

    def default_rule_error(self) -> float:
        """How far (in GB) the 10 MB default rule is from the nearest
        real switch point -- the paper's observation (iii)."""
        gaps = [
            point.switch_gb - self.default_threshold_gb
            for curve in self.curves.values()
            for point in curve
        ]
        return min(gaps)


def run(
    profile: EngineProfile = HIVE_PROFILE,
    resolution_gb: float = 0.05,
) -> SwitchSpaceResult:
    """Compute the Fig 9 surface for one engine."""
    if profile.name == "spark":
        combos = SPARK_COMBOS
        large_gb = 10.0
    else:
        combos = HIVE_COMBOS
        large_gb = 77.0
    curves = {}
    for num_containers, num_reducers in combos:
        points = switch_point_surface(
            profile,
            large_gb,
            CONTAINER_SIZES_GB,
            [num_containers],
            [num_reducers],
            resolution_gb=resolution_gb,
        )
        curves[(num_containers, num_reducers)] = tuple(points)
    return SwitchSpaceResult(
        engine=profile.name,
        large_gb=large_gb,
        curves=curves,
        default_threshold_gb=profile.default_broadcast_threshold_gb,
    )


def main() -> Tuple[SwitchSpaceResult, SwitchSpaceResult]:
    """Print the Fig 9 surfaces for Hive and Spark."""
    results = []
    for profile in (HIVE_PROFILE, SPARK_PROFILE):
        result = run(profile)
        results.append(result)
        unit = "GB" if result.engine == "hive" else "MB"
        scale = 1.0 if result.engine == "hive" else 1024.0
        rows: List[Tuple] = []
        for (nc, nr), points in result.curves.items():
            label = f"<{nc},{nr if nr is not None else 'default'}>"
            rows.append(
                tuple(
                    [label]
                    + [round(p.switch_gb * scale, 2) for p in points]
                )
            )
        print_table(
            ["<#containers,#reducers>"]
            + [f"cs={int(cs)}GB ({unit})" for cs in CONTAINER_SIZES_GB],
            rows,
            title=f"Fig 9 ({result.engine}): switch points over the "
            "data-resource space",
        )
        print(
            f"{result.engine}: default 10 MB rule is at least "
            f"{result.default_rule_error() * scale:.1f} {unit} below "
            "every real switch point\n"
        )
    return tuple(results)


if __name__ == "__main__":
    main()
