"""Fig 5: join order decisions over varying resources in Hive.

The paper's two-way join query (a simplified TPC-H Q3):
``select * from customer, orders, lineitem where c_custkey = o_custkey
and l_orderkey = o_orderkey``, with ``orders`` subsampled to 850 MB "so
that we can employ more BHJs, and make the plan choice more interesting".

- **Plan 1** first performs a BHJ between lineitem and orders (broadcasting
  orders), then a BHJ with customer.
- **Plan 2** follows a different join order: a BHJ between orders and
  customer, then an SMJ with lineitem.

Paper findings reproduced: container size barely affects either plan and
plan 1 wins across the container-size sweep (but has an OOM wall at small
containers), while growing the number of concurrent containers eventually
makes plan 2 the winner (the paper's crossover is at 32 containers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.catalog.join_graph import JoinEdge, JoinGraph
from repro.catalog.schema import Catalog, Schema, Table
from repro.catalog.statistics import StatisticsEstimator
from repro.cluster.containers import ResourceConfiguration
from repro.engine.executor import execute_plan
from repro.engine.joins import JoinAlgorithm
from repro.engine.profiles import EngineProfile, HIVE_PROFILE
from repro.experiments.report import print_table
from repro.planner.plan import JoinNode, PlanNode, ScanNode

#: SF-100 cardinalities; orders subsampled to ~850 MB as in the paper.
FULL_ORDERS_ROWS = 150_000_000
SAMPLED_ORDERS_ROWS = 7_540_000  # ~850 MB at 121 B/row
CUSTOMER_ROWS = 15_000_000
LINEITEM_ROWS = 600_000_000


def q3_catalog(
    sampled_orders_rows: int = SAMPLED_ORDERS_ROWS,
) -> Catalog:
    """The paper's Fig 5 catalog: customer, sampled orders, lineitem.

    The lineitem-orders selectivity stays ``1/|full orders|`` -- sampling
    orders removes matching lineitems rather than densifying the join.
    """
    schema = Schema(
        "fig5",
        tables=[
            Table("customer", CUSTOMER_ROWS, row_width_bytes=179),
            Table("orders", sampled_orders_rows, row_width_bytes=121),
            Table("lineitem", LINEITEM_ROWS, row_width_bytes=129),
        ],
    )
    graph = JoinGraph(
        edges=[
            JoinEdge(
                "orders",
                "customer",
                selectivity=1.0 / CUSTOMER_ROWS,
                left_column="o_custkey",
                right_column="c_custkey",
            ),
            JoinEdge(
                "lineitem",
                "orders",
                selectivity=1.0 / FULL_ORDERS_ROWS,
                left_column="l_orderkey",
                right_column="o_orderkey",
            ),
        ]
    )
    return Catalog(schema=schema, join_graph=graph)


def plan_one() -> PlanNode:
    """Plan 1: BHJ(lineitem, orders) then BHJ with customer."""
    return JoinNode(
        left=JoinNode(
            left=ScanNode("lineitem"),
            right=ScanNode("orders"),
            algorithm=JoinAlgorithm.BROADCAST_HASH,
        ),
        right=ScanNode("customer"),
        algorithm=JoinAlgorithm.BROADCAST_HASH,
    )


def plan_two() -> PlanNode:
    """Plan 2: BHJ(orders, customer) then SMJ with lineitem."""
    return JoinNode(
        left=JoinNode(
            left=ScanNode("orders"),
            right=ScanNode("customer"),
            algorithm=JoinAlgorithm.BROADCAST_HASH,
        ),
        right=ScanNode("lineitem"),
        algorithm=JoinAlgorithm.SORT_MERGE,
    )


@dataclass(frozen=True)
class JoinOrderPoint:
    """Both plans' execution times at one configuration."""

    config: ResourceConfiguration
    plan1_time_s: float
    plan2_time_s: float

    @property
    def winner(self) -> str:
        """The faster plan at this point."""
        if not math.isfinite(self.plan1_time_s):
            return "Plan 2"
        return (
            "Plan 1"
            if self.plan1_time_s <= self.plan2_time_s
            else "Plan 2"
        )


@dataclass(frozen=True)
class JoinOrderResult:
    """Both Fig 5 sweeps."""

    container_size_sweep: Tuple[JoinOrderPoint, ...]
    container_count_sweep: Tuple[JoinOrderPoint, ...]

    def crossover_containers(self) -> Optional[int]:
        """The container count where plan 2 overtakes (paper: 32)."""
        for point in self.container_count_sweep:
            if point.winner == "Plan 2" and math.isfinite(
                point.plan1_time_s
            ):
                return point.config.num_containers
        return None


def run(profile: EngineProfile = HIVE_PROFILE) -> JoinOrderResult:
    """Execute both plans over both resource sweeps."""
    estimator = StatisticsEstimator(q3_catalog())

    def point(config: ResourceConfiguration) -> JoinOrderPoint:
        one = execute_plan(
            plan_one(), estimator, profile, default_resources=config
        )
        two = execute_plan(
            plan_two(), estimator, profile, default_resources=config
        )
        return JoinOrderPoint(
            config=config,
            plan1_time_s=one.time_s,
            plan2_time_s=two.time_s,
        )

    size_sweep = tuple(
        point(ResourceConfiguration(num_containers=10, container_gb=size))
        for size in (2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0)
    )
    count_sweep = tuple(
        point(ResourceConfiguration(num_containers=count, container_gb=3.0))
        for count in (8, 12, 16, 20, 24, 28, 32, 36, 40, 44)
    )
    return JoinOrderResult(
        container_size_sweep=size_sweep,
        container_count_sweep=count_sweep,
    )


def main() -> JoinOrderResult:
    """Print the Fig 5 series."""
    result = run()
    print_table(
        ["container size (GB)", "Plan 1 (s)", "Plan 2 (s)", "winner"],
        [
            (
                p.config.container_gb,
                p.plan1_time_s,
                p.plan2_time_s,
                p.winner,
            )
            for p in result.container_size_sweep
        ],
        title="Fig 5(a): join orders over container size (nc=10)",
    )
    print_table(
        ["#containers", "Plan 1 (s)", "Plan 2 (s)", "winner"],
        [
            (
                p.config.num_containers,
                p.plan1_time_s,
                p.plan2_time_s,
                p.winner,
            )
            for p in result.container_count_sweep
        ],
        title="Fig 5(b): join orders over #containers (cs=3 GB)",
    )
    print(
        "plan 2 overtakes at",
        result.crossover_containers(),
        "containers (paper: 32)",
    )
    return result


if __name__ == "__main__":
    main()
