"""Shared workload constants for the Sec III microbenchmark figures.

The paper's single-join query is ``select * from orders, lineitem where
o_orderkey = l_orderkey`` at TPC-H scale factor 100, where ``lineitem`` is
~77 GB and ``orders`` is subsampled to control the smaller relation's size
("we adjusted the smaller table orders size proportionally with the
resources we had in hand"). The constants below are the sizes the paper's
figures anchor on.
"""

from __future__ import annotations

from typing import List

from repro.cluster.containers import ResourceConfiguration

#: The large join side: the full SF-100 lineitem table (GB).
LINEITEM_GB = 77.0

#: The subsampled orders table used for the Fig 3(a) container-size sweep.
ORDERS_LARGE_GB = 5.1

#: The subsampled orders table used for the Fig 3(b) container-count sweep.
ORDERS_SMALL_GB = 3.4

#: Fig 3(a): 10 containers of varying size.
CONTAINER_SIZE_SWEEP_GB = (2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0)
CONTAINER_SIZE_SWEEP_NC = 10

#: Fig 3(b): 3 GB containers, varying count.
CONTAINER_COUNT_SWEEP = (5, 10, 15, 20, 25, 30, 35, 40, 45)
CONTAINER_COUNT_SWEEP_GB = 3.0

#: Fig 4: data sweep range for the smaller relation (GB).
DATA_SWEEP_GB = tuple(round(0.5 * i, 1) for i in range(1, 25))


def container_size_configs() -> List[ResourceConfiguration]:
    """The Fig 3(a)/5(a)/6(a) resource configurations."""
    return [
        ResourceConfiguration(
            num_containers=CONTAINER_SIZE_SWEEP_NC, container_gb=size
        )
        for size in CONTAINER_SIZE_SWEEP_GB
    ]


def container_count_configs() -> List[ResourceConfiguration]:
    """The Fig 3(b)/5(b)/6(b) resource configurations."""
    return [
        ResourceConfiguration(
            num_containers=count, container_gb=CONTAINER_COUNT_SWEEP_GB
        )
        for count in CONTAINER_COUNT_SWEEP
    ]
