"""Fig 2: potential gains of joint query and resource optimization.

The paper runs a join on TPC-H with different join implementations and
resource configurations in Hive and SparkSQL, and compares the plan the
*default* optimizer picks (the resource-oblivious 10 MB broadcast rule)
against the best plan for each configuration. "The plans chosen by the
default optimizer are up to twice slower and twice more resource demanding
than those chosen by picking the best plan for the given set of
resources."

For every resource configuration we report execution time and resources
used (TB*s) of both choices, plus the worst-case ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cluster.containers import ResourceConfiguration
from repro.core.rules import DefaultThresholdRule
from repro.engine.joins import best_join, join_execution
from repro.engine.profiles import EngineProfile, HIVE_PROFILE, SPARK_PROFILE
from repro.experiments import workload
from repro.experiments.report import print_table


@dataclass(frozen=True)
class GainPoint:
    """Default-choice vs best-choice at one resource configuration."""

    config: ResourceConfiguration
    default_time_s: float
    default_tb_s: float
    best_time_s: float
    best_tb_s: float

    @property
    def time_ratio(self) -> float:
        """How much slower the default optimizer's plan is."""
        return self.default_time_s / self.best_time_s

    @property
    def resource_ratio(self) -> float:
        """How much more resource-hungry the default plan is."""
        return self.default_tb_s / self.best_tb_s


@dataclass(frozen=True)
class PotentialGainsResult:
    """The Fig 2 series for one engine."""

    engine: str
    points: Tuple[GainPoint, ...]

    @property
    def max_time_ratio(self) -> float:
        """Worst slowdown from ignoring resources (paper: up to 2x)."""
        return max(point.time_ratio for point in self.points)

    @property
    def max_resource_ratio(self) -> float:
        """Worst resource overhead (paper: up to 2x)."""
        return max(point.resource_ratio for point in self.points)


def _engine_sizes(profile: EngineProfile) -> Tuple[float, float]:
    """(small, large) input sizes scaled to the engine's switch range."""
    if profile.name == "spark":
        # Spark switch points live in the hundreds-of-MB range (Fig 9b).
        return (0.4, 10.0)
    return (workload.ORDERS_LARGE_GB, workload.LINEITEM_GB)


def run(profile: EngineProfile = HIVE_PROFILE) -> PotentialGainsResult:
    """Sweep resource configurations, comparing default vs best choice."""
    small_gb, large_gb = _engine_sizes(profile)
    rule = DefaultThresholdRule(profile.default_broadcast_threshold_gb)
    points: List[GainPoint] = []
    configs = [
        ResourceConfiguration(num_containers=count, container_gb=size)
        for count in (5, 10, 20, 40)
        for size in (2.0, 3.0, 5.0, 7.0, 9.0, 10.0)
    ]
    for config in configs:
        default_algorithm = rule.choose(small_gb, large_gb, config)
        default_run = join_execution(
            default_algorithm, small_gb, large_gb, config, profile
        )
        best_run = best_join(small_gb, large_gb, config, profile)
        if not default_run.feasible or not best_run.feasible:
            continue
        points.append(
            GainPoint(
                config=config,
                default_time_s=default_run.time_s,
                default_tb_s=config.gb_seconds(default_run.time_s)
                / 1024.0,
                best_time_s=best_run.time_s,
                best_tb_s=config.gb_seconds(best_run.time_s) / 1024.0,
            )
        )
    return PotentialGainsResult(engine=profile.name, points=tuple(points))


def main() -> Tuple[PotentialGainsResult, PotentialGainsResult]:
    """Print the Fig 2 series for Hive and SparkSQL."""
    results = []
    for profile in (HIVE_PROFILE, SPARK_PROFILE):
        result = run(profile)
        results.append(result)
        print_table(
            [
                "config",
                "default time (s)",
                "best time (s)",
                "default TB*s",
                "best TB*s",
            ],
            [
                (
                    str(p.config),
                    p.default_time_s,
                    p.best_time_s,
                    p.default_tb_s,
                    p.best_tb_s,
                )
                for p in result.points
            ],
            title=f"Fig 2 ({result.engine}): default optimizer vs "
            "query & resource optimization",
        )
        print(
            f"{result.engine}: default up to "
            f"{result.max_time_ratio:.2f}x slower, up to "
            f"{result.max_resource_ratio:.2f}x more resources "
            "(paper: up to 2x / 2x)\n"
        )
    return tuple(results)


if __name__ == "__main__":
    main()
