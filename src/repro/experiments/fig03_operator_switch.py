"""Fig 3: BHJ vs SMJ over varying resources in Hive (fixed data).

(a) a 5.1 GB orders table on 10 containers of 2-10 GB: "SMJ outperforms
BHJ for container sizes up to 7 GB, while BHJ is better for bigger
container sizes ... below 5 GB containers, BHJ is not an option as it
runs out of memory."

(b) a 3.4 GB orders table on 3 GB containers, 5-45 of them: "BHJ is
better than SMJ for less than 20 containers, SMJ benefits more from
increased parallelism and is twice faster than BHJ for 40 containers."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cluster.containers import ResourceConfiguration
from repro.engine.joins import bhj_execution, smj_execution
from repro.engine.profiles import EngineProfile, HIVE_PROFILE
from repro.experiments import workload
from repro.experiments.report import print_table


@dataclass(frozen=True)
class SweepPoint:
    """SMJ and BHJ execution times at one resource configuration."""

    config: ResourceConfiguration
    smj_time_s: float
    bhj_time_s: float

    @property
    def bhj_feasible(self) -> bool:
        """False where BHJ hits its OOM wall."""
        return math.isfinite(self.bhj_time_s)

    @property
    def winner(self) -> str:
        """Which implementation is faster here."""
        return "BHJ" if self.bhj_time_s < self.smj_time_s else "SMJ"


@dataclass(frozen=True)
class OperatorSwitchResult:
    """Both Fig 3 sweeps."""

    container_size_sweep: Tuple[SweepPoint, ...]
    container_count_sweep: Tuple[SweepPoint, ...]

    def switch_container_gb(self) -> Optional[float]:
        """The container size where BHJ first beats SMJ (paper: ~7 GB)."""
        for point in self.container_size_sweep:
            if point.bhj_feasible and point.winner == "BHJ":
                return point.config.container_gb
        return None

    def switch_container_count(self) -> Optional[int]:
        """The container count where SMJ first beats BHJ (paper: ~20)."""
        for point in self.container_count_sweep:
            if point.winner == "SMJ":
                return point.config.num_containers
        return None


def _sweep_point(
    small_gb: float,
    large_gb: float,
    config: ResourceConfiguration,
    profile: EngineProfile,
) -> SweepPoint:
    return SweepPoint(
        config=config,
        smj_time_s=smj_execution(
            small_gb, large_gb, config, profile
        ).time_s,
        bhj_time_s=bhj_execution(
            small_gb, large_gb, config, profile
        ).time_s,
    )


def run(profile: EngineProfile = HIVE_PROFILE) -> OperatorSwitchResult:
    """Run both Fig 3 sweeps against the engine simulator."""
    size_sweep = tuple(
        _sweep_point(
            workload.ORDERS_LARGE_GB,
            workload.LINEITEM_GB,
            config,
            profile,
        )
        for config in workload.container_size_configs()
    )
    count_sweep = tuple(
        _sweep_point(
            workload.ORDERS_SMALL_GB,
            workload.LINEITEM_GB,
            config,
            profile,
        )
        for config in workload.container_count_configs()
    )
    return OperatorSwitchResult(
        container_size_sweep=size_sweep,
        container_count_sweep=count_sweep,
    )


def main() -> OperatorSwitchResult:
    """Print the Fig 3 series."""
    result = run()
    print_table(
        ["container size (GB)", "SMJ (s)", "BHJ (s)", "winner"],
        [
            (p.config.container_gb, p.smj_time_s, p.bhj_time_s, p.winner)
            for p in result.container_size_sweep
        ],
        title=(
            "Fig 3(a): varying container size "
            f"(orders={workload.ORDERS_LARGE_GB} GB, "
            f"nc={workload.CONTAINER_SIZE_SWEEP_NC})"
        ),
    )
    print_table(
        ["#containers", "SMJ (s)", "BHJ (s)", "winner"],
        [
            (
                p.config.num_containers,
                p.smj_time_s,
                p.bhj_time_s,
                p.winner,
            )
            for p in result.container_count_sweep
        ],
        title=(
            "Fig 3(b): varying #containers "
            f"(orders={workload.ORDERS_SMALL_GB} GB, "
            f"cs={workload.CONTAINER_COUNT_SWEEP_GB} GB)"
        ),
    )
    print(
        "switch container size:",
        result.switch_container_gb(),
        "GB (paper: 7 GB) | switch #containers:",
        result.switch_container_count(),
        "(paper: 20)",
    )
    return result


if __name__ == "__main__":
    main()
