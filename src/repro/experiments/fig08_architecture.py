"""Fig 8: the big data system stack, current practice vs the RAQO vision.

The paper's architecture figure, realised two ways: (i) a rendering of
both stacks for documentation, and (ii) a structural description mapping
each layer to the package that implements it in this reproduction --
which is the actual evidence that the RAQO layer exists as one component
here rather than two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: (layer, examples, implementing package) for the current-practice stack.
CURRENT_STACK: Tuple[Tuple[str, str, str], ...] = (
    (
        "Declarative System [Query Optimization]",
        "SCOPE, Hive, SparkSQL",
        "repro.planner (Selinger, FastRandomized)",
    ),
    (
        "Dataflow/Runtime [Resource Configuration]",
        "Dryad, Tez, SparkCore",
        "repro.engine (executor, dataflow)",
    ),
    (
        "Resource Manager",
        "Apollo, YARN, Mesos",
        "repro.cluster (resource_manager, rm_api)",
    ),
    (
        "Physical Resources",
        "Azure, EC2, GoogleCompute",
        "repro.cluster (containers, cluster)",
    ),
)

#: The RAQO stack: one combined optimization layer.
RAQO_STACK: Tuple[Tuple[str, str, str], ...] = (
    (
        "Declarative Language",
        "SCOPE, HiveQL, SparkSQL",
        "repro.catalog (queries)",
    ),
    (
        "Resource & Query Optimization (RAQO)",
        "this paper",
        "repro.core (raqo, rules, resource_planner, plan_cache)",
    ),
    (
        "Dataflow/Runtime",
        "Dryad, Tez, SparkCore",
        "repro.engine (executor, runtime)",
    ),
    (
        "Resource Manager",
        "Apollo, YARN, Mesos",
        "repro.cluster (resource_manager, scheduler, rm_api)",
    ),
    (
        "Physical Resources",
        "Azure, EC2, GoogleCompute",
        "repro.cluster (containers, cluster)",
    ),
)


@dataclass(frozen=True)
class ArchitectureResult:
    """Both stacks plus the layer -> package mapping."""

    current: Tuple[Tuple[str, str, str], ...]
    raqo: Tuple[Tuple[str, str, str], ...]

    def package_mapping(self) -> Dict[str, str]:
        """Layer name -> implementing package for the RAQO stack."""
        return {layer: package for layer, _, package in self.raqo}

    @property
    def optimization_layers_current(self) -> int:
        """Layers performing optimization in the two-step stack."""
        return sum(
            1 for layer, _, _ in self.current if "Optimiz" in layer
            or "Configuration" in layer
        )

    @property
    def optimization_layers_raqo(self) -> int:
        """Layers performing optimization in the RAQO stack (one)."""
        return sum(
            1 for layer, _, _ in self.raqo if "Optimization" in layer
        )


def run() -> ArchitectureResult:
    """Return the structural Fig 8 description."""
    return ArchitectureResult(current=CURRENT_STACK, raqo=RAQO_STACK)


def render(result: ArchitectureResult) -> str:
    """ASCII rendering of both stacks side by side conceptually."""
    lines: List[str] = []
    for title, stack in (
        ("(a) Current practice: two separate steps", result.current),
        ("(b) The RAQO vision: one combined layer", result.raqo),
    ):
        lines.append(title)
        width = max(len(layer) for layer, _, _ in stack) + 2
        for layer, examples, package in stack:
            lines.append("  +" + "-" * width + "+")
            lines.append(f"  | {layer.ljust(width - 2)} |  e.g. {examples}")
            lines.append(f"  | {('-> ' + package).ljust(width - 2)} |")
        lines.append("  +" + "-" * width + "+")
        lines.append("")
    return "\n".join(lines)


def main() -> ArchitectureResult:
    """Print the Fig 8 stacks."""
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
