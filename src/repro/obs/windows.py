"""Deterministic rolling-window aggregations for the telemetry plane.

The session-scoped :class:`~repro.obs.metrics.MetricsRegistry` answers
"how much, in total?"; these instruments answer "how much, *when*?" --
request rates, windowed latency quantiles, and occupancy levels as they
evolve over a run.  Each observation carries an explicit timestamp in
one of the simulator's two clock domains:

- ``clock="sim"`` -- the simulated cluster clock (engine and cluster
  metrics), where window contents are a pure function of the seeded
  run;
- ``clock="wall"`` -- real wall time (planner and serving metrics),
  where window *shapes* are stable but values depend on machine speed.

Observations land in fixed-width buckets (``floor(ts / window_s)``).
Every per-bucket aggregate is **order-independent**: counts and min/max
commute trivially, sums are computed with :func:`math.fsum` (exact, so
addition order cannot perturb the float), and quantiles are taken over
the sorted bucket contents.  A workload recorded serially and the same
workload recorded from many threads therefore produce byte-identical
snapshots -- the contract the property suite pins, and the windowed
analog of the tracer's canonical-span-tree guarantee.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CLOCKS",
    "LabelSet",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
    "exact_quantile",
    "labels_key",
    "normalize_labels",
]

#: The two clock domains windowed instruments record against.
CLOCKS = ("wall", "sim")

#: Label sets are canonicalized to a sorted tuple of (key, value) pairs.
LabelSet = Tuple[Tuple[str, str], ...]


def labels_key(labels: LabelSet) -> str:
    """The canonical ``{k="v",...}`` rendering of a label set.

    Used both as the instrument-registry key suffix and (identically)
    in the Prometheus exposition, so a series has exactly one spelling
    everywhere.
    """
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


def normalize_labels(
    labels: Optional[Sequence[Tuple[str, str]]],
) -> LabelSet:
    """Sorted, deduplicated, stringified label pairs."""
    if not labels:
        return ()
    return tuple(
        sorted({str(key): str(value) for key, value in labels}.items())
    )


def exact_quantile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sequence."""
    if not ordered:
        return math.nan
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class _WindowedInstrument:
    """Shared bucketing machinery: name, labels, clock, width, lock."""

    __slots__ = ("name", "labels", "clock", "window_s", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        clock: str,
        window_s: float,
    ) -> None:
        if clock not in CLOCKS:
            raise ValueError(
                f"clock must be one of {CLOCKS}, got {clock!r}"
            )
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.name = name
        self.labels = labels
        self.clock = clock
        self.window_s = window_s
        self._lock = threading.Lock()

    @property
    def series(self) -> str:
        """The fully qualified series name (name plus rendered labels)."""
        return self.name + labels_key(self.labels)

    def bucket_of(self, ts_s: float) -> int:
        """The window index ``ts_s`` falls into."""
        return math.floor(ts_s / self.window_s)

    def _meta(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "labels": {key: value for key, value in self.labels},
            "clock": self.clock,
            "window_s": self.window_s,
        }


class WindowedCounter(_WindowedInstrument):
    """A monotonically increasing count, bucketed by timestamp."""

    __slots__ = ("_buckets", "_total")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        clock: str = "wall",
        window_s: float = 1.0,
    ) -> None:
        super().__init__(name, labels, clock, window_s)
        self._buckets: Dict[int, int] = {}
        self._total = 0

    def inc(self, amount: int = 1, *, ts_s: float) -> None:
        """Add ``amount`` (>= 0) at timestamp ``ts_s``."""
        if amount < 0:
            raise ValueError(
                f"windowed counter {self.name!r} cannot decrease "
                f"(got {amount})"
            )
        bucket = self.bucket_of(ts_s)
        with self._lock:
            self._buckets[bucket] = self._buckets.get(bucket, 0) + amount
            self._total += amount

    @property
    def total(self) -> int:
        """The all-time count across every window."""
        with self._lock:
            return self._total

    def snapshot(self, last: Optional[int] = None) -> Dict[str, object]:
        """JSON-ready bucket-by-bucket dump (most recent ``last``)."""
        with self._lock:
            buckets = dict(self._buckets)
            total = self._total
        indices = sorted(buckets)
        if last is not None:
            indices = indices[-last:]
        return {
            **self._meta(),
            "kind": "counter",
            "total": total,
            "windows": [
                {
                    "window": index,
                    "start_s": index * self.window_s,
                    "count": buckets[index],
                    "rate_per_s": buckets[index] / self.window_s,
                }
                for index in indices
            ],
        }


class WindowedGauge(_WindowedInstrument):
    """A sampled level (occupancy, queue depth), bucketed by timestamp.

    Each bucket keeps every sample so min/max/mean are exact and
    order-independent; "last write wins" is deliberately *not* offered
    -- under concurrent recording it would depend on thread scheduling.
    """

    __slots__ = ("_buckets",)

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        clock: str = "wall",
        window_s: float = 1.0,
    ) -> None:
        super().__init__(name, labels, clock, window_s)
        self._buckets: Dict[int, List[float]] = {}

    def record(self, value: float, *, ts_s: float) -> None:
        """Sample the level at timestamp ``ts_s``."""
        bucket = self.bucket_of(ts_s)
        with self._lock:
            self._buckets.setdefault(bucket, []).append(float(value))

    def snapshot(self, last: Optional[int] = None) -> Dict[str, object]:
        """JSON-ready per-bucket min/max/mean levels."""
        with self._lock:
            buckets = {
                index: list(values)
                for index, values in self._buckets.items()
            }
        indices = sorted(buckets)
        if last is not None:
            indices = indices[-last:]
        windows = []
        for index in indices:
            values = buckets[index]
            windows.append(
                {
                    "window": index,
                    "start_s": index * self.window_s,
                    "samples": len(values),
                    "min": min(values),
                    "max": max(values),
                    "mean": math.fsum(values) / len(values),
                }
            )
        return {**self._meta(), "kind": "gauge", "windows": windows}

    def latest(self) -> float:
        """Mean level of the most recent bucket (NaN when empty)."""
        with self._lock:
            if not self._buckets:
                return math.nan
            values = self._buckets[max(self._buckets)]
            return math.fsum(values) / len(values)


class WindowedHistogram(_WindowedInstrument):
    """A distribution per window: exact quantiles, order-independent."""

    __slots__ = ("_buckets",)

    #: Quantiles reported per window and for the cumulative summary.
    QUANTILES: Tuple[Tuple[str, float], ...] = (
        ("p50", 0.50),
        ("p95", 0.95),
        ("p99", 0.99),
    )

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        clock: str = "wall",
        window_s: float = 1.0,
    ) -> None:
        super().__init__(name, labels, clock, window_s)
        self._buckets: Dict[int, List[float]] = {}

    def observe(self, value: float, *, ts_s: float) -> None:
        """Record one observation at timestamp ``ts_s``."""
        bucket = self.bucket_of(ts_s)
        with self._lock:
            self._buckets.setdefault(bucket, []).append(float(value))

    def _copy(self) -> Dict[int, List[float]]:
        with self._lock:
            return {
                index: list(values)
                for index, values in self._buckets.items()
            }

    @staticmethod
    def _summarize(values: List[float]) -> Dict[str, float]:
        ordered = sorted(values)
        summary = {
            "count": float(len(ordered)),
            "sum": math.fsum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
        }
        for label, q in WindowedHistogram.QUANTILES:
            summary[label] = exact_quantile(ordered, q)
        return summary

    def summary(self) -> Dict[str, float]:
        """count/sum/min/max/quantiles over *all* windows combined."""
        buckets = self._copy()
        values = [v for index in sorted(buckets) for v in buckets[index]]
        if not values:
            return {"count": 0.0}
        return self._summarize(values)

    def snapshot(self, last: Optional[int] = None) -> Dict[str, object]:
        """JSON-ready per-window distributions plus the cumulative one."""
        buckets = self._copy()
        indices = sorted(buckets)
        all_values = [v for index in indices for v in buckets[index]]
        if last is not None:
            indices = indices[-last:]
        return {
            **self._meta(),
            "kind": "histogram",
            "summary": (
                self._summarize(all_values)
                if all_values
                else {"count": 0.0}
            ),
            "windows": [
                {
                    "window": index,
                    "start_s": index * self.window_s,
                    **self._summarize(buckets[index]),
                }
                for index in indices
            ],
        }
