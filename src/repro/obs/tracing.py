"""Deterministic hierarchical tracing for planner and engine runs.

The tracer produces a tree of spans mirroring the two clock domains the
simulator spans:

- **planner spans** (``kind="planner"``) measure real wall-clock time --
  how long the optimizer itself ran;
- **engine / cluster spans** (``kind="engine"`` / ``"cluster"``) carry
  *simulated-time* windows -- when the modelled stage ran on the
  modelled cluster.

Span identities are *derived*, not drawn: a span's ID is a SHA-256 hash
of ``(tracer seed, path from the root)``, where each path component is
the span name plus either an explicit ``key`` (for spans created across
threads, e.g. one per workload query) or the per-parent occurrence
ordinal (for the deterministic single-threaded subtrees below them).
Two runs of the same seeded workload therefore emit byte-identical span
trees whether the queries were executed serially or on a thread pool --
the same contract :class:`~repro.faults.model.FaultPlan` keeps for fault
decisions.

By default every instrumented call site holds a :data:`NULL_TRACER`,
whose ``span()`` returns a shared no-op handle: with tracing disabled
the hot planning path does one attribute check (``tracer.active``) and
no allocation, keeping benchmark throughput unchanged.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanEvent",
    "SpanHandle",
    "Tracer",
]

#: Attribute value types spans accept (JSON-representable scalars).
AttrValue = Union[str, int, float, bool, None]


def _span_id(seed: int, path: Tuple[str, ...]) -> str:
    """The deterministic 64-bit hex ID for a span path under a seed."""
    payload = f"{seed}\x1f" + "\x1f".join(path)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class SpanEvent:
    """A point-in-time annotation on a span (fault injected, retry...)."""

    __slots__ = ("name", "sim_time_s", "attributes")

    def __init__(
        self,
        name: str,
        sim_time_s: Optional[float] = None,
        attributes: Optional[Mapping[str, AttrValue]] = None,
    ) -> None:
        self.name = name
        self.sim_time_s = sim_time_s
        self.attributes: Dict[str, AttrValue] = dict(attributes or {})

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form with deterministically ordered attributes."""
        return {
            "name": self.name,
            "sim_time_s": self.sim_time_s,
            "attributes": {
                k: self.attributes[k] for k in sorted(self.attributes)
            },
        }


class SpanHandle:
    """The no-op span: every method is free and returns immediately.

    Real spans subclass this; instrumented code can therefore hold and
    annotate "the current span" unconditionally, paying nothing when
    tracing is disabled (:data:`NULL_TRACER` hands out one shared
    instance of this base class).
    """

    __slots__ = ()

    #: False on the null span; True on real spans.
    active: bool = False
    #: Empty on the null span; deterministic hex IDs on real spans.
    span_id: str = ""
    trace_id: str = ""
    name: str = ""

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attribute(self, key: str, value: AttrValue) -> None:
        """Attach one attribute to the span (no-op here)."""

    def set_attributes(self, attributes: Mapping[str, AttrValue]) -> None:
        """Attach several attributes to the span (no-op here)."""

    def event(
        self,
        name: str,
        sim_time_s: Optional[float] = None,
        attributes: Optional[Mapping[str, AttrValue]] = None,
    ) -> None:
        """Record a point-in-time event on the span (no-op here)."""

    def set_sim_window(self, start_s: float, end_s: float) -> None:
        """Set the simulated-time window the span covers (no-op here)."""


#: The shared no-op span handed out by disabled tracers.
NULL_SPAN = SpanHandle()


class Span(SpanHandle):
    """One node of the trace tree; use as a context manager."""

    __slots__ = (
        "tracer",
        "name",
        "kind",
        "span_id",
        "trace_id",
        "parent_id",
        "path",
        "attributes",
        "events",
        "wall_start_s",
        "wall_end_s",
        "sim_start_s",
        "sim_end_s",
        "_child_ordinals",
    )

    active = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        kind: str,
        path: Tuple[str, ...],
        parent_id: Optional[str],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.kind = kind
        self.path = path
        self.parent_id = parent_id
        self.span_id = _span_id(tracer.seed, path)
        self.trace_id = tracer.trace_id
        self.attributes: Dict[str, AttrValue] = {}
        self.events: List[SpanEvent] = []
        self.wall_start_s: Optional[float] = None
        self.wall_end_s: Optional[float] = None
        self.sim_start_s: Optional[float] = None
        self.sim_end_s: Optional[float] = None
        #: Occurrence counters for unkeyed children, per child name.
        #: Only touched from the thread running this span's subtree.
        self._child_ordinals: Dict[str, int] = {}

    def __enter__(self) -> "Span":
        self.wall_start_s = time.perf_counter()
        self.tracer._push(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.wall_end_s = time.perf_counter()
        self.tracer._pop(self)
        self.tracer._record(self)

    def set_attribute(self, key: str, value: AttrValue) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def set_attributes(self, attributes: Mapping[str, AttrValue]) -> None:
        """Attach several attributes to the span."""
        self.attributes.update(attributes)

    def event(
        self,
        name: str,
        sim_time_s: Optional[float] = None,
        attributes: Optional[Mapping[str, AttrValue]] = None,
    ) -> None:
        """Record a point-in-time event on the span."""
        self.events.append(SpanEvent(name, sim_time_s, attributes))

    def set_sim_window(self, start_s: float, end_s: float) -> None:
        """Set the simulated-time window the span covers."""
        self.sim_start_s = start_s
        self.sim_end_s = end_s

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (wall-clock fields included)."""
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "path": list(self.path),
            "attributes": {
                k: self.attributes[k] for k in sorted(self.attributes)
            },
            "events": [event.to_dict() for event in self.events],
            "wall_start_s": self.wall_start_s,
            "wall_end_s": self.wall_end_s,
            "sim_start_s": self.sim_start_s,
            "sim_end_s": self.sim_end_s,
        }

    def __repr__(self) -> str:
        return (
            f"Span({'/'.join(self.path)!r}, kind={self.kind!r}, "
            f"id={self.span_id})"
        )


class Tracer:
    """Collects a deterministic span tree for one traced run.

    Thread-safe: span completion serializes on an internal lock, and the
    "current span" used for implicit parenting is tracked per thread.
    Cross-thread subtrees (one workload query per worker) must pass an
    explicit ``parent=`` and a deterministic ``key=`` so IDs do not
    depend on thread scheduling.
    """

    #: Real tracers record spans; the :class:`NullTracer` overrides this.
    active: bool = True

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.trace_id = hashlib.sha256(
            f"trace\x1f{seed}".encode()
        ).hexdigest()[:16]
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._root_ordinals: Dict[str, int] = {}
        self._local = threading.local()

    # -- span lifecycle -------------------------------------------------

    def span(
        self,
        name: str,
        kind: str = "internal",
        parent: Optional[SpanHandle] = None,
        key: Optional[str] = None,
        attributes: Optional[Mapping[str, AttrValue]] = None,
    ) -> SpanHandle:
        """Create (but do not start) a child span.

        ``parent`` defaults to the thread's current span; pass it
        explicitly (with a ``key``) when the span starts on a different
        thread than its parent.  ``key`` fixes the span's path component
        (``name[key]``); without it the per-parent occurrence ordinal is
        used, which is deterministic only within a single-threaded
        subtree.
        """
        if parent is None:
            parent = self.current_span()
        real_parent = parent if isinstance(parent, Span) else None
        if key is None:
            if real_parent is not None:
                ordinal = real_parent._child_ordinals.get(name, 0)
                real_parent._child_ordinals[name] = ordinal + 1
            else:
                with self._lock:
                    ordinal = self._root_ordinals.get(name, 0)
                    self._root_ordinals[name] = ordinal + 1
            component = f"{name}[{ordinal}]"
        else:
            component = f"{name}[{key}]"
        base_path = real_parent.path if real_parent is not None else ()
        span = Span(
            tracer=self,
            name=name,
            kind=kind,
            path=base_path + (component,),
            parent_id=(
                real_parent.span_id if real_parent is not None else None
            ),
        )
        if attributes:
            span.set_attributes(attributes)
        return span

    def current_span(self) -> Optional[SpanHandle]:
        """The innermost span entered on the calling thread, if any."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        top: SpanHandle = stack[-1]
        return top

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    # -- introspection --------------------------------------------------

    def spans(self) -> Tuple[Span, ...]:
        """All finished spans, sorted by path (deterministic order)."""
        with self._lock:
            finished = list(self._finished)
        finished.sort(key=lambda span: span.path)
        return tuple(finished)

    def adopt(self, payloads: Iterable[Mapping[str, object]]) -> int:
        """Graft spans recorded by a same-seed tracer in another process.

        The process-parallel workload runner rebuilds each worker's
        planner around a child ``Tracer(seed)`` (the tracer itself holds
        a lock and cannot cross a process boundary) and ships finished
        spans back as :meth:`Span.to_dict` payloads. Because span IDs
        are pure functions of ``(seed, path)``, a grafted span is
        indistinguishable from one recorded locally -- the merged tree
        is byte-identical to a serial run. Payloads whose IDs do not
        match this tracer's seed are rejected, catching
        mismatched-tracer bugs early. Returns the number of spans
        adopted.
        """
        count = 0
        for payload in payloads:
            path = tuple(str(part) for part in payload["path"])
            span = Span(
                tracer=self,
                name=str(payload["name"]),
                kind=str(payload["kind"]),
                path=path,
                parent_id=payload.get("parent_id"),
            )
            if span.span_id != payload["span_id"]:
                raise ValueError(
                    f"span {'/'.join(path)!r} was recorded under a "
                    f"different tracer seed (id {payload['span_id']!r}"
                    f" != expected {span.span_id!r})"
                )
            span.attributes = dict(payload.get("attributes") or {})
            span.events = [
                SpanEvent(
                    name=str(event["name"]),
                    sim_time_s=event.get("sim_time_s"),
                    attributes=event.get("attributes"),
                )
                for event in payload.get("events") or []
            ]
            span.wall_start_s = payload.get("wall_start_s")
            span.wall_end_s = payload.get("wall_end_s")
            span.sim_start_s = payload.get("sim_start_s")
            span.sim_end_s = payload.get("sim_end_s")
            self._record(span)
            count += 1
        return count

    def clear(self) -> None:
        """Drop all finished spans (the seed and trace ID stay)."""
        with self._lock:
            self._finished.clear()
            self._root_ordinals.clear()

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(seed={self.seed}, "
            f"spans={len(self)})"
        )


class NullTracer(Tracer):
    """A disabled tracer: ``span()`` returns the shared no-op handle.

    Instrumented code guards allocation-heavy attribute computation with
    ``if tracer.active:``; everything else can call through the null
    tracer unconditionally at negligible cost.
    """

    active = False

    def __init__(self) -> None:
        super().__init__(seed=0)

    def span(
        self,
        name: str,
        kind: str = "internal",
        parent: Optional[SpanHandle] = None,
        key: Optional[str] = None,
        attributes: Optional[Mapping[str, AttrValue]] = None,
    ) -> SpanHandle:
        """Hand out the shared no-op span."""
        return NULL_SPAN

    def current_span(self) -> Optional[SpanHandle]:
        """The null tracer never has a current span."""
        return None


#: The process-wide disabled tracer every instrumented call site
#: defaults to.  Stateless, so sharing one instance is safe.
NULL_TRACER = NullTracer()
