"""The unified structured event log: one JSONL stream for everything.

Spans answer "how long did this take?"; the event log answers "what
*happened*, in what order, to whom?".  Every noteworthy state change in
the system -- a fault injected, a retry scheduled, a BHJ degraded to
SMJ, a request admitted/rejected/coalesced, a cache entry evicted, an
SLO budget burning, the cost model drifting -- lands here as one
:class:`TelemetryEvent`, correlated back to the trace by span ID when
the change happened inside a traced span.

Two producers feed the log:

- **live emitters** (the serving layer, the SLO tracker, the drift
  monitor) call :meth:`EventLog.emit` as things happen, stamped on the
  wall clock;
- **span harvesting** (:meth:`EventLog.harvest_tracer`) lifts the
  fault/retry/degradation/speculation events the engine already records
  on its spans into the same stream, stamped on the simulated clock and
  carrying their span IDs -- so ``jq`` over one file sees the whole
  story.

Export order is deterministic: events sort by (clock domain, timestamp,
name, span ID, emission sequence), so same-seed simulated streams are
byte-identical regardless of thread scheduling.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Set, Tuple, Union

from repro.obs.tracing import AttrValue, Tracer

__all__ = [
    "EventLog",
    "TelemetryEvent",
]


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured, timestamped fact about the run."""

    #: What happened: ``"rejection"``, ``"slo_burn"``, ``"fault"``...
    name: str
    #: When, on the clock named by ``clock``.
    ts_s: float
    #: ``"wall"`` (real time) or ``"sim"`` (simulated cluster clock).
    clock: str
    #: The tenant involved, for per-tenant accounting ("" when global).
    tenant: str = ""
    #: The span this event happened inside ("" when un-traced).
    span_id: str = ""
    #: Emission sequence within the log (assigned by :class:`EventLog`).
    seq: int = 0
    attributes: Mapping[str, AttrValue] = field(default_factory=dict)

    def sort_key(self) -> Tuple[str, float, str, str, int]:
        """The deterministic export ordering."""
        return (self.clock, self.ts_s, self.name, self.span_id, self.seq)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form with deterministically ordered attributes."""
        return {
            "name": self.name,
            "ts_s": self.ts_s,
            "clock": self.clock,
            "tenant": self.tenant,
            "span_id": self.span_id,
            "attributes": {
                key: self.attributes[key]
                for key in sorted(self.attributes)
            },
        }


class EventLog:
    """A thread-safe, append-only sink for telemetry events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[TelemetryEvent] = []
        #: (span_id, index) pairs already harvested, so repeated
        #: harvests of a growing tracer stay incremental.
        self._harvested: Set[Tuple[str, int]] = set()

    def emit(
        self,
        name: str,
        ts_s: float,
        *,
        clock: str = "wall",
        tenant: str = "",
        span_id: str = "",
        attributes: Optional[Mapping[str, AttrValue]] = None,
    ) -> TelemetryEvent:
        """Append one event; returns the recorded (sequenced) event."""
        if clock not in ("wall", "sim"):
            raise ValueError(
                f"clock must be 'wall' or 'sim', got {clock!r}"
            )
        with self._lock:
            event = TelemetryEvent(
                name=name,
                ts_s=float(ts_s),
                clock=clock,
                tenant=tenant,
                span_id=span_id,
                seq=len(self._events),
                attributes=dict(attributes or {}),
            )
            self._events.append(event)
        return event

    def harvest_tracer(self, tracer: Tracer) -> int:
        """Lift span events (faults, retries, ...) into the log.

        Each :class:`~repro.obs.tracing.SpanEvent` on a finished span
        becomes a ``sim``-clock telemetry event carrying the span's ID.
        Spans are visited in path order and events in recording order,
        so the harvest is deterministic for same-seed runs.  Returns
        the number of events harvested.
        """
        count = 0
        for span in tracer.spans():
            for index, span_event in enumerate(span.events):
                marker = (span.span_id, index)
                with self._lock:
                    if marker in self._harvested:
                        continue
                    self._harvested.add(marker)
                ts = (
                    span_event.sim_time_s
                    if span_event.sim_time_s is not None
                    else (span.sim_start_s or 0.0)
                )
                self.emit(
                    span_event.name,
                    ts,
                    clock="sim",
                    span_id=span.span_id,
                    attributes=span_event.attributes,
                )
                count += 1
        return count

    def events(self) -> Tuple[TelemetryEvent, ...]:
        """All events in deterministic export order."""
        with self._lock:
            recorded = list(self._events)
        recorded.sort(key=TelemetryEvent.sort_key)
        return tuple(recorded)

    def counts(self) -> Dict[str, int]:
        """Event totals by name (deterministically ordered)."""
        totals: Dict[str, int] = {}
        for event in self.events():
            totals[event.name] = totals.get(event.name, 0) + 1
        return {name: totals[name] for name in sorted(totals)}

    def to_jsonl(self) -> str:
        """The whole log as JSONL (one event per line, export order)."""
        return "".join(
            json.dumps(event.to_dict(), sort_keys=True) + "\n"
            for event in self.events()
        )

    def write_jsonl(self, path: Union[str, Path]) -> int:
        """Write the log as JSONL; returns the event count."""
        events = self.events()
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")
        return len(events)

    def clear(self) -> None:
        """Drop every recorded event (and the harvest bookkeeping)."""
        with self._lock:
            self._events.clear()
            self._harvested.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:
        return f"EventLog(events={len(self)})"
