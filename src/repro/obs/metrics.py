"""A tiny, dependency-free metrics registry (counters/gauges/histograms).

The registry captures the quantities the paper's evaluation keeps
returning to -- resource configurations evaluated, plan-cache hits and
misses, within-run memo hits, fault/retry/degradation counts -- plus the
predicted-vs-simulated cost error per operator that cost-model work
lives or dies on.

All instruments are thread-safe (one lock per registry; updates are
cheap and happen at aggregation points, not in the planner's inner
loop), and every export is deterministically ordered by metric name so
snapshots of identical runs compare byte-for-byte.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

MetricValue = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self._value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current value."""
        return self._value

    def set(self, value: float) -> None:
        """Set the gauge."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta``."""
        with self._lock:
            self._value += delta


class Histogram:
    """A distribution of observed values.

    Keeps every observation (runs are small: one value per operator or
    stage), so summaries can report exact quantiles deterministically.
    """

    __slots__ = ("name", "_lock", "_values")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def values(self) -> Tuple[float, ...]:
        """All observations in recording order."""
        with self._lock:
            return tuple(self._values)

    def quantile(self, q: float) -> float:
        """The exact ``q``-quantile (nearest-rank); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._values:
                return math.nan
            ordered = sorted(self._values)
        return self._rank_value(ordered, q)

    @staticmethod
    def _rank_value(ordered: List[float], q: float) -> float:
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """count/sum/min/max/mean/p50/p95 of the distribution.

        The whole summary is computed from one copy of the values taken
        under a single lock acquisition, so count/sum and the quantiles
        always describe the same set of observations even while other
        threads keep observing.
        """
        with self._lock:
            values = list(self._values)
        if not values:
            return {"count": 0.0}
        ordered = sorted(values)
        total = math.fsum(ordered)
        return {
            "count": float(len(ordered)),
            "sum": total,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": total / len(ordered),
            "p50": self._rank_value(ordered, 0.5),
            "p95": self._rank_value(ordered, 0.95),
        }


class MetricsRegistry:
    """Get-or-create home for named instruments, with stable exports."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on demand)."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = Counter(name, self._lock)
                self._counters[name] = instrument
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on demand)."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = Gauge(name, self._lock)
                self._gauges[name] = instrument
            return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on demand)."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = Histogram(name, self._lock)
                self._histograms[name] = instrument
            return instrument

    def increment_many(self, counts: Mapping[str, int]) -> None:
        """Bulk-increment counters (e.g. from PlanningCounters)."""
        for name in sorted(counts):
            self.counter(name).inc(counts[name])

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready, deterministically ordered dump of everything."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {
                name: gauges[name].value for name in sorted(gauges)
            },
            "histograms": {
                name: histograms[name].summary()
                for name in sorted(histograms)
            },
        }

    def render_text(self, title: Optional[str] = None) -> str:
        """A plain-text report of the registry's current state."""
        snap = self.snapshot()
        lines: List[str] = []
        if title:
            lines.append(title)
            lines.append("=" * len(title))
        counters = snap["counters"]
        gauges = snap["gauges"]
        histograms = snap["histograms"]
        assert isinstance(counters, dict)
        assert isinstance(gauges, dict)
        assert isinstance(histograms, dict)
        if counters:
            lines.append("counters:")
            for name, value in counters.items():
                lines.append(f"  {name} = {value}")
        if gauges:
            lines.append("gauges:")
            for name, value in gauges.items():
                lines.append(f"  {name} = {value:g}")
        if histograms:
            lines.append("histograms:")
            for name, summary in histograms.items():
                parts = " ".join(
                    f"{key}={summary[key]:g}" for key in sorted(summary)
                )
                lines.append(f"  {name}: {parts}")
        if len(lines) == (2 if title else 0):
            lines.append("(no metrics recorded)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})"
            )
