"""Per-tenant latency SLOs: objectives, error budgets, burn-rate alerts.

A serving tenant's contract is "``objective`` of requests answer within
``latency_target_ms``".  The complement of the objective is the
tenant's **error budget**: with a 95% objective, 5% of requests may
miss the target before the contract is broken.  The tracker watches a
rolling window of recent requests per tenant and reports the **burn
rate** -- the windowed violation fraction divided by the budget.  Burn
rate 1.0 means the tenant is spending budget exactly as fast as the
contract allows; 2.0 means the budget will be gone in half the
contracted horizon; sustained burn >= the alert threshold raises an
``slo_burn`` event (and a matching ``slo_recovered`` when the window
drains back under it).

Alerts are **edge-triggered and deterministic**: given the same
sequence of (tenant, latency) observations, the same events fire at the
same observation indices, independent of thread scheduling -- callers
serialize on the tracker's lock, and the rolling window advances one
observation at a time.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.events import EventLog, TelemetryEvent

__all__ = [
    "SloPolicy",
    "SloStatus",
    "SloTracker",
]


@dataclass(frozen=True)
class SloPolicy:
    """One latency objective with its error budget and alerting knobs."""

    #: Requests slower than this miss the objective.
    latency_target_ms: float
    #: Fraction of requests that must meet the target (e.g. 0.95).
    objective: float = 0.95
    #: Rolling window length, in requests.
    window: int = 50
    #: Alert when windowed burn rate reaches this multiple of budget.
    burn_alert_rate: float = 1.0
    #: Minimum windowed observations before alerts may fire.
    min_samples: int = 10

    def __post_init__(self) -> None:
        if self.latency_target_ms < 0:
            raise ValueError(
                f"latency_target_ms must be >= 0, "
                f"got {self.latency_target_ms}"
            )
        if not 0.0 < self.objective <= 1.0:
            raise ValueError(
                f"objective must be in (0, 1], got {self.objective}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.burn_alert_rate <= 0:
            raise ValueError(
                f"burn_alert_rate must be > 0, "
                f"got {self.burn_alert_rate}"
            )
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )

    @property
    def error_budget(self) -> float:
        """The allowed violation fraction (floored away from zero so a
        100% objective yields finite burn rates)."""
        return max(1.0 - self.objective, 1e-9)


@dataclass(frozen=True)
class SloStatus:
    """One tenant's current SLO accounting."""

    tenant: str
    requests: int
    violations: int
    window_requests: int
    window_violations: int
    burn_rate: float
    alerting: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form."""
        return {
            "tenant": self.tenant,
            "requests": self.requests,
            "violations": self.violations,
            "window_requests": self.window_requests,
            "window_violations": self.window_violations,
            "burn_rate": self.burn_rate,
            "alerting": self.alerting,
        }


class _TenantState:
    """Rolling window plus lifetime totals for one tenant."""

    __slots__ = (
        "window",
        "window_violations",
        "requests",
        "violations",
        "alerting",
    )

    def __init__(self, capacity: int) -> None:
        self.window: Deque[bool] = deque(maxlen=capacity)
        self.window_violations = 0
        self.requests = 0
        self.violations = 0
        self.alerting = False


class SloTracker:
    """Tracks every tenant's latency objective against one policy."""

    def __init__(
        self,
        policy: SloPolicy,
        events: Optional[EventLog] = None,
    ) -> None:
        self.policy = policy
        self.events = events
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}

    def record(
        self,
        tenant: str,
        latency_ms: float,
        *,
        ts_s: float,
    ) -> Optional[TelemetryEvent]:
        """Account one served request; returns the alert edge, if any.

        Emits ``slo_burn`` when the tenant's windowed burn rate crosses
        the alert threshold from below, and ``slo_recovered`` when it
        crosses back; in between, sustained burn stays silent (the alert
        is a state transition, not a per-request siren).
        """
        violated = latency_ms > self.policy.latency_target_ms
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                state = _TenantState(self.policy.window)
                self._tenants[tenant] = state
            if (
                len(state.window) == self.policy.window
                and state.window[0]
            ):
                state.window_violations -= 1
            state.window.append(violated)
            if violated:
                state.window_violations += 1
                state.violations += 1
            state.requests += 1
            burn = self._burn_rate(state)
            eligible = len(state.window) >= self.policy.min_samples
            should_alert = (
                eligible and burn >= self.policy.burn_alert_rate
            )
            edge: Optional[str] = None
            if should_alert and not state.alerting:
                state.alerting = True
                edge = "slo_burn"
            elif state.alerting and not should_alert:
                state.alerting = False
                edge = "slo_recovered"
            if edge is None:
                return None
            attributes = {
                "burn_rate": burn,
                "window_requests": len(state.window),
                "window_violations": state.window_violations,
                "latency_target_ms": self.policy.latency_target_ms,
                "objective": self.policy.objective,
            }
        if self.events is not None:
            return self.events.emit(
                edge, ts_s, tenant=tenant, attributes=attributes
            )
        return TelemetryEvent(
            name=edge,
            ts_s=ts_s,
            clock="wall",
            tenant=tenant,
            attributes=attributes,
        )

    def _burn_rate(self, state: _TenantState) -> float:
        if not state.window:
            return 0.0
        fraction = state.window_violations / len(state.window)
        return fraction / self.policy.error_budget

    def status(self, tenant: str) -> SloStatus:
        """One tenant's current accounting (zeros when unseen)."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return SloStatus(tenant, 0, 0, 0, 0, 0.0, False)
            return SloStatus(
                tenant=tenant,
                requests=state.requests,
                violations=state.violations,
                window_requests=len(state.window),
                window_violations=state.window_violations,
                burn_rate=self._burn_rate(state),
                alerting=state.alerting,
            )

    def statuses(self) -> Tuple[SloStatus, ...]:
        """Every tracked tenant's status, sorted by tenant name."""
        with self._lock:
            tenants = sorted(self._tenants)
        return tuple(self.status(tenant) for tenant in tenants)

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-ready per-tenant statuses (sorted by tenant)."""
        return [status.to_dict() for status in self.statuses()]
