"""The telemetry plane: windowed metrics, events, SLOs, drift -- one home.

:class:`TelemetryPlane` is the v2 observability substrate layered on
the session's :class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.tracing.Tracer`.  Where the registry keeps lifetime
totals and the tracer keeps structure, the plane keeps **evolution**:

- a get-or-create registry of :mod:`windowed instruments
  <repro.obs.windows>` (counters, gauges, histograms) keyed by name +
  label set, each bound to one clock domain -- ``sim`` for engine and
  cluster signals, ``wall`` for planner and serving signals;
- the unified :class:`~repro.obs.events.EventLog`;
- the :class:`~repro.obs.drift.DriftMonitor` fed by the session's
  cost-error observations;
- any number of per-policy :class:`~repro.obs.slo.SloTracker`\\ s
  (the serving layer creates one per configured SLO).

Everything the plane aggregates serializes deterministically:
:meth:`snapshot` orders series by name, and ``sim``-domain snapshots of
a seeded run are byte-identical whether the run was serial or parallel.
The Prometheus exposition over a plane lives in
:mod:`repro.obs.prometheus`.
"""

from __future__ import annotations

import threading
import time
from types import MappingProxyType
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.drift import DriftConfig, DriftMonitor
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloPolicy, SloTracker
from repro.obs.windows import (
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
    normalize_labels,
)

__all__ = [
    "TelemetryPlane",
]

#: One windowed instrument of any kind.
WindowedInstrument = Union[
    WindowedCounter, WindowedGauge, WindowedHistogram
]

#: Default window widths per clock domain: serving traffic moves in
#: fractions of a second, simulated stages in tens of seconds.
DEFAULT_WINDOW_S = MappingProxyType({"wall": 0.5, "sim": 10.0})


class TelemetryPlane:
    """Get-or-create home for windowed series, events, SLOs, drift."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        wall_window_s: float = DEFAULT_WINDOW_S["wall"],
        sim_window_s: float = DEFAULT_WINDOW_S["sim"],
        drift: Optional[DriftConfig] = None,
    ) -> None:
        self.metrics = metrics
        self.events = EventLog()
        self.drift = DriftMonitor(drift, events=self.events)
        self.slo_trackers: List[SloTracker] = []
        self._window_s = {"wall": wall_window_s, "sim": sim_window_s}
        self._lock = threading.Lock()
        self._instruments: Dict[str, WindowedInstrument] = {}
        #: Wall timestamps are relative to plane creation, so bucket
        #: indices stay small and runs starting at different absolute
        #: times produce comparable window shapes.
        self._wall_epoch = time.perf_counter()

    # -- clocks ------------------------------------------------------------

    def wall_now(self) -> float:
        """Seconds of wall time since the plane was created."""
        return time.perf_counter() - self._wall_epoch

    # -- instruments -------------------------------------------------------

    def _get(
        self,
        kind: type,
        name: str,
        labels: Optional[Sequence[Tuple[str, str]]],
        clock: str,
        window_s: Optional[float],
    ) -> WindowedInstrument:
        canonical = normalize_labels(labels)
        width = (
            window_s if window_s is not None else self._window_s[clock]
        )
        probe = kind(name, canonical, clock, width)
        key = f"{kind.__name__}:{probe.series}"
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                self._instruments[key] = probe
                return probe
            if instrument.clock != clock:
                raise ValueError(
                    f"series {probe.series!r} already registered on "
                    f"clock {instrument.clock!r}, not {clock!r}"
                )
            return instrument

    def windowed_counter(
        self,
        name: str,
        labels: Optional[Sequence[Tuple[str, str]]] = None,
        *,
        clock: str = "wall",
        window_s: Optional[float] = None,
    ) -> WindowedCounter:
        """The windowed counter for (name, labels), created on demand."""
        instrument = self._get(
            WindowedCounter, name, labels, clock, window_s
        )
        assert isinstance(instrument, WindowedCounter)
        return instrument

    def windowed_gauge(
        self,
        name: str,
        labels: Optional[Sequence[Tuple[str, str]]] = None,
        *,
        clock: str = "wall",
        window_s: Optional[float] = None,
    ) -> WindowedGauge:
        """The windowed gauge for (name, labels), created on demand."""
        instrument = self._get(
            WindowedGauge, name, labels, clock, window_s
        )
        assert isinstance(instrument, WindowedGauge)
        return instrument

    def windowed_histogram(
        self,
        name: str,
        labels: Optional[Sequence[Tuple[str, str]]] = None,
        *,
        clock: str = "wall",
        window_s: Optional[float] = None,
    ) -> WindowedHistogram:
        """The windowed histogram for (name, labels), on demand."""
        instrument = self._get(
            WindowedHistogram, name, labels, clock, window_s
        )
        assert isinstance(instrument, WindowedHistogram)
        return instrument

    def instruments(
        self, clock: Optional[str] = None
    ) -> Tuple[WindowedInstrument, ...]:
        """All registered instruments, sorted by (kind, series)."""
        with self._lock:
            items = sorted(self._instruments.items())
        return tuple(
            instrument
            for _, instrument in items
            if clock is None or instrument.clock == clock
        )

    # -- SLO tracking ------------------------------------------------------

    def slo_tracker(self, policy: SloPolicy) -> SloTracker:
        """A new tracker for ``policy``, wired onto this plane's log."""
        tracker = SloTracker(policy, events=self.events)
        with self._lock:
            self.slo_trackers.append(tracker)
        return tracker

    # -- snapshots ---------------------------------------------------------

    def snapshot(
        self,
        clock: Optional[str] = None,
        last: Optional[int] = None,
    ) -> Dict[str, object]:
        """A JSON-ready, deterministically ordered dump of the plane.

        ``clock`` restricts the windowed series to one domain --
        ``snapshot(clock="sim")`` is the byte-identity substrate the
        determinism tests compare, since wall-domain values depend on
        machine speed.  ``last`` caps the number of trailing windows
        reported per series.
        """
        sections: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        section_of = {
            WindowedCounter: "counters",
            WindowedGauge: "gauges",
            WindowedHistogram: "histograms",
        }
        for instrument in self.instruments(clock):
            section = section_of[type(instrument)]
            sections[section][instrument.series] = instrument.snapshot(
                last=last
            )
        payload: Dict[str, object] = dict(sections)
        if clock is None:
            payload["events"] = self.events.counts()
            payload["slo"] = [
                status.to_dict()
                for tracker in list(self.slo_trackers)
                for status in tracker.statuses()
            ]
            payload["drift"] = self.drift.snapshot()
        return payload

    def __repr__(self) -> str:
        with self._lock:
            count = len(self._instruments)
        return (
            f"TelemetryPlane(instruments={count}, "
            f"events={len(self.events)})"
        )
