"""Cost-model drift monitoring: the learned-cost-model feedback hook.

The session already records the predicted-vs-simulated relative cost
error per operator (``execution.cost_error_rel``).  That histogram says
how well calibrated the model was *over the whole session*; this
monitor watches how calibration **evolves**: the first
``baseline_window`` observations freeze a calibration baseline, and a
rolling window of the most recent observations is continuously compared
against it.  When the rolling mean error exceeds the baseline by the
configured relative margin, the monitor emits a ``cost_model_drift``
event -- the online "your model needs refitting" signal ROADMAP item 2
(learned, self-correcting cost models) trains against -- and a matching
``cost_model_recalibrated`` event when the window recovers.

Determinism: decisions are a pure function of the observation sequence
(means use :func:`math.fsum`), so same-seed runs emit identical drift
events at identical observation indices.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.obs.events import EventLog, TelemetryEvent

__all__ = [
    "DriftConfig",
    "DriftMonitor",
    "DriftStatus",
]


@dataclass(frozen=True)
class DriftConfig:
    """Knobs for one :class:`DriftMonitor`."""

    #: Observations frozen into the calibration baseline.
    baseline_window: int = 32
    #: Rolling window compared against the baseline.
    window: int = 32
    #: Alert when rolling mean exceeds baseline mean by this fraction.
    threshold: float = 0.5
    #: Minimum rolling observations before alerts may fire.
    min_samples: int = 8

    def __post_init__(self) -> None:
        if self.baseline_window < 1:
            raise ValueError(
                f"baseline_window must be >= 1, "
                f"got {self.baseline_window}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.threshold <= 0:
            raise ValueError(
                f"threshold must be > 0, got {self.threshold}"
            )
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )


@dataclass(frozen=True)
class DriftStatus:
    """The monitor's current calibration picture."""

    observations: int
    baseline_mean: float
    rolling_mean: float
    #: rolling / baseline (NaN until both windows have data).
    ratio: float
    drifting: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (NaNs become nulls)."""
        return {
            "observations": self.observations,
            "baseline_mean": (
                self.baseline_mean
                if math.isfinite(self.baseline_mean)
                else None
            ),
            "rolling_mean": (
                self.rolling_mean
                if math.isfinite(self.rolling_mean)
                else None
            ),
            "ratio": self.ratio if math.isfinite(self.ratio) else None,
            "drifting": self.drifting,
        }


class DriftMonitor:
    """Watches a rolling error window against a frozen baseline."""

    def __init__(
        self,
        config: Optional[DriftConfig] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        self.config = config if config is not None else DriftConfig()
        self.events = events
        self._lock = threading.Lock()
        self._baseline: List[float] = []
        self._baseline_mean = math.nan
        self._rolling: Deque[float] = deque(maxlen=self.config.window)
        self._observations = 0
        self._drifting = False

    def record(
        self,
        error_rel: float,
        *,
        ts_s: float,
        clock: str = "sim",
    ) -> Optional[TelemetryEvent]:
        """Feed one relative cost error; returns the alert edge, if any.

        Non-finite errors (infeasible runs) are ignored -- they carry
        no calibration signal.
        """
        if not math.isfinite(error_rel):
            return None
        with self._lock:
            self._observations += 1
            if len(self._baseline) < self.config.baseline_window:
                self._baseline.append(float(error_rel))
                self._baseline_mean = math.fsum(self._baseline) / len(
                    self._baseline
                )
                return None
            self._rolling.append(float(error_rel))
            ratio = self._ratio()
            eligible = len(self._rolling) >= self.config.min_samples
            drifting = (
                eligible and ratio >= 1.0 + self.config.threshold
            )
            edge: Optional[str] = None
            if drifting and not self._drifting:
                self._drifting = True
                edge = "cost_model_drift"
            elif self._drifting and not drifting:
                self._drifting = False
                edge = "cost_model_recalibrated"
            if edge is None:
                return None
            attributes = {
                "baseline_mean": self._baseline_mean,
                "rolling_mean": self._rolling_mean(),
                "ratio": ratio,
                "threshold": self.config.threshold,
                "window": len(self._rolling),
            }
        if self.events is not None:
            return self.events.emit(
                edge, ts_s, clock=clock, attributes=attributes
            )
        return TelemetryEvent(
            name=edge, ts_s=ts_s, clock=clock, attributes=attributes
        )

    def _rolling_mean(self) -> float:
        if not self._rolling:
            return math.nan
        return math.fsum(self._rolling) / len(self._rolling)

    def _ratio(self) -> float:
        rolling = self._rolling_mean()
        if not math.isfinite(rolling) or not math.isfinite(
            self._baseline_mean
        ):
            return math.nan
        # A perfectly calibrated baseline (mean error 0) makes any
        # nonzero rolling error infinite drift; the floor keeps the
        # ratio finite and the threshold meaningful.
        return rolling / max(self._baseline_mean, 1e-9)

    def status(self) -> DriftStatus:
        """The current calibration picture."""
        with self._lock:
            return DriftStatus(
                observations=self._observations,
                baseline_mean=self._baseline_mean,
                rolling_mean=self._rolling_mean(),
                ratio=self._ratio(),
                drifting=self._drifting,
            )

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready status."""
        return self.status().to_dict()
