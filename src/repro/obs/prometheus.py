"""Prometheus text-format exposition for the telemetry plane.

Renders the session registry's lifetime instruments and the
:class:`~repro.obs.telemetry.TelemetryPlane`'s windowed series into the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_,
without depending on any Prometheus client library:

- dotted metric names become underscore names under the ``raqo_``
  namespace (``serving.latency_ms`` -> ``raqo_serving_latency_ms``);
- counters gain the conventional ``_total`` suffix;
- histograms are exposed as *summaries* -- ``quantile``-labelled sample
  lines plus ``_sum`` and ``_count`` -- because the registry keeps exact
  quantiles rather than fixed buckets;
- windowed series contribute their cumulative aggregates with their
  label sets (``raqo_serving_tenant_latency_ms{tenant="acme",...}``)
  plus a ``raqo_..._rate_per_s`` gauge for windowed counters (rate over
  the most recent window).

The module also ships :func:`parse_exposition`, a strict validating
parser used by the test suite and the CLI to prove that what we emit is
well-formed, plus :class:`MetricsServer`, the optional scrape endpoint
behind ``repro serve --metrics-addr``.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryPlane
from repro.obs.windows import (
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
)

__all__ = [
    "MetricsServer",
    "ParsedExposition",
    "ParsedSample",
    "parse_exposition",
    "parse_metrics_addr",
    "prometheus_exposition",
    "prometheus_name",
    "write_stats_file",
]

#: Every exported metric lives under this namespace.
NAMESPACE = "raqo"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def prometheus_name(name: str) -> str:
    """The ``raqo_``-namespaced Prometheus spelling of a dotted name."""
    flat = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    candidate = f"{NAMESPACE}_{flat}"
    if not _NAME_OK.match(candidate):
        raise ValueError(f"cannot render metric name {name!r}")
    return candidate


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    for key, _ in labels:
        if not _LABEL_OK.match(key):
            raise ValueError(f"invalid label name {key!r}")
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Family:
    """One metric family: HELP/TYPE header plus its sample lines."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.samples: List[str] = []

    def add(
        self,
        value: float,
        labels: Tuple[Tuple[str, str], ...] = (),
        suffix: str = "",
    ) -> None:
        line = (
            f"{self.name}{suffix}{_render_labels(labels)} "
            f"{_format_value(value)}"
        )
        self.samples.append(line)

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        lines.extend(self.samples)
        return lines


class _FamilySet:
    """Families keyed by name, rendered in sorted order."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def family(self, name: str, kind: str, help_text: str) -> _Family:
        existing = self._families.get(name)
        if existing is None:
            existing = _Family(name, kind, help_text)
            self._families[name] = existing
        elif existing.kind != kind:
            raise ValueError(
                f"metric family {name!r} registered as both "
                f"{existing.kind!r} and {kind!r}"
            )
        return existing

    def render(self) -> str:
        lines: List[str] = []
        for name in sorted(self._families):
            lines.extend(self._families[name].render())
        return "\n".join(lines) + ("\n" if lines else "")


def _add_registry(families: _FamilySet, metrics: MetricsRegistry) -> None:
    snap = metrics.snapshot()
    counters = snap["counters"]
    gauges = snap["gauges"]
    histograms = snap["histograms"]
    assert isinstance(counters, dict)
    assert isinstance(gauges, dict)
    assert isinstance(histograms, dict)
    for name in sorted(counters):
        family = families.family(
            prometheus_name(name) + "_total",
            "counter",
            f"Lifetime total of {name}.",
        )
        family.add(float(counters[name]))
    for name in sorted(gauges):
        family = families.family(
            prometheus_name(name),
            "gauge",
            f"Current value of {name}.",
        )
        family.add(float(gauges[name]))
    for name in sorted(histograms):
        summary = histograms[name]
        assert isinstance(summary, dict)
        _add_summary(
            families,
            prometheus_name(name),
            f"Distribution of {name}.",
            summary,
            labels=(),
        )


def _add_summary(
    families: _FamilySet,
    base: str,
    help_text: str,
    summary: Dict[str, float],
    labels: Tuple[Tuple[str, str], ...],
) -> None:
    family = families.family(base, "summary", help_text)
    for key in sorted(summary):
        if not key.startswith("p") or not key[1:].isdigit():
            continue
        quantile = int(key[1:]) / 100.0
        family.add(
            summary[key],
            labels + (("quantile", _format_value(quantile)),),
        )
    family.add(summary.get("sum", 0.0), labels, suffix="_sum")
    family.add(summary.get("count", 0.0), labels, suffix="_count")


def _add_plane(families: _FamilySet, plane: TelemetryPlane) -> None:
    for instrument in plane.instruments():
        base = prometheus_name(instrument.name)
        labels = instrument.labels
        clock_note = f"({instrument.clock} clock, windowed)"
        if isinstance(instrument, WindowedCounter):
            family = families.family(
                base + "_total",
                "counter",
                f"Windowed counter {instrument.name} {clock_note}.",
            )
            family.add(float(instrument.total), labels)
            snap = instrument.snapshot(last=1)
            windows = snap["windows"]
            assert isinstance(windows, list)
            rate = windows[-1]["rate_per_s"] if windows else 0.0
            rate_family = families.family(
                base + "_rate_per_s",
                "gauge",
                f"Most-recent-window rate of {instrument.name} "
                f"{clock_note}.",
            )
            rate_family.add(float(rate), labels)
        elif isinstance(instrument, WindowedGauge):
            family = families.family(
                base,
                "gauge",
                f"Windowed gauge {instrument.name} {clock_note}.",
            )
            latest = instrument.latest()
            family.add(latest if math.isfinite(latest) else 0.0, labels)
        elif isinstance(instrument, WindowedHistogram):
            summary = instrument.summary()
            _add_summary(
                families,
                base,
                f"Windowed histogram {instrument.name} {clock_note}.",
                summary,
                labels,
            )
    # SLO + drift state ride along as gauges so a scrape sees them.
    if plane.slo_trackers:
        burn = families.family(
            prometheus_name("slo.burn_rate"),
            "gauge",
            "Per-tenant SLO error-budget burn rate.",
        )
        alerting = families.family(
            prometheus_name("slo.alerting"),
            "gauge",
            "1 while the tenant's SLO burn alert is firing.",
        )
        for tracker in list(plane.slo_trackers):
            for status in tracker.statuses():
                labels = (("tenant", status.tenant),)
                burn.add(status.burn_rate, labels)
                alerting.add(1.0 if status.alerting else 0.0, labels)
    drift = plane.drift.status()
    if drift.observations:
        ratio = families.family(
            prometheus_name("cost_model.drift_ratio"),
            "gauge",
            "Rolling-vs-baseline cost error ratio.",
        )
        ratio.add(drift.ratio if math.isfinite(drift.ratio) else 0.0)
        drifting = families.family(
            prometheus_name("cost_model.drifting"),
            "gauge",
            "1 while the cost model is flagged as drifting.",
        )
        drifting.add(1.0 if drift.drifting else 0.0)


def prometheus_exposition(
    metrics: Optional[MetricsRegistry] = None,
    plane: Optional[TelemetryPlane] = None,
) -> str:
    """The full text-format exposition of a registry and/or plane."""
    families = _FamilySet()
    if metrics is not None:
        _add_registry(families, metrics)
    if plane is not None:
        _add_plane(families, plane)
    return families.render()


def write_stats_file(
    path: Union[str, Path],
    metrics: Optional[MetricsRegistry] = None,
    plane: Optional[TelemetryPlane] = None,
) -> str:
    """Write the exposition to ``path``; returns the rendered text."""
    text = prometheus_exposition(metrics, plane)
    Path(path).write_text(text, encoding="utf-8")
    return text


# -- validating parser ------------------------------------------------------


@dataclass(frozen=True)
class ParsedSample:
    """One sample line of a parsed exposition."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float
    #: The family's declared TYPE (``counter``/``gauge``/``summary``).
    kind: str = ""

    @property
    def labels_dict(self) -> Dict[str, str]:
        """The labels as a plain dict."""
        return dict(self.labels)


@dataclass
class ParsedExposition:
    """A validated exposition: families and their samples."""

    #: family name -> declared TYPE.
    types: Dict[str, str] = field(default_factory=dict)
    samples: List[ParsedSample] = field(default_factory=list)

    def series(self, name: str) -> List[ParsedSample]:
        """All samples whose metric name equals ``name``."""
        return [s for s in self.samples if s.name == name]

    def value(
        self, name: str, **labels: str
    ) -> Optional[float]:
        """The value of the sample matching ``name`` and ``labels``
        (label order is irrelevant)."""
        want = tuple(sorted(labels.items()))
        for sample in self.samples:
            if (
                sample.name == name
                and tuple(sorted(sample.labels)) == want
            ):
                return sample.value
        return None


def _family_of(sample_name: str, types: Dict[str, str]) -> Optional[str]:
    if sample_name in types:
        return sample_name
    for suffix in ("_sum", "_count", "_bucket"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in types:
                return base
    return None


def parse_exposition(text: str) -> ParsedExposition:
    """Parse and validate Prometheus text format; raises ``ValueError``.

    Strict on the properties the encoder guarantees: every sample line
    must parse, every sample must belong to a family declared with a
    ``# TYPE`` line *before* it, label names must be legal, and a family
    may not be declared twice.
    """
    parsed = ParsedExposition()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line")
            _, _, name, kind = parts
            if not _NAME_OK.match(name):
                raise ValueError(
                    f"line {lineno}: invalid family name {name!r}"
                )
            if kind not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                raise ValueError(
                    f"line {lineno}: unknown metric type {kind!r}"
                )
            if name in parsed.types:
                raise ValueError(
                    f"line {lineno}: family {name!r} declared twice"
                )
            parsed.types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {raw!r}")
        name = match.group("name")
        family = _family_of(name, parsed.types)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding "
                f"TYPE declaration"
            )
        labels: List[Tuple[str, str]] = []
        labels_blob = match.group("labels")
        if labels_blob:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(labels_blob):
                labels.append((pair.group("key"), pair.group("value")))
                consumed = pair.end()
                if consumed < len(labels_blob):
                    if labels_blob[consumed] != ",":
                        raise ValueError(
                            f"line {lineno}: malformed labels "
                            f"{labels_blob!r}"
                        )
                    consumed += 1
            if consumed != len(labels_blob):
                raise ValueError(
                    f"line {lineno}: malformed labels {labels_blob!r}"
                )
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad sample value "
                f"{match.group('value')!r}"
            ) from exc
        parsed.samples.append(
            ParsedSample(
                name=name,
                labels=tuple(labels),
                value=value,
                kind=parsed.types[family],
            )
        )
    return parsed


# -- scrape endpoint --------------------------------------------------------


class MetricsServer:
    """A minimal ``/metrics`` HTTP endpoint over a render callback.

    Serves whatever ``render()`` returns at scrape time on a daemon
    thread; everything else 404s.  Used by ``repro serve
    --metrics-addr HOST:PORT`` (port 0 picks a free port).
    """

    def __init__(
        self, host: str, port: int, render: Callable[[], str]
    ) -> None:
        self._render = render

        server_ref = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                body = server_ref._render().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # scrapes should not spam the CLI's stderr

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="raqo-metrics-server",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) -- port resolved when 0 was asked."""
        host, port = self._httpd.server_address[:2]
        return (str(host), int(port))

    def close(self) -> None:
        """Stop serving and release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def parse_metrics_addr(addr: str) -> Tuple[str, int]:
    """Split ``HOST:PORT`` (or bare ``:PORT``) into its parts."""
    host, sep, port_text = addr.rpartition(":")
    if not sep:
        raise ValueError(
            f"metrics address must look like HOST:PORT, got {addr!r}"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(
            f"invalid port in metrics address {addr!r}"
        ) from exc
    return (host or "127.0.0.1", port)
