"""``repro top``: a terminal dashboard over the telemetry artifacts.

Renders a compact live view from the two files every telemetry-enabled
run can produce -- the JSONL event log and the Prometheus stats file --
without importing anything beyond the standard library.  The dashboard
is a *reader*: it never touches a live session, so it can follow a run
in another process (``repro serve --events ... --stats-file ...`` in
one terminal, ``repro top --follow`` in another) or post-mortem a
finished one.

Rendering is deterministic for fixed inputs (sections and rows sort by
name), which is how the CLI tests pin it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.obs.prometheus import ParsedSample, parse_exposition

__all__ = [
    "load_events_jsonl",
    "render_dashboard",
    "render_dashboard_from_files",
]

#: Event names surfaced in the alert pane, most serious first.
ALERT_EVENTS = (
    "slo_burn",
    "cost_model_drift",
    "rejection",
    "fault",
)


def load_events_jsonl(
    path: Union[str, Path],
) -> List[Dict[str, object]]:
    """Parse an event-log JSONL file into dicts (bad lines rejected)."""
    events: List[Dict[str, object]] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}: line {lineno} is not valid JSON"
            ) from exc
        if not isinstance(record, dict) or "name" not in record:
            raise ValueError(
                f"{path}: line {lineno} is not a telemetry event"
            )
        events.append(record)
    return events


def _event_counts(
    events: List[Dict[str, object]],
) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for event in events:
        name = str(event.get("name", ""))
        counts[name] = counts.get(name, 0) + 1
    return counts


def _tenant_rows(
    events: List[Dict[str, object]],
) -> List[Tuple[str, int, int, int]]:
    """(tenant, events, slo_burns, rejections) rows, sorted by tenant."""
    per_tenant: Dict[str, Dict[str, int]] = {}
    for event in events:
        tenant = str(event.get("tenant", "") or "")
        if not tenant:
            continue
        stats = per_tenant.setdefault(
            tenant, {"events": 0, "slo_burn": 0, "rejection": 0}
        )
        stats["events"] += 1
        name = str(event.get("name", ""))
        if name in stats:
            stats[name] += 1
    return [
        (
            tenant,
            per_tenant[tenant]["events"],
            per_tenant[tenant]["slo_burn"],
            per_tenant[tenant]["rejection"],
        )
        for tenant in sorted(per_tenant)
    ]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.3f}"


def _metric_rows(
    samples: List[ParsedSample], limit: int
) -> List[str]:
    rows = []
    for sample in samples:
        label_text = ""
        if sample.labels:
            inner = ",".join(f"{k}={v}" for k, v in sample.labels)
            label_text = f"{{{inner}}}"
        rows.append(f"  {sample.name}{label_text} = {_fmt(sample.value)}")
    rows.sort()
    return rows[:limit]


def render_dashboard(
    events: Optional[List[Dict[str, object]]] = None,
    stats_text: Optional[str] = None,
    *,
    title: str = "repro top",
    tail: int = 8,
    metric_limit: int = 20,
) -> str:
    """The dashboard screen as plain text.

    ``events`` is a parsed event log (see :func:`load_events_jsonl`);
    ``stats_text`` is a Prometheus exposition.  Either may be absent --
    the corresponding panes simply note the missing input.
    """
    lines: List[str] = [title, "=" * len(title)]

    lines.append("")
    lines.append("events")
    lines.append("------")
    if events is None:
        lines.append("  (no event log)")
    elif not events:
        lines.append("  (event log empty)")
    else:
        counts = _event_counts(events)
        for name in sorted(counts):
            lines.append(f"  {name:<28s} {counts[name]}")
        alerts = [
            event
            for event in events
            if str(event.get("name", "")) in ALERT_EVENTS
        ]
        lines.append("")
        lines.append("alerts (most recent last)")
        lines.append("-------------------------")
        if not alerts:
            lines.append("  (none)")
        for event in alerts[-tail:]:
            tenant = str(event.get("tenant", "") or "-")
            ts = event.get("ts_s", 0.0)
            ts_text = (
                _fmt(float(ts))
                if isinstance(ts, (int, float))
                else str(ts)
            )
            clock = str(event.get("clock", "?"))
            lines.append(
                f"  [{clock} {ts_text:>10s}s] "
                f"{event.get('name', '?')} tenant={tenant}"
            )
        tenants = _tenant_rows(events)
        if tenants:
            lines.append("")
            lines.append("tenants")
            lines.append("-------")
            lines.append(
                f"  {'tenant':<16s} {'events':>7s} "
                f"{'slo_burn':>9s} {'rejected':>9s}"
            )
            for tenant, total, burns, rejections in tenants:
                lines.append(
                    f"  {tenant:<16s} {total:>7d} "
                    f"{burns:>9d} {rejections:>9d}"
                )

    lines.append("")
    lines.append("metrics")
    lines.append("-------")
    if stats_text is None:
        lines.append("  (no stats file)")
    else:
        parsed = parse_exposition(stats_text)
        interesting = [
            sample
            for sample in parsed.samples
            if not sample.name.endswith(("_sum", "_count"))
            and "quantile" not in sample.labels_dict
        ]
        if not interesting:
            lines.append("  (stats file empty)")
        else:
            lines.extend(_metric_rows(interesting, metric_limit))
            hidden = len(interesting) - metric_limit
            if hidden > 0:
                lines.append(f"  ... ({hidden} more series)")

    return "\n".join(lines) + "\n"


def render_dashboard_from_files(
    events_path: Optional[Union[str, Path]] = None,
    stats_path: Optional[Union[str, Path]] = None,
    *,
    title: str = "repro top",
) -> str:
    """Load whichever files exist and render one dashboard frame."""
    events = None
    if events_path is not None and Path(events_path).exists():
        events = load_events_jsonl(events_path)
    stats_text = None
    if stats_path is not None and Path(stats_path).exists():
        stats_text = Path(stats_path).read_text(encoding="utf-8")
    return render_dashboard(events, stats_text, title=title)
