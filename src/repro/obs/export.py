"""Exporters for recorded traces: JSONL, Chrome trace_event, text.

Three consumers, three formats:

- :func:`export_spans_jsonl` -- one JSON object per span, sorted by
  span path, for programmatic analysis (``jq``, pandas).
- :func:`chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  ``trace_event`` format (the ``{"traceEvents": [...]}`` flavour), which
  loads directly in ``chrome://tracing`` and `Perfetto
  <https://ui.perfetto.dev>`_.  Planner spans render on a wall-clock
  process lane; engine and cluster spans render on simulated-time lanes,
  with fault/retry instants and a container-occupancy counter track.
- :func:`render_text_report` -- a plain-text span tree with durations,
  for terminals and log files.

:func:`span_tree` is the *canonical* tree form used by the golden
determinism tests: it contains every deterministic field (names, IDs,
kinds, attributes, events, simulated-time windows) and excludes
wall-clock measurements (plus any attribute prefixed ``wall_``), so two
same-seed runs -- serial or parallel -- serialize byte-identically.
"""

from __future__ import annotations

import json
import types
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer

__all__ = [
    "canonical_span_tree_json",
    "chrome_trace",
    "export_spans_jsonl",
    "render_text_report",
    "span_tree",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_trace_dir",
]

SpanSource = Union[Tracer, Sequence[Span]]

#: Process lanes in the Chrome trace, by span kind (read-only: the
#: proxy keeps worker threads from mutating shared module state).
_KIND_PIDS = types.MappingProxyType(
    {
        "planner": 1,
        "engine": 2,
        "cluster": 3,
    }
)
_PID_LABELS = types.MappingProxyType(
    {
        1: "planner (wall clock)",
        2: "engine (simulated time)",
        3: "cluster (simulated time)",
    }
)
#: Kinds whose spans carry simulated-time windows.
_SIM_KINDS = frozenset({"engine", "cluster"})


def _spans_of(source: SpanSource) -> Tuple[Span, ...]:
    if isinstance(source, Tracer):
        return source.spans()
    ordered = sorted(source, key=lambda span: span.path)
    return tuple(ordered)


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def export_spans_jsonl(
    source: SpanSource, path: Union[str, Path]
) -> int:
    """Write one JSON object per span (path-sorted); returns the count."""
    spans = _spans_of(source)
    with Path(path).open("w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(
                json.dumps(span.to_dict(), sort_keys=True) + "\n"
            )
    return len(spans)


# ---------------------------------------------------------------------------
# Canonical tree (golden-test substrate)
# ---------------------------------------------------------------------------


def span_tree(source: SpanSource) -> List[Dict[str, object]]:
    """The canonical, wall-clock-free span forest.

    Children are ordered by their path component, so the result is a
    pure function of the recorded span set -- independent of completion
    order, thread scheduling, and machine speed.
    """
    spans = _spans_of(source)
    nodes: Dict[Tuple[str, ...], Dict[str, object]] = {}
    roots: List[Dict[str, object]] = []
    for span in spans:  # path-sorted: parents precede children
        node: Dict[str, object] = {
            "name": span.name,
            "kind": span.kind,
            "span_id": span.span_id,
            "component": span.path[-1],
            "attributes": {
                key: span.attributes[key]
                for key in sorted(span.attributes)
                if not key.startswith("wall_")
            },
            "events": [event.to_dict() for event in span.events],
            "sim_start_s": span.sim_start_s,
            "sim_end_s": span.sim_end_s,
            "children": [],
        }
        nodes[span.path] = node
        parent = nodes.get(span.path[:-1])
        if parent is None:
            roots.append(node)
        else:
            children = parent["children"]
            assert isinstance(children, list)
            children.append(node)
    return roots


def canonical_span_tree_json(source: SpanSource) -> str:
    """The canonical tree as a stable JSON string (byte-comparable)."""
    return json.dumps(
        span_tree(source),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------


def _lane_ids(spans: Sequence[Span]) -> Dict[str, int]:
    """Stable thread-lane numbers: one per root path component."""
    lanes = sorted({span.path[0] for span in spans})
    return {component: index + 1 for index, component in enumerate(lanes)}


def _span_window_us(
    span: Span, wall_origin_s: float
) -> Optional[Tuple[int, float, float]]:
    """(pid, ts_us, dur_us) for a span, or None when it has no window."""
    if span.sim_start_s is not None and span.sim_end_s is not None:
        pid = _KIND_PIDS.get(span.kind, _KIND_PIDS["engine"])
        start = span.sim_start_s * 1e6
        dur = (span.sim_end_s - span.sim_start_s) * 1e6
        return pid, start, dur
    if span.wall_start_s is not None and span.wall_end_s is not None:
        pid = _KIND_PIDS.get(span.kind, _KIND_PIDS["planner"])
        if pid in (2, 3):
            # A sim-domain span without a sim window has no meaningful
            # position on a simulated-time lane.
            return None
        start = (span.wall_start_s - wall_origin_s) * 1e6
        dur = (span.wall_end_s - span.wall_start_s) * 1e6
        return pid, start, dur
    return None


def _occupancy_events(
    spans: Sequence[Span],
) -> List[Dict[str, object]]:
    """Counter events tracking simultaneous container occupancy."""
    deltas: List[Tuple[float, int, float]] = []
    for span in spans:
        if span.kind not in _SIM_KINDS or span.name != "stage":
            continue
        if span.sim_start_s is None or span.sim_end_s is None:
            continue
        containers = span.attributes.get("num_containers")
        memory = span.attributes.get("total_memory_gb")
        if not isinstance(containers, (int, float)):
            continue
        gb = float(memory) if isinstance(memory, (int, float)) else 0.0
        deltas.append((span.sim_start_s, int(containers), gb))
        deltas.append((span.sim_end_s, -int(containers), -gb))
    # Releases sort before acquisitions at the same instant, so a
    # back-to-back stage boundary never shows double occupancy.
    deltas.sort(key=lambda item: (item[0], item[1]))
    events: List[Dict[str, object]] = []
    containers_now = 0
    memory_now = 0.0
    for time_s, container_delta, memory_delta in deltas:
        containers_now += container_delta
        memory_now += memory_delta
        events.append(
            {
                "ph": "C",
                "name": "container occupancy",
                "pid": _KIND_PIDS["engine"],
                "tid": 0,
                "ts": time_s * 1e6,
                "args": {
                    "containers": containers_now,
                    "memory_gb": round(memory_now, 6),
                },
            }
        )
    return events


def chrome_trace(
    source: SpanSource,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Build a Chrome ``trace_event`` payload from recorded spans."""
    spans = _spans_of(source)
    lanes = _lane_ids(spans)
    events: List[Dict[str, object]] = []
    for pid in sorted(_PID_LABELS):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": _PID_LABELS[pid]},
            }
        )
    wall_starts = [
        span.wall_start_s
        for span in spans
        if span.wall_start_s is not None
    ]
    wall_origin_s = min(wall_starts) if wall_starts else 0.0
    for span in spans:
        tid = lanes[span.path[0]]
        window = _span_window_us(span, wall_origin_s)
        if window is not None:
            pid, ts_us, dur_us = window
            args: Dict[str, object] = {
                "span_id": span.span_id,
                "path": "/".join(span.path),
            }
            for key in sorted(span.attributes):
                args[key] = span.attributes[key]
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.kind,
                    "pid": pid,
                    "tid": tid,
                    "ts": ts_us,
                    "dur": max(dur_us, 0.0),
                    "args": args,
                }
            )
        else:
            pid = _KIND_PIDS.get(span.kind, 1)
            ts_us = 0.0
        for event in span.events:
            if event.sim_time_s is not None:
                event_pid = _KIND_PIDS.get(
                    span.kind, _KIND_PIDS["engine"]
                )
                event_ts = event.sim_time_s * 1e6
            else:
                event_pid, event_ts = pid, ts_us
            events.append(
                {
                    "ph": "i",
                    "name": event.name,
                    "cat": span.kind,
                    "pid": event_pid,
                    "tid": tid,
                    "ts": event_ts,
                    "s": "t",
                    "args": {
                        "span_id": span.span_id,
                        **{
                            key: event.attributes[key]
                            for key in sorted(event.attributes)
                        },
                    },
                }
            )
    events.extend(_occupancy_events(spans))
    payload: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        payload["otherData"] = {"metrics": metrics.snapshot()}
    return payload


def write_chrome_trace(
    source: SpanSource,
    path: Union[str, Path],
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Write (and return) the Chrome trace payload for ``source``."""
    payload = chrome_trace(source, metrics=metrics)
    validate_chrome_trace(payload)
    Path(path).write_text(
        json.dumps(payload, sort_keys=True), encoding="utf-8"
    )
    return payload


_VALID_PHASES = frozenset({"X", "B", "E", "i", "I", "C", "M"})


def validate_chrome_trace(payload: object) -> None:
    """Check a payload against the ``trace_event`` JSON-object format.

    Raises :class:`ValueError` describing the first violation; returns
    silently for valid payloads.  Covers the subset of the spec this
    exporter (and the tests) rely on: the ``traceEvents`` envelope,
    required per-phase fields, and non-negative timestamps/durations.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload must carry a 'traceEvents' list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(f"{where} has invalid phase {phase!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where} is missing a string 'name'")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"{where} is missing integer {field!r}")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where} needs a timestamp 'ts' >= 0")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where} needs a duration 'dur' >= 0")
        if phase in ("i", "I") and event.get("s") not in (
            None,
            "g",
            "p",
            "t",
        ):
            raise ValueError(f"{where} has invalid instant scope")
        if phase == "C" and not isinstance(event.get("args"), dict):
            raise ValueError(f"{where} counter event needs 'args'")


# ---------------------------------------------------------------------------
# Plain text
# ---------------------------------------------------------------------------


def _format_node(
    node: Dict[str, object], depth: int, lines: List[str]
) -> None:
    indent = "  " * depth
    sim_start = node["sim_start_s"]
    sim_end = node["sim_end_s"]
    timing = ""
    if isinstance(sim_start, float) and isinstance(sim_end, float):
        timing = f"  [sim {sim_start:.2f}s .. {sim_end:.2f}s]"
    attrs = node["attributes"]
    assert isinstance(attrs, dict)
    summary = " ".join(
        f"{key}={attrs[key]}" for key in sorted(attrs)
    )
    name = node["component"]
    lines.append(
        f"{indent}{name}{timing}" + (f"  {summary}" if summary else "")
    )
    events = node["events"]
    assert isinstance(events, list)
    for event in events:
        event_name = event["name"]
        sim_time = event["sim_time_s"]
        stamp = (
            f" @ sim {sim_time:.2f}s"
            if isinstance(sim_time, float)
            else ""
        )
        lines.append(f"{indent}  ! {event_name}{stamp}")
    children = node["children"]
    assert isinstance(children, list)
    for child in children:
        _format_node(child, depth + 1, lines)


def render_text_report(
    source: SpanSource,
    metrics: Optional[MetricsRegistry] = None,
    title: str = "run report",
) -> str:
    """A human-readable span tree plus a metrics section."""
    lines: List[str] = [title, "=" * len(title), ""]
    forest = span_tree(source)
    if not forest:
        lines.append("(no spans recorded)")
    for root in forest:
        _format_node(root, 0, lines)
    if metrics is not None:
        lines.append("")
        lines.append(metrics.render_text("metrics"))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Bundled directory export (CLI --trace-dir)
# ---------------------------------------------------------------------------


def write_trace_dir(
    source: SpanSource,
    directory: Union[str, Path],
    metrics: Optional[MetricsRegistry] = None,
    title: str = "run report",
) -> Dict[str, Path]:
    """Write the full export bundle into ``directory``.

    Produces ``trace.json`` (Chrome trace), ``spans.jsonl``,
    ``report.txt``, and -- when a registry is given -- ``metrics.json``.
    Returns the mapping of artifact name to written path.
    """
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}
    trace_path = out / "trace.json"
    write_chrome_trace(source, trace_path, metrics=metrics)
    written["trace"] = trace_path
    spans_path = out / "spans.jsonl"
    export_spans_jsonl(source, spans_path)
    written["spans"] = spans_path
    report_path = out / "report.txt"
    report_path.write_text(
        render_text_report(source, metrics=metrics, title=title),
        encoding="utf-8",
    )
    written["report"] = report_path
    if metrics is not None:
        metrics_path = out / "metrics.json"
        metrics_path.write_text(
            json.dumps(metrics.snapshot(), sort_keys=True, indent=2),
            encoding="utf-8",
        )
        written["metrics"] = metrics_path
    return written
