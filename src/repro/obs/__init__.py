"""Structured observability: tracing, metrics, telemetry, exporters.

Zero-dependency instrumentation substrate for the planner, engine,
cluster, fault, serving, and workload layers.  Two generations coexist:

- the session-scoped substrate -- :mod:`repro.obs.tracing` for the
  deterministic span model, :mod:`repro.obs.metrics` for the lifetime
  counters/gauges/histograms registry, :mod:`repro.obs.export` for the
  JSONL / Chrome ``trace_event`` / plain-text exporters;
- the **telemetry plane** (:mod:`repro.obs.telemetry`) layered on top:
  deterministic rolling-window instruments (:mod:`repro.obs.windows`),
  the unified structured event log (:mod:`repro.obs.events`),
  per-tenant SLO tracking (:mod:`repro.obs.slo`), cost-model drift
  monitoring (:mod:`repro.obs.drift`), Prometheus text exposition
  (:mod:`repro.obs.prometheus`), and the ``repro top`` dashboard
  renderer (:mod:`repro.obs.dashboard`).
"""

from repro.obs.dashboard import (
    load_events_jsonl,
    render_dashboard,
    render_dashboard_from_files,
)
from repro.obs.drift import (
    DriftConfig,
    DriftMonitor,
    DriftStatus,
)
from repro.obs.events import (
    EventLog,
    TelemetryEvent,
)
from repro.obs.export import (
    canonical_span_tree_json,
    chrome_trace,
    export_spans_jsonl,
    render_text_report,
    span_tree,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace_dir,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.prometheus import (
    MetricsServer,
    ParsedExposition,
    ParsedSample,
    parse_exposition,
    parse_metrics_addr,
    prometheus_exposition,
    prometheus_name,
    write_stats_file,
)
from repro.obs.slo import (
    SloPolicy,
    SloStatus,
    SloTracker,
)
from repro.obs.telemetry import TelemetryPlane
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    SpanHandle,
    Tracer,
)
from repro.obs.windows import (
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
    exact_quantile,
    labels_key,
    normalize_labels,
)

__all__ = [
    "Counter",
    "DriftConfig",
    "DriftMonitor",
    "DriftStatus",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "ParsedExposition",
    "ParsedSample",
    "SloPolicy",
    "SloStatus",
    "SloTracker",
    "Span",
    "SpanEvent",
    "SpanHandle",
    "TelemetryEvent",
    "TelemetryPlane",
    "Tracer",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
    "canonical_span_tree_json",
    "chrome_trace",
    "exact_quantile",
    "export_spans_jsonl",
    "labels_key",
    "load_events_jsonl",
    "normalize_labels",
    "parse_exposition",
    "parse_metrics_addr",
    "prometheus_exposition",
    "prometheus_name",
    "render_dashboard",
    "render_dashboard_from_files",
    "render_text_report",
    "span_tree",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_stats_file",
    "write_trace_dir",
]
