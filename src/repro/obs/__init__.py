"""Structured observability: tracing, metrics, and trace exporters.

Zero-dependency instrumentation substrate for the planner, engine,
cluster, fault, and workload layers.  See :mod:`repro.obs.tracing` for
the deterministic span model, :mod:`repro.obs.metrics` for the
counters/gauges/histograms registry, and :mod:`repro.obs.export` for
the JSONL / Chrome ``trace_event`` / plain-text exporters.
"""

from repro.obs.export import (
    canonical_span_tree_json,
    chrome_trace,
    export_spans_jsonl,
    render_text_report,
    span_tree,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace_dir,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    SpanHandle,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanEvent",
    "SpanHandle",
    "Tracer",
    "canonical_span_tree_json",
    "chrome_trace",
    "export_spans_jsonl",
    "render_text_report",
    "span_tree",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_trace_dir",
]
